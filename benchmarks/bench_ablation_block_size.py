"""Ablation — ports-per-block (Alg. 1 step 1 sets #blocks = #ports/50).

The block count trades reduction cost against quality: few large blocks
mean expensive Schur complements and denser reduced blocks; many tiny
blocks keep more interface nodes (less reduction).  This ablation sweeps
the divisor around the paper's 50 and records size / time / error.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.powergrid.dc import dc_analysis
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.reduction.pipeline import PGReducer, ReductionConfig
from repro.utils.timing import timed

PORTS_PER_BLOCK = (15, 30, 50, 80)


def test_block_size_tradeoff(benchmark, bench_out_dir):
    grid = synthetic_ibmpg_like(nx=30, ny=30, pad_pitch=8, seed=10)
    original = dc_analysis(grid)
    ports = grid.port_nodes()
    rows = []

    def run():
        rows.clear()
        for divisor in PORTS_PER_BLOCK:
            with timed() as elapsed:
                reducer = PGReducer(
                    grid,
                    ReductionConfig(
                        er_method="cholinv", ports_per_block=divisor, seed=1
                    ),
                )
                reduced = reducer.reduce()
            t_red = elapsed()
            solution = dc_analysis(reduced.grid)
            errors = reduced.port_voltage_errors(
                original.voltages, solution.voltages, ports
            )
            rows.append(
                [divisor, reducer.num_blocks, reduced.grid.num_nodes,
                 reduced.grid.num_resistors, t_red,
                 errors.mean() / original.max_drop() * 100]
            )
        return rows

    benchmark.pedantic(run, iterations=1, rounds=1)

    rels = np.array([r[5] for r in rows])
    assert rels.max() < 10.0  # all operating points stay accurate
    # every setting truly reduces the model
    assert all(r[2] < grid.num_nodes for r in rows)

    table = format_table(
        ["ports/block", "#blocks", "|V|red", "|E|red", "Tred_s", "Rel_%"],
        rows,
        title="Ablation — block-size divisor (paper uses 50)",
    )
    emit(bench_out_dir, "ablation_block_size", table)
