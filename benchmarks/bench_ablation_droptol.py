"""E7 — effect of the incomplete-Cholesky drop tolerance.

Section III-C argues dropped fill-ins correspond to opening large-resistance
branches, so moderate drop tolerances barely hurt effective-resistance
accuracy while shrinking the factor.  Sweep the drop tolerance at fixed
ε = 1e-3 and record factor size / accuracy / time.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
)
from repro.graphs.generators import grid_2d
from repro.utils.timing import timed

DROP_TOLS = (0.0, 1e-4, 1e-3, 1e-2, 5e-2)


def test_droptol_tradeoff(benchmark, bench_out_dir):
    graph = grid_2d(50, 50, jitter=0.3, seed=7)
    pairs = graph.edge_array()
    truth = ExactEffectiveResistance(graph).query_pairs(pairs)
    rows = []

    def run():
        rows.clear()
        for tol in DROP_TOLS:
            with timed() as elapsed:
                est = CholInvEffectiveResistance(
                    graph, epsilon=1e-3, drop_tol=tol, ordering="amd"
                )
                approx = est.query_pairs(pairs)
            rel = np.abs(approx - truth) / truth
            rows.append(
                [tol, est.ichol_result.nnz, est.stats.nnz, rel.mean(), rel.max(), elapsed()]
            )
        return rows

    benchmark.pedantic(run, iterations=1, rounds=1)

    nnz_l = np.array([r[1] for r in rows], dtype=float)
    means = np.array([r[3] for r in rows])
    # larger tolerance => smaller factor
    assert np.all(np.diff(nnz_l) <= 0)
    # the paper's operating point (1e-3) stays well under 1% average error
    paper_row = rows[DROP_TOLS.index(1e-3)]
    assert paper_row[3] < 1e-2
    # error grows monotonically-ish with tolerance (allow small noise)
    assert means[-1] > means[0]

    table = format_table(
        ["drop_tol", "nnz(L)", "nnz(Z)", "Ea", "Em", "time_s"],
        rows,
        title="E7 — incomplete-Cholesky drop tolerance trade-off",
    )
    emit(bench_out_dir, "ablation_droptol", table)
