"""E6 — the relative error of Alg. 3 scales linearly with ε (Eq. 26).

Sweeps ε at fixed (complete) factorisation so the truncation error is
isolated, and checks both monotonicity and the roughly-linear trend the
paper derives: ``1 − αε ≤ R̃/R ≤ 1 + αε``.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
)
from repro.graphs.generators import fe_mesh_2d

EPSILONS = (3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4)


def test_error_scales_linearly_with_epsilon(benchmark, bench_out_dir):
    graph = fe_mesh_2d(40, 40, seed=6)
    pairs = graph.edge_array()
    truth = ExactEffectiveResistance(graph).query_pairs(pairs)
    rows = []

    def run():
        rows.clear()
        for eps in EPSILONS:
            est = CholInvEffectiveResistance(
                graph, epsilon=eps, drop_tol=0.0, ordering="amd"
            )
            rel = np.abs(est.query_pairs(pairs) - truth) / truth
            rows.append([eps, rel.mean(), rel.max(), est.stats.nnz])
        return rows

    benchmark.pedantic(run, iterations=1, rounds=1)

    means = np.array([r[1] for r in rows])
    # monotone in ε
    assert np.all(np.diff(means) < np.finfo(float).eps + means[:-1] * 0.2), means
    # roughly linear: error ratio tracks the 300X ε span within an order
    span = means[0] / means[-1]
    eps_span = EPSILONS[0] / EPSILONS[-1]
    assert span > eps_span / 10.0, f"error barely moved ({span:.1f}X over {eps_span:.0f}X ε)"

    table = format_table(
        ["epsilon", "Ea", "Em", "nnz(Z)"],
        rows,
        title="E6 — error vs ε (Eq. 26: linear scaling)",
    )
    emit(bench_out_dir, "ablation_epsilon", table)
