"""E8 — fill-reducing ordering vs depth, sparsity and accuracy.

The filled-graph depth (Eq. 11) — and therefore the Theorem 1 error bound —
depends on the elimination order.  Compare natural / RCM / minimum-degree
orderings on a mesh: minimum degree should yield the least fill; all
orderings must deliver the same accuracy at fixed ε (the bound is loose).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
)
from repro.graphs.generators import fe_mesh_2d
from repro.utils.timing import timed

ORDERINGS = ("natural", "rcm", "amd")


def test_ordering_ablation(benchmark, bench_out_dir):
    graph = fe_mesh_2d(36, 36, seed=8)
    pairs = graph.edge_array()
    truth = ExactEffectiveResistance(graph).query_pairs(pairs)
    rows = []

    def run():
        rows.clear()
        for ordering in ORDERINGS:
            with timed() as elapsed:
                est = CholInvEffectiveResistance(
                    graph, epsilon=1e-3, drop_tol=1e-3, ordering=ordering
                )
                approx = est.query_pairs(pairs)
            rel = np.abs(approx - truth) / truth
            rows.append(
                [ordering, est.ichol_result.nnz, est.stats.nnz, est.max_depth,
                 rel.mean(), elapsed()]
            )
        return rows

    benchmark.pedantic(run, iterations=1, rounds=1)

    by_name = {r[0]: r for r in rows}
    # minimum degree produces the least fill in the incomplete factor
    assert by_name["amd"][1] <= by_name["natural"][1]
    # accuracy is ordering-insensitive at fixed ε (within an order)
    errors = np.array([r[4] for r in rows])
    assert errors.max() < 10 * max(errors.min(), 1e-6)

    table = format_table(
        ["ordering", "nnz(L)", "nnz(Z)", "dpt", "Ea", "time_s"],
        rows,
        title="E8 — ordering ablation (fill / depth / accuracy)",
    )
    emit(bench_out_dir, "ablation_ordering", table)
