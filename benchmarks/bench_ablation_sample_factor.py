"""Ablation — sparsifier sample budget (Alg. 1 step 4).

The Spielman–Srivastava sample count ``q = factor·n·ln n`` controls the
size/accuracy trade-off of the sparsified blocks.  Sweeping the factor
shows the reduced-model edge count growing and the port error shrinking —
the design choice behind the paper's reduced-model sizes in Table II.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.powergrid.dc import dc_analysis
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.reduction.pipeline import PGReducer, ReductionConfig

SAMPLE_FACTORS = (2.0, 4.0, 8.0, 16.0)


def test_sample_factor_tradeoff(benchmark, bench_out_dir):
    grid = synthetic_ibmpg_like(nx=26, ny=26, pad_pitch=7, seed=11)
    original = dc_analysis(grid)
    ports = grid.port_nodes()
    rows = []

    def run():
        rows.clear()
        for factor in SAMPLE_FACTORS:
            reducer = PGReducer(
                grid,
                ReductionConfig(
                    er_method="cholinv", sparsify_sample_factor=factor, seed=1
                ),
            )
            reduced = reducer.reduce()
            solution = dc_analysis(reduced.grid)
            errors = reduced.port_voltage_errors(
                original.voltages, solution.voltages, ports
            )
            rows.append(
                [factor, reduced.grid.num_nodes, reduced.grid.num_resistors,
                 errors.mean() / original.max_drop() * 100]
            )
        return rows

    benchmark.pedantic(run, iterations=1, rounds=1)

    edges = np.array([r[2] for r in rows], dtype=float)
    rels = np.array([r[3] for r in rows])
    assert edges[-1] >= edges[0]  # bigger budget, denser model
    assert rels[-1] <= rels[0] + 0.5  # ... and at least as accurate

    table = format_table(
        ["sample_factor", "|V|red", "|E|red", "Rel_%"],
        rows,
        title="Ablation — sparsifier sample factor",
    )
    emit(bench_out_dir, "ablation_sample_factor", table)
