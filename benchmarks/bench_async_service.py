"""E9 — async serving throughput: serial vs parallel shard fan-out.

Measures the planner/executor redesign on its target workload: a cold
batch of mixed pair queries against a *multi-component* graph served by a
component-sharded engine.  Three paths answer the identical batch:

* **serial** — ``ResistanceService`` with the default ``SerialExecutor``
  (the pre-redesign behaviour: shards visited one after another);
* **parallel** — the same shared engine behind a ``ThreadedExecutor``,
  so the per-shard sub-batches run concurrently;
* **async** — ``AsyncResistanceService`` on top of the parallel service,
  with the batch arriving as many small concurrent requests that the
  micro-batching loop coalesces.

All three must produce bit-identical answers (asserted).  The ≥ 2×
speedup acceptance gate for the parallel path is only *asserted* when the
host actually has the cores to show it (``--assert-speedup auto``); a
1-core CI box still exercises the whole path and records the measured
numbers.  Results are printed and written as JSON for the CI artifact.

Run:  PYTHONPATH=src python benchmarks/bench_async_service.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro.core.engine import EngineConfig, build_engine
from repro.graphs.generators import grid_2d
from repro.graphs.graph import Graph
from repro.service import (
    AsyncResistanceService,
    ResistanceService,
    ThreadedExecutor,
)


def build_multi_component_graph(components: int, side: int, seed: int = 0) -> Graph:
    """Disjoint union of ``components`` jittered grids of ``side``²nodes."""
    return Graph.disjoint_union(
        [grid_2d(side, side, jitter=0.3, seed=seed + i) for i in range(components)]
    )


def make_query_stream(
    graph: Graph,
    components: int,
    batch: int,
    cross_fraction: float = 0.1,
    seed: int = 7,
) -> np.ndarray:
    """Random pair batch: mostly within-component (engine-bound), some cross.

    The disjoint-union layout puts component ``i``'s nodes in one
    contiguous id range, so within-component pairs are drawn per range;
    a ``cross_fraction`` of fully random pairs keeps the structural
    ``inf`` path exercised too.
    """
    rng = np.random.default_rng(seed)
    per_component = graph.num_nodes // components
    component_of = rng.integers(0, components, size=batch)
    lo = component_of * per_component
    pairs = np.column_stack([
        lo + rng.integers(0, per_component, size=batch),
        lo + rng.integers(0, per_component, size=batch),
    ])
    cross = rng.random(batch) < cross_fraction
    pairs[cross] = np.column_stack([
        rng.integers(0, graph.num_nodes, size=int(cross.sum())),
        rng.integers(0, graph.num_nodes, size=int(cross.sum())),
    ])
    return pairs


def run_case(args) -> dict:
    graph = build_multi_component_graph(args.components, args.side, seed=args.seed)
    config = EngineConfig(
        sharded=True, epsilon=args.epsilon, drop_tol=args.epsilon
    )
    t0 = time.perf_counter()
    engine = build_engine(graph, config)
    build_seconds = time.perf_counter() - t0
    pairs = make_query_stream(
        graph, args.components, args.batch, seed=args.seed + 1
    )

    # serial cold batch (fresh caches; shared prebuilt engine)
    serial = ResistanceService.from_engine(engine)
    t0 = time.perf_counter()
    serial_values, serial_report = serial.query_pairs_with_report(pairs)
    serial_seconds = time.perf_counter() - t0

    # parallel cold batch
    parallel = ResistanceService.from_engine(
        engine, executor=ThreadedExecutor(args.workers)
    )
    t0 = time.perf_counter()
    parallel_values, parallel_report = parallel.query_pairs_with_report(pairs)
    parallel_seconds = time.perf_counter() - t0

    # async cold batch: the same pairs as many concurrent small requests
    async_backend = ResistanceService.from_engine(
        engine, executor=ThreadedExecutor(args.workers)
    )
    chunks = np.array_split(pairs, args.requests)
    t0 = time.perf_counter()
    with AsyncResistanceService(
        async_backend, batch_window=args.batch_window
    ) as front:
        futures = [front.submit(chunk) for chunk in chunks if chunk.shape[0]]
        async_values = np.concatenate([future.result() for future in futures])
        coalesced_batches = front.stats.batches
    async_seconds = time.perf_counter() - t0

    assert np.array_equal(serial_values, parallel_values), (
        "parallel shard fan-out changed answers"
    )
    assert np.array_equal(serial_values, async_values), (
        "micro-batched path changed answers"
    )

    batch = pairs.shape[0]
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    return {
        "case": "async_service_cold_batch",
        "smoke": bool(args.smoke),
        "nodes": int(graph.num_nodes),
        "edges": int(graph.num_edges),
        "components": int(args.components),
        "batch_pairs": int(batch),
        "unique_engine_pairs": int(serial_report.unique_misses),
        "shards_touched": int(serial_report.shards_touched),
        "workers": int(args.workers),
        "requests": int(args.requests),
        "batch_window_s": float(args.batch_window),
        "engine_build_s": build_seconds,
        "serial_s": serial_seconds,
        "parallel_s": parallel_seconds,
        "async_s": async_seconds,
        "serial_qps": batch / serial_seconds if serial_seconds else 0.0,
        "parallel_qps": batch / parallel_seconds if parallel_seconds else 0.0,
        "async_qps": batch / async_seconds if async_seconds else 0.0,
        "parallel_speedup": speedup,
        "coalesced_engine_batches": int(coalesced_batches),
        "bit_identical": True,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized case (seconds, no speedup gate)")
    parser.add_argument("--components", type=int, default=8,
                        help="number of disjoint grid components")
    parser.add_argument("--side", type=int, default=None,
                        help="grid side per component "
                             "(default: 80 full / 14 smoke)")
    parser.add_argument("--batch", type=int, default=None,
                        help="cold query batch size "
                             "(default: 20000 full / 2000 smoke)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--requests", type=int, default=64,
                        help="concurrent requests the async path splits "
                             "the batch into")
    parser.add_argument("--batch-window", dest="batch_window", type=float,
                        default=0.002)
    parser.add_argument("--epsilon", type=float, default=1e-3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--assert-speedup", dest="assert_speedup",
                        choices=["auto", "always", "never"], default="auto",
                        help="gate on >= 2x parallel speedup: auto asserts "
                             "only on a multi-core host at full scale")
    parser.add_argument("--output", help="write the result record as JSON")
    args = parser.parse_args(argv)
    if args.side is None:
        args.side = 14 if args.smoke else 80  # 8 * 80^2 = 51200 nodes
    if args.batch is None:
        args.batch = 2000 if args.smoke else 20000

    result = run_case(args)
    print(json.dumps(result, indent=2))
    if args.output:
        out_dir = os.path.dirname(args.output)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.output, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)

    gate = args.assert_speedup == "always" or (
        args.assert_speedup == "auto"
        and not args.smoke
        and (os.cpu_count() or 1) >= args.workers
    )
    if gate and result["parallel_speedup"] < 2.0:
        print(
            f"FAIL: parallel path only {result['parallel_speedup']:.2f}x "
            f"over serial (>= 2x required with {args.workers} workers "
            f"on {os.cpu_count()} cores)",
            file=sys.stderr,
        )
        return 1
    print(
        f"parallel speedup {result['parallel_speedup']:.2f}x with "
        f"{args.workers} workers on {os.cpu_count()} core(s)"
        + ("" if gate else " (speedup gate not applicable on this host)"),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
