"""E10 — parallel engine-build pipeline: 1/2/4-worker build times.

Measures the ``build_workers`` dimension end to end on its two target
shapes:

* **single-component** — one large jittered grid, where the parallelism
  comes from the level-parallel Alg. 2 kernel (large levels split into
  column chunks that run concurrently; scipy's sparsetools matmul
  releases the GIL);
* **multi-component** — an 8-component disjoint union served by a
  component-sharded engine, where eager shard builds fan out over the
  build pool (each shard is an independent factorisation).

Every worker count must produce a **bit-identical** engine (asserted on
the raw ``Z̃`` CSC arrays, per shard for the sharded case) — the knob
trades wall-clock only.  The ≥ 1.7× speedup acceptance gate for 4 workers
on the multi-component case is only asserted when the host has the cores
to show it (``--assert-speedup auto``); a 1-core CI box still executes
the full parallel code path and records the measured numbers.  Results
are printed and written as ``BENCH_build_parallel.json`` for the CI
artifact trajectory.

Run:  PYTHONPATH=src python benchmarks/bench_build_parallel.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

# standalone script: make `benchmarks.conftest` importable from any cwd so
# the BENCH_*.json record shape stays shared across the bench suite
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from benchmarks.conftest import emit_json, host_context  # noqa: E402

import repro.core.approx_inverse as approx_inverse_module  # noqa: E402
from repro.core.effective_resistance import CholInvEffectiveResistance
from repro.core.engine import EngineConfig, build_engine
from repro.core.sharded import ShardedEngine
from repro.graphs.generators import grid_2d
from repro.graphs.graph import Graph

WORKER_COUNTS = (1, 2, 4)


def _z_arrays(engine) -> "list[tuple[np.ndarray, np.ndarray, np.ndarray]]":
    """The raw CSC arrays of every Alg. 3 factor an engine holds."""
    if isinstance(engine, ShardedEngine):
        out = []
        for sub in engine._engines:
            if isinstance(sub, CholInvEffectiveResistance):
                z = sub.z_tilde
                out.append((z.indptr, z.indices, z.data))
        return out
    z = engine.z_tilde
    return [(z.indptr, z.indices, z.data)]


def _assert_bit_identical(reference, candidate, case: str, workers: int) -> None:
    ref_arrays = _z_arrays(reference)
    cand_arrays = _z_arrays(candidate)
    assert len(ref_arrays) == len(cand_arrays), (
        f"{case}: {workers}-worker build produced a different shard layout"
    )
    for shard, ((rp, ri, rd), (cp, ci, cd)) in enumerate(
        zip(ref_arrays, cand_arrays)
    ):
        assert (
            np.array_equal(rp, cp)
            and np.array_equal(ri, ci)
            and np.array_equal(rd, cd)
        ), (
            f"{case}: Z̃ of shard {shard} differs between 1 and "
            f"{workers} workers — parallel build must be bit-identical"
        )


def run_case(name: str, graph: Graph, config: EngineConfig, probe: np.ndarray) -> dict:
    """Build the engine at every worker count; assert bit-equality vs serial."""
    runs = []
    reference = None
    reference_values = None
    for workers in WORKER_COUNTS:
        t0 = time.perf_counter()
        engine = build_engine(graph, config.replace(build_workers=workers))
        build_seconds = time.perf_counter() - t0
        values = engine.query_pairs(probe)
        if reference is None:
            reference, reference_values = engine, values
        else:
            _assert_bit_identical(reference, engine, name, workers)
            assert np.array_equal(reference_values, values), (
                f"{name}: {workers}-worker engine answered differently"
            )
        runs.append({
            "workers": workers,
            "build_seconds": build_seconds,
            "stage_seconds": {
                stage: float(seconds)
                for stage, seconds in engine.timer.times.items()
            },
        })
        print(
            f"  {name}: {workers} worker(s) -> {build_seconds:.3f}s",
            file=sys.stderr,
        )
    nnz = int(sum(arrays[2].shape[0] for arrays in _z_arrays(reference)))
    by_workers = {run["workers"]: run["build_seconds"] for run in runs}
    return {
        "case": name,
        "nodes": int(graph.num_nodes),
        "edges": int(graph.num_edges),
        "components": int(reference.component_labels.max()) + 1,
        "nnz_z": nnz,
        "runs": runs,
        "speedup_2": by_workers[1] / by_workers[2] if by_workers[2] else 0.0,
        "speedup_4": by_workers[1] / by_workers[4] if by_workers[4] else 0.0,
        "bit_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized case (seconds, no speedup gate)")
    parser.add_argument("--single-side", dest="single_side", type=int,
                        default=None,
                        help="grid side of the single-component case "
                             "(default: 224 full / 32 smoke)")
    parser.add_argument("--components", type=int, default=8,
                        help="components of the multi-component case")
    parser.add_argument("--multi-side", dest="multi_side", type=int,
                        default=None,
                        help="grid side per component "
                             "(default: 80 full / 13 smoke)")
    parser.add_argument("--epsilon", type=float, default=1e-3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chunk-target", dest="chunk_target", type=int,
                        default=None,
                        help="override the Alg. 2 chunking target (smoke "
                             "runs lower it so the chunked code path "
                             "executes even on tiny graphs)")
    parser.add_argument("--assert-speedup", dest="assert_speedup",
                        choices=["auto", "always", "never"], default="auto",
                        help="gate on >= 1.7x 4-worker build speedup for the "
                             "multi-component case: auto asserts only on a "
                             ">= 4-core host at full scale")
    parser.add_argument("--output", help="write the result record as JSON")
    args = parser.parse_args(argv)
    if args.single_side is None:
        args.single_side = 32 if args.smoke else 224   # 224² ≈ 50k nodes
    if args.multi_side is None:
        args.multi_side = 13 if args.smoke else 80     # 8 × 80² = 51200
    if args.chunk_target is None and args.smoke:
        # exercise the chunked parallel path on the tiny smoke graphs too
        args.chunk_target = 4096
    if args.chunk_target is not None:
        approx_inverse_module._CHUNK_TARGET_NNZ = int(args.chunk_target)

    rng = np.random.default_rng(args.seed + 17)

    single = grid_2d(args.single_side, args.single_side, jitter=0.3,
                     seed=args.seed)
    probe = rng.integers(0, single.num_nodes, size=(512, 2))
    print("single-component case:", file=sys.stderr)
    single_case = run_case(
        "single_component", single, EngineConfig(epsilon=args.epsilon), probe
    )

    multi = Graph.disjoint_union([
        grid_2d(args.multi_side, args.multi_side, jitter=0.3,
                seed=args.seed + i)
        for i in range(args.components)
    ])
    probe = rng.integers(0, multi.num_nodes, size=(512, 2))
    print("multi-component case:", file=sys.stderr)
    multi_case = run_case(
        "multi_component", multi,
        EngineConfig(epsilon=args.epsilon, sharded=True), probe,
    )

    result = {
        "bench": "build_parallel",
        "smoke": bool(args.smoke),
        "chunk_target": approx_inverse_module._CHUNK_TARGET_NNZ,
        "worker_counts": list(WORKER_COUNTS),
        "cases": [single_case, multi_case],
        "host": host_context(),
    }
    print(json.dumps(result, indent=2))
    if args.output:
        # one writer for every BENCH_*.json so the artifact records stay
        # shape-consistent across the bench suite
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        written = emit_json(out.parent, "build_parallel", result)
        if out.name != written.name:
            written.replace(out)
            print(f"moved to {out}", file=sys.stderr)

    gate = args.assert_speedup == "always" or (
        args.assert_speedup == "auto"
        and not args.smoke
        and (os.cpu_count() or 1) >= 4
    )
    speedup = multi_case["speedup_4"]
    if gate and speedup < 1.7:
        print(
            f"FAIL: multi-component 4-worker build only {speedup:.2f}x over "
            f"serial (>= 1.7x required on {os.cpu_count()} cores)",
            file=sys.stderr,
        )
        return 1
    print(
        f"multi-component 4-worker build speedup {speedup:.2f}x, "
        f"single-component {single_case['speedup_4']:.2f}x, on "
        f"{os.cpu_count()} core(s)"
        + ("" if gate else " (speedup gate not applicable on this host)"),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
