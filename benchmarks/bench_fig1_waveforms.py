"""Fig. 1 — transient waveforms of a VDD node and a GND node.

Runs the original and Alg.3-reduced transient simulations of the pg3-like
case, picks the worst-drop VDD port and worst-bounce GND port, writes the
four waveforms to ``benchmarks/out/fig1_waveforms.csv`` and renders an
ASCII figure.  The claim: the reduced-model waveforms visually coincide
with the original (paper shows overlapping curves).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, full_scale
from repro.bench.cases import TABLE2_CASES
from repro.bench.fig1 import ascii_plot, run_fig1


def test_fig1_waveforms(benchmark, bench_out_dir):
    case = TABLE2_CASES["pg3-like"]
    steps = 1000 if full_scale() else 300

    def run():
        return run_fig1(
            case,
            num_steps=steps,
            er_method="cholinv",
            output_csv=bench_out_dir / "fig1_waveforms.csv",
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)

    # the curves must coincide: divergence well under the grid's IR drop
    drop_scale = max(
        np.max(1.8 - result.vdd_original), np.max(result.gnd_original), 1e-9
    )
    assert result.max_divergence() < 0.25 * drop_scale

    vdd_plot = ascii_plot(
        result.times,
        {"original": result.vdd_original, "reduced": result.vdd_reduced},
        title=f"Fig. 1 (top): VDD node {result.vdd_node_name}",
    )
    gnd_plot = ascii_plot(
        result.times,
        {"original": result.gnd_original, "reduced": result.gnd_reduced},
        title=f"Fig. 1 (bottom): GND node {result.gnd_node_name}",
    )
    emit(bench_out_dir, "fig1", vdd_plot + "\n\n" + gnd_plot)
