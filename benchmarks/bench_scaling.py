"""E5 — scalability: nnz(Z̃) and runtime grow like n·log n.

Section III-C claims nnz(Z̃) ≈ C·n·log n with a small constant C (< 20),
and overall complexity O(n log n · log log n) — the basis of the paper's
6.0E7-node "thupg10" data point.  This bench sweeps grid sizes and checks

* the measured C = nnz(Z̃)/(n log n) stays bounded (no upward drift);
* runtime grows sub-quadratically (doubling n far less than 4X time).

Besides the rendered table, the run writes ``BENCH_scaling.json`` (one row
per size: n, m, nnz, per-stage wall time, workers) so CI artifacts record
the scaling trajectory machine-readably across commits.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, emit_json, full_scale
from repro.bench.reporting import format_table
from repro.core.effective_resistance import CholInvEffectiveResistance
from repro.graphs.generators import grid_2d
from repro.utils.timing import timed


def _sizes():
    if full_scale():
        return [(60, 60), (85, 85), (120, 120), (170, 170), (240, 240)]
    return [(40, 40), (57, 57), (80, 80), (113, 113)]


def test_nnz_and_time_scale_like_nlogn(benchmark, bench_out_dir):
    rows = []
    records = []

    def run():
        rows.clear()
        records.clear()
        for rows_n, cols_n in _sizes():
            graph = grid_2d(rows_n, cols_n, jitter=0.3, seed=5)
            with timed() as elapsed:
                est = CholInvEffectiveResistance(
                    graph, epsilon=1e-3, drop_tol=1e-3, ordering="amd"
                )
                est.all_edge_resistances()
            n = graph.num_nodes
            rows.append(
                [n, graph.num_edges, est.stats.nnz, est.stats.nnz_per_nlogn,
                 est.max_depth, elapsed()]
            )
            records.append({
                "nodes": n,
                "edges": int(graph.num_edges),
                "nnz_z": int(est.stats.nnz),
                "nnz_per_nlogn": float(est.stats.nnz_per_nlogn),
                "max_depth": int(est.max_depth),
                "workers": int(est.build_workers),
                "stage_seconds": {
                    stage: float(seconds)
                    for stage, seconds in est.timer.times.items()
                },
                "total_seconds": float(elapsed()),
            })
        return rows

    benchmark.pedantic(run, iterations=1, rounds=1)

    ratios = np.array([r[3] for r in rows])
    times = np.array([r[5] for r in rows])
    ns = np.array([r[0] for r in rows])

    # C stays small and does not drift upward (paper: C < 20)
    assert ratios.max() < 25.0
    assert ratios[-1] < 2.0 * ratios[0]

    # runtime clearly sub-quadratic: fit slope of log(time) vs log(n)
    slope = np.polyfit(np.log(ns), np.log(times), 1)[0]
    assert slope < 1.8, f"runtime scaling exponent {slope:.2f} looks superlinear"

    table = format_table(
        ["n", "m", "nnz(Z)", "nnz/(n log n)", "dpt", "time_s"],
        rows,
        title="E5 — nnz(Z̃) and runtime scaling (paper: C < 20, ~n log n)",
    )
    emit(bench_out_dir, "scaling", table + f"\nfitted time exponent: {slope:.2f}")
    emit_json(bench_out_dir, "scaling", {
        "fitted_time_exponent": float(slope),
        "sizes": records,
    })
