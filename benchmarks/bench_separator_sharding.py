"""E11 — within-component separator sharding on one large component.

The classic ``sharded=True`` engine parallelises across connected
components, which buys nothing on the single huge component that
dominates real netlists.  ``shard_strategy="separator"`` splits that one
component into vertex-separator-bounded regions, factors each region
independently (fanned out over ``build_workers``), and answers
cross-region pairs exactly through a dense Schur complement on the
separator.  This bench measures the whole trade on a single ~50k-node
jittered grid:

* **monolithic** — one cholinv factorisation of the full component, the
  baseline every region-sharded answer is compared against;
* **separator-sharded** — the same component at 1/2/4 build workers,
  with bit-identity asserted across worker counts (the knob trades
  wall-clock only) and max relative deviation vs the monolithic answers
  recorded and gated.

The ≥ 1.3× acceptance gate for the 4-worker region build over the
1-worker region build is only asserted at full scale on a ≥ 4-core host
(``--assert-speedup auto``); smoke runs still execute every code path.
Results are written as ``BENCH_separator_sharding.json`` for the CI
artifact trajectory.

Run:  PYTHONPATH=src python benchmarks/bench_separator_sharding.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

# standalone script: make `benchmarks.conftest` importable from any cwd so
# the BENCH_*.json record shape stays shared across the bench suite
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from benchmarks.conftest import emit_json, host_context  # noqa: E402

from repro.core.engine import EngineConfig, build_engine  # noqa: E402
from repro.core.partitioned import PartitionedEngine
from repro.graphs.generators import grid_2d

WORKER_COUNTS = (1, 2, 4)
# cross-region answers are exact given the region factors, so the sharded
# engine must track the monolithic one to the same order as the configured
# epsilon; the gate is deliberately loose (100x) — it catches wiring bugs
# (wrong separator algebra ~ O(1) errors), not approximation noise
ERROR_GATE_FACTOR = 100.0


def _timed_build(graph, config) -> "tuple[object, float]":
    t0 = time.perf_counter()
    engine = build_engine(graph, config)
    return engine, time.perf_counter() - t0


def _timed_query(engine, probe) -> "tuple[np.ndarray, float]":
    t0 = time.perf_counter()
    values = engine.query_pairs(probe)
    return values, time.perf_counter() - t0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized case (seconds, no speedup gate)")
    parser.add_argument("--side", type=int, default=None,
                        help="grid side of the single component "
                             "(default: 224 full / 32 smoke)")
    parser.add_argument("--epsilon", type=float, default=1e-4)
    parser.add_argument("--drop-tol", dest="drop_tol", type=float,
                        default=1e-6,
                        help="ichol drop tolerance (tight by default so the "
                             "per-pair deviation gate is meaningful — at "
                             "coarse tolerances cholinv's per-pair error is "
                             "not bounded by epsilon and the comparison "
                             "would measure approximation noise, not the "
                             "separator algebra)")
    parser.add_argument("--max-shard-nodes", dest="max_shard_nodes",
                        type=int, default=None,
                        help="region size cap (default: component size / 4)")
    parser.add_argument("--separator", default="bisection",
                        choices=["bisection", "kway"])
    parser.add_argument("--probes", type=int, default=2048,
                        help="random query pairs (half forced cross-region)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--assert-speedup", dest="assert_speedup",
                        choices=["auto", "always", "never"], default="auto",
                        help="gate on >= 1.3x 4-worker region-build speedup: "
                             "auto asserts only on a >= 4-core host at full "
                             "scale")
    parser.add_argument("--output", help="write the result record as JSON")
    args = parser.parse_args(argv)
    if args.side is None:
        args.side = 32 if args.smoke else 224          # 224² ≈ 50k nodes

    graph = grid_2d(args.side, args.side, jitter=0.3, seed=args.seed)
    rng = np.random.default_rng(args.seed + 23)
    probe = rng.integers(0, graph.num_nodes, size=(args.probes, 2))

    print(
        f"single component: {graph.num_nodes} nodes, {graph.num_edges} edges",
        file=sys.stderr,
    )
    mono, mono_build = _timed_build(
        graph, EngineConfig(epsilon=args.epsilon, drop_tol=args.drop_tol)
    )
    mono_values, mono_query = _timed_query(mono, probe)
    print(
        f"  monolithic: build {mono_build:.3f}s, "
        f"{args.probes} queries {mono_query:.3f}s",
        file=sys.stderr,
    )

    sharded_config = EngineConfig(
        epsilon=args.epsilon,
        drop_tol=args.drop_tol,
        shard_strategy="separator",
        max_shard_nodes=args.max_shard_nodes,
        separator=args.separator,
    )
    runs = []
    reference_values = None
    plan_record = None
    for workers in WORKER_COUNTS:
        engine, build_seconds = _timed_build(
            graph, sharded_config.replace(build_workers=workers)
        )
        assert isinstance(engine, PartitionedEngine)
        values, query_seconds = _timed_query(engine, probe)
        if reference_values is None:
            reference_values = values
            report = engine.partition_report()
            assert engine.plan.separator.size > 0, (
                "bench graph must actually be split — raise --side or "
                "lower --max-shard-nodes"
            )
            plan_record = {
                "num_shards": report["num_shards"],
                "separator_size": report["separator_size"],
                "shard_sizes": [int(s) for s in report["shard_sizes"]],
                "separator_fraction": float(
                    report["separators"][0].separator_fraction
                ),
                "region_imbalance": float(report["separators"][0].imbalance),
            }
        else:
            assert np.array_equal(values, reference_values), (
                f"{workers}-worker separator-sharded engine answered "
                f"differently — worker count must trade wall-clock only"
            )
        runs.append({
            "workers": workers,
            "build_seconds": build_seconds,
            "query_seconds": query_seconds,
            "stage_seconds": {
                stage: float(seconds)
                for stage, seconds in engine.timer.times.items()
            },
        })
        print(
            f"  separator-sharded: {workers} worker(s) -> "
            f"build {build_seconds:.3f}s, queries {query_seconds:.3f}s",
            file=sys.stderr,
        )

    # correctness vs the monolithic factorisation (both approximate at the
    # same epsilon, and the Schur path is exact given the region factors)
    scale = np.maximum(np.abs(mono_values), 1e-12)
    max_rel_dev = float(np.max(np.abs(reference_values - mono_values) / scale))
    error_bound = ERROR_GATE_FACTOR * args.epsilon
    print(
        f"  max relative deviation vs monolithic: {max_rel_dev:.3e} "
        f"(gate {error_bound:.1e})",
        file=sys.stderr,
    )

    by_workers = {run["workers"]: run["build_seconds"] for run in runs}
    speedup_4 = by_workers[1] / by_workers[4] if by_workers[4] else 0.0
    result = {
        "bench": "separator_sharding",
        "smoke": bool(args.smoke),
        "nodes": int(graph.num_nodes),
        "edges": int(graph.num_edges),
        "epsilon": args.epsilon,
        "separator_method": args.separator,
        "plan": plan_record,
        "monolithic": {
            "build_seconds": mono_build,
            "query_seconds": mono_query,
        },
        "worker_counts": list(WORKER_COUNTS),
        "runs": runs,
        "speedup_2": by_workers[1] / by_workers[2] if by_workers[2] else 0.0,
        "speedup_4": speedup_4,
        "max_rel_dev_vs_monolithic": max_rel_dev,
        "bit_identical": True,
        "host": host_context(),
    }
    print(json.dumps(result, indent=2))
    if args.output:
        # one writer for every BENCH_*.json so the artifact records stay
        # shape-consistent across the bench suite
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        written = emit_json(out.parent, "separator_sharding", result)
        if out.name != written.name:
            written.replace(out)
            print(f"moved to {out}", file=sys.stderr)

    if max_rel_dev > error_bound:
        print(
            f"FAIL: separator-sharded answers deviate {max_rel_dev:.3e} from "
            f"monolithic (bound {error_bound:.1e})",
            file=sys.stderr,
        )
        return 1
    gate = args.assert_speedup == "always" or (
        args.assert_speedup == "auto"
        and not args.smoke
        and (os.cpu_count() or 1) >= 4
    )
    if gate and speedup_4 < 1.3:
        print(
            f"FAIL: 4-worker region build only {speedup_4:.2f}x over serial "
            f"(>= 1.3x required on {os.cpu_count()} cores)",
            file=sys.stderr,
        )
        return 1
    print(
        f"separator-sharded 4-worker build speedup {speedup_4:.2f}x over "
        f"1-worker, monolithic build {mono_build:.3f}s, on "
        f"{os.cpu_count()} core(s)"
        + ("" if gate else " (speedup gate not applicable on this host)"),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
