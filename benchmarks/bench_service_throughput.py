"""E8 — blocked Alg. 2 kernel speedup and ResistanceService throughput.

Two claims back the serving layer:

* the level-scheduled blocked Alg. 2 kernel beats the per-column reference
  loop by ≥ 3× on a ~50k-node grid while producing the *same* ``Z̃``
  (cross-checked here entry-for-entry);
* a :class:`repro.service.ResistanceService` answering a skewed query
  stream (hot pairs dominate, as in production traffic) serves repeat
  traffic much faster than engine-only evaluation thanks to its LRU result
  cache.

``REPRO_BENCH_SMOKE=1`` shrinks both cases to CI-smoke size;
``REPRO_BENCH_FULL=1`` grows the kernel case beyond the paper scale.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import emit, full_scale
from repro.bench.reporting import format_table
from repro.cholesky.incomplete import ichol
from repro.core.approx_inverse import approximate_inverse
from repro.graphs.generators import grid_2d
from repro.graphs.laplacian import grounded_laplacian
from repro.service import ResistanceService


def smoke_scale() -> bool:
    """True for the CI smoke configuration (tiny cases, loose asserts)."""
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _kernel_side() -> int:
    if smoke_scale():
        return 60  # 3.6k nodes
    if full_scale():
        return 300  # 90k nodes
    return 224  # ~50k nodes — the acceptance case


def _best_of(fn, repeats: int = 2) -> "tuple[float, object]":
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best, result = elapsed, out
    return best, result


def test_blocked_kernel_speedup(benchmark, bench_out_dir):
    side = _kernel_side()
    graph = grid_2d(side, side, jitter=0.3, seed=5)
    matrix, _ = grounded_laplacian(graph, 1.0)
    factor = ichol(matrix, drop_tol=1e-3, ordering="amd")
    rows = []

    def run():
        rows.clear()
        t_ref, (z_ref, _) = _best_of(
            lambda: approximate_inverse(factor.lower, epsilon=1e-3, mode="reference")
        )
        t_blk, (z_blk, _) = _best_of(
            lambda: approximate_inverse(factor.lower, epsilon=1e-3, mode="blocked")
        )
        assert (z_ref.indptr == z_blk.indptr).all()
        assert (z_ref.indices == z_blk.indices).all()
        assert np.allclose(z_ref.data, z_blk.data, rtol=1e-12, atol=0.0)
        rows.append(
            [graph.num_nodes, graph.num_edges, z_blk.nnz, t_ref, t_blk, t_ref / t_blk]
        )
        return rows

    benchmark.pedantic(run, iterations=1, rounds=1)
    speedup = rows[0][5]
    if not smoke_scale():
        assert speedup >= 3.0, f"blocked kernel only {speedup:.2f}x over reference"

    table = format_table(
        ["n", "m", "nnz(Z)", "reference_s", "blocked_s", "speedup"],
        rows,
        title="E8a — blocked vs reference Alg. 2 kernel (same Z̃, paper ε)",
    )
    emit(bench_out_dir, "service_kernel_speedup", table)


def test_service_query_throughput(benchmark, bench_out_dir):
    side = 40 if smoke_scale() else 140
    graph = grid_2d(side, side, jitter=0.3, seed=7)
    rng = np.random.default_rng(11)
    # skewed stream: many requests concentrated on few hot pairs
    distinct = 500 if smoke_scale() else 5000
    stream_len = 10 * distinct
    hot = np.column_stack([
        rng.integers(0, graph.num_nodes, size=distinct),
        rng.integers(0, graph.num_nodes, size=distinct),
    ])
    stream = hot[rng.integers(0, distinct, size=stream_len)]
    rows = []

    def run():
        rows.clear()
        service = ResistanceService(graph, epsilon=1e-3, drop_tol=1e-3)
        t0 = time.perf_counter()
        cold = service.query_pairs(stream)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = service.query_pairs(stream)
        t_warm = time.perf_counter() - t0
        assert np.array_equal(cold, warm, equal_nan=True)
        rows.append([
            graph.num_nodes, stream_len, distinct,
            stream_len / t_cold, stream_len / t_warm,
            service.stats.hit_rate,
        ])
        return service

    service = benchmark.pedantic(run, iterations=1, rounds=1)
    assert service.stats.hit_rate > 0.5  # repeats + duplicates hit the LRU
    assert rows[0][4] > rows[0][3]  # warm pass beats cold pass

    table = format_table(
        ["n", "queries", "distinct", "cold_qps", "warm_qps", "hit_rate"],
        rows,
        title="E8b — ResistanceService throughput on a skewed pair stream",
    )
    emit(bench_out_dir, "service_throughput", table)
