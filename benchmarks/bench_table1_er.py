"""Table I — computing effective resistances on large graphs.

Regenerates the paper's main comparison: Alg. 3 vs the WWW'15
random-projection baseline on social / FE-mesh / power-grid graphs, with
the sampled Ea/Em error protocol, filled-graph depth and sparsity ratios.

Claims that must hold (paper Section IV-A):

* Alg. 3 is one to two orders of magnitude faster than the baseline;
* Alg. 3's average relative error is one to two orders of magnitude lower;
* nnz(Z̃)/(n log n) is a small constant, far below the baseline's ratio.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, full_scale
from repro.bench.cases import TABLE1_CASES, quick_table1_names
from repro.bench.table1 import render_table1, run_table1_case

_ROWS = {}


def _case_names():
    return list(TABLE1_CASES) if full_scale() else quick_table1_names()


@pytest.mark.parametrize("name", _case_names())
def test_table1_case(benchmark, name, bench_out_dir):
    case = TABLE1_CASES[name]

    def run():
        return run_table1_case(case, seed=0)

    row = benchmark.pedantic(run, iterations=1, rounds=1)
    _ROWS[name] = row

    # the two headline claims of Table I
    assert row.measured_speedup > 3.0, "Alg. 3 must clearly beat the baseline"
    assert row.error_improvement > 5.0, "Alg. 3 must be clearly more accurate"
    assert row.alg3_ea < 1e-2
    assert row.alg3_nnz_ratio < 40.0

    if len(_ROWS) == len(_case_names()):
        rows = [_ROWS[n] for n in _case_names()]
        emit(bench_out_dir, "table1", render_table1(rows, TABLE1_CASES))
