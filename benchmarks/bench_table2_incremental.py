"""Table II (lower) — PG reduction + DC incremental analysis.

Regenerates the paper's incremental rows: reduce the pristine grid once,
perturb ~10% of blocks (the design-fix scenario), re-reduce only the
modified blocks, DC-solve the reduced model, and compare against a direct
solve of the modified grid.

Claims that must hold:

* incremental Tred is a small fraction of the full reduction (paper: ~10%);
* Alg. 3's incremental reduction is faster than exact-ER's with the same
  accuracy (paper: 2.5X overall speedup, identical Err).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, full_scale
from repro.bench.cases import TABLE2_CASES, quick_table2_names
from repro.bench.table2 import render_table2, run_table2_incremental

_ROWS = []


def _case_names():
    return list(TABLE2_CASES) if full_scale() else quick_table2_names()


@pytest.mark.parametrize("name", _case_names())
def test_table2_incremental_case(benchmark, name, bench_out_dir):
    case = TABLE2_CASES[name]

    def run():
        return run_table2_incremental(case)

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    _ROWS.extend(rows)

    by_method = {row.method: row for row in rows}
    exact = by_method["exact"]
    alg3 = by_method["cholinv"]

    assert alg3.rel_pct < 8.0
    assert alg3.rel_pct < exact.rel_pct * 2.0 + 0.5
    # incremental re-reduction touches ~1 small block at quick scale, where
    # wall-clock is dominated by constant overheads rather than the ER
    # backend; require Alg. 3 stays in the same ballpark here (the full
    # asymmetric cost shows in the transient rows and at REPRO_BENCH_FULL
    # scale, mirroring the paper's 6.4X claim qualitatively)
    assert alg3.time_reduction < 3.0 * exact.time_reduction + 0.15

    if len(_ROWS) == 3 * len(_case_names()):
        emit(bench_out_dir, "table2_incremental", render_table2(_ROWS, "inc"))
