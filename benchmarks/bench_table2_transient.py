"""Table II (upper) — PG reduction + transient analysis.

Regenerates the paper's transient rows: for each synthetic ibmpg-like case
and each effective-resistance backend, reduce with Alg. 1, run the 1000
fixed-step Backward-Euler simulation on original and reduced grids, and
report Tred / Ttr / Err(mV) / Rel(%).

Claims that must hold:

* Alg. 3 reduction is markedly faster than exact-ER reduction
  (paper: 6.4X average), with **no loss of accuracy** (Rel matches the
  exact column);
* the random-projection backend is slower than Alg. 3 and *less accurate*
  (its ER errors corrupt merging/sampling probabilities).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, full_scale
from repro.bench.cases import TABLE2_CASES, quick_table2_names
from repro.bench.table2 import render_table2, run_table2_transient

_ROWS = []


def _case_names():
    return list(TABLE2_CASES) if full_scale() else quick_table2_names()


def _num_steps():
    return 1000 if full_scale() else 300


@pytest.mark.parametrize("name", _case_names())
def test_table2_transient_case(benchmark, name, bench_out_dir):
    case = TABLE2_CASES[name]

    def run():
        return run_table2_transient(case, num_steps=_num_steps())

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    _ROWS.extend(rows)

    by_method = {row.method: row for row in rows}
    exact = by_method["exact"]
    alg3 = by_method["cholinv"]
    rp = by_method["random_projection"]

    # accuracy: Alg. 3 must match the exact-ER reduction quality
    assert alg3.rel_pct < 6.0
    assert alg3.rel_pct < exact.rel_pct * 2.0 + 0.5
    # speed: Alg. 3 reduction must beat the exact-ER reduction
    assert alg3.time_reduction < exact.time_reduction
    # the RP backend must not be more accurate than Alg. 3 by any margin
    assert rp.rel_pct > 0.5 * alg3.rel_pct

    if len(_ROWS) == 3 * len(_case_names()):
        emit(bench_out_dir, "table2_transient", render_table2(_ROWS, "tr"))
