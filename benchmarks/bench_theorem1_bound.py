"""E9 — Theorem 1: measured column errors vs the depth·ε bound.

Measures ``‖z_p − z̃_p‖₁/‖z_p‖₁`` for sampled columns against the a priori
bound ``depth(p)·ε`` and reports the tightness distribution.  The bound
must hold for every sampled node and is expected to be loose in practice
(the paper's observed errors are far below it).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.cholesky.incomplete import ichol
from repro.core.approx_inverse import approximate_inverse
from repro.core.error_bounds import column_error_report
from repro.graphs.generators import fe_mesh_2d
from repro.graphs.laplacian import grounded_laplacian

EPSILONS = (1e-2, 1e-3)


def test_theorem1_bound_holds(benchmark, bench_out_dir):
    graph = fe_mesh_2d(30, 30, seed=9)
    matrix, _ = grounded_laplacian(graph, 1.0)
    factor = ichol(matrix, drop_tol=1e-3, ordering="amd")
    rows = []

    def run():
        rows.clear()
        for eps in EPSILONS:
            z, _ = approximate_inverse(factor.lower, epsilon=eps)
            report = column_error_report(
                factor.lower, z, eps, seed=0, max_samples=150
            )
            tightness = report.tightness
            finite = tightness[np.isfinite(tightness)]
            rows.append(
                [eps, report.max_violation, float(report.measured.max()),
                 float(report.bound.max()), float(finite.mean()), float(finite.max())]
            )
        return rows

    benchmark.pedantic(run, iterations=1, rounds=1)

    for row in rows:
        assert row[1] <= 1e-10, "Theorem 1 bound violated"
        assert row[5] <= 1.0 + 1e-9

    table = format_table(
        ["epsilon", "max_violation", "max_measured", "max_bound",
         "mean_tightness", "max_tightness"],
        rows,
        title="E9 — Theorem 1 depth bound (must hold; expected loose)",
    )
    emit(bench_out_dir, "theorem1_bound", table)
