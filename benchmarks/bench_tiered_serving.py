"""E12 — tiered-accuracy serving behind the SLA-aware query router.

The serving claim: once :meth:`ResistanceService.enable_tiers` has stood
up a landmark tier next to the exact cholinv engine, a batch requested at
``rel_tol=0.05`` is served **≥ 5× faster** than the same batch through
the exact path, while every routed answer stays within the requested
tolerance of the exact value — and a request with *no* SLA remains
bit-identical to a tier-less service.  This bench measures all three on
a single ~50k-node Barabási–Albert graph (the heavy-tailed degree
profile that makes landmark projection earn its keep):

* **exact** — the plain ``query_pairs`` path, cache disabled, the
  baseline every routed answer is compared against;
* **routed** — the same batch at each of three tolerances, with the
  per-tier split, wall-clock, and observed max relative error recorded.

The ≥ 5× speedup and within-tolerance gates are only asserted at full
scale (``--assert-speedup auto``); smoke runs still execute every code
path, including the no-SLA bit-identity check.  Results are written as
``BENCH_tiered_serving.json`` for the CI artifact trajectory.

Run:  PYTHONPATH=src python benchmarks/bench_tiered_serving.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

# standalone script: make `benchmarks.conftest` importable from any cwd so
# the BENCH_*.json record shape stays shared across the bench suite
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from benchmarks.conftest import emit_json, host_context  # noqa: E402

from repro.core.engine import EngineConfig  # noqa: E402
from repro.graphs.generators import barabasi_albert_graph
from repro.service import ResistanceService

REL_TOLS = (0.2, 0.05, 0.01)
GATE_REL_TOL = 0.05  # the acceptance tolerance the speedup gate runs at
GATE_SPEEDUP = 5.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized case (seconds, no speedup gate)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="graph size (default: 50000 full / 2000 smoke)")
    parser.add_argument("--attachments", type=int, default=4,
                        help="Barabási–Albert edges per new node")
    parser.add_argument("--num-landmarks", dest="num_landmarks", type=int,
                        default=64)
    parser.add_argument("--queries", type=int, default=None,
                        help="batch size (default: 4096 full / 512 smoke)")
    parser.add_argument("--calibration-pairs", dest="calibration_pairs",
                        type=int, default=None,
                        help="router calibration sample "
                             "(default: 4096 full / 512 smoke)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--assert-speedup", dest="assert_speedup",
                        choices=["auto", "always", "never"], default="auto",
                        help="gate on >= 5x routed speedup at rel_tol=0.05: "
                             "auto asserts only at full scale")
    parser.add_argument("--output", help="write the result record as JSON")
    args = parser.parse_args(argv)
    if args.nodes is None:
        args.nodes = 2000 if args.smoke else 50000
    if args.queries is None:
        args.queries = 512 if args.smoke else 4096
    if args.calibration_pairs is None:
        args.calibration_pairs = 512 if args.smoke else 4096

    graph = barabasi_albert_graph(
        args.nodes, attachments=args.attachments, seed=args.seed
    )
    print(
        f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges "
        f"(Barabási–Albert, m={args.attachments})",
        file=sys.stderr,
    )
    rng = np.random.default_rng(args.seed + 31)
    batch = rng.integers(0, graph.num_nodes, size=(args.queries, 2))

    # cache disabled throughout: the bench measures engine/tier wall-clock,
    # not LRU hits (bench_service_throughput covers the cache)
    t0 = time.perf_counter()
    service = ResistanceService(
        graph,
        config=EngineConfig(num_landmarks=args.num_landmarks, seed=args.seed),
        result_cache_size=0,
    )
    build_seconds = time.perf_counter() - t0
    print(f"  exact engine build: {build_seconds:.3f}s", file=sys.stderr)

    t0 = time.perf_counter()
    exact = service.query_pairs(batch)
    exact_seconds = time.perf_counter() - t0
    print(
        f"  exact path: {args.queries} queries in {exact_seconds:.3f}s",
        file=sys.stderr,
    )

    t0 = time.perf_counter()
    service.enable_tiers(
        tiers=("landmark",),
        calibration_pairs=args.calibration_pairs,
        calibration_seed=args.seed,
    )
    tier_seconds = time.perf_counter() - t0
    print(
        f"  landmark tier build + calibration: {tier_seconds:.3f}s "
        f"(k={args.num_landmarks})",
        file=sys.stderr,
    )

    # no-SLA requests must stay bit-identical to the tier-less service
    plain = service.query_pairs(batch)
    bit_identical = bool(np.array_equal(plain, exact, equal_nan=True))
    assert bit_identical, "no-SLA request diverged after enable_tiers()"

    scale = np.maximum(np.abs(exact), 1e-12)
    finite = np.isfinite(exact)
    runs = []
    for rel_tol in REL_TOLS:
        t0 = time.perf_counter()
        values, report = service.query_pairs_with_report(batch, rel_tol=rel_tol)
        routed_seconds = time.perf_counter() - t0
        rel = np.abs(values[finite] - exact[finite]) / scale[finite]
        max_rel_err = float(rel.max()) if finite.any() else 0.0
        runs.append({
            "rel_tol": rel_tol,
            "seconds": routed_seconds,
            "speedup_vs_exact": exact_seconds / routed_seconds
            if routed_seconds else 0.0,
            "max_rel_error": max_rel_err,
            "within_tolerance": max_rel_err <= rel_tol,
            "tier_rows": {k: int(v) for k, v in report.tier_rows.items()},
        })
        print(
            f"  rel_tol={rel_tol}: {routed_seconds:.3f}s "
            f"({runs[-1]['speedup_vs_exact']:.1f}x), "
            f"max rel err {max_rel_err:.4f}, tiers {runs[-1]['tier_rows']}",
            file=sys.stderr,
        )

    result = {
        "bench": "tiered_serving",
        "smoke": bool(args.smoke),
        "nodes": int(graph.num_nodes),
        "edges": int(graph.num_edges),
        "attachments": args.attachments,
        "num_landmarks": args.num_landmarks,
        "queries": args.queries,
        "calibration_pairs": args.calibration_pairs,
        "build_seconds": build_seconds,
        "tier_build_seconds": tier_seconds,
        "exact_seconds": exact_seconds,
        "no_sla_bit_identical": bit_identical,
        "runs": runs,
        "host": host_context(),
    }
    print(json.dumps(result, indent=2))
    if args.output:
        # one writer for every BENCH_*.json so the artifact records stay
        # shape-consistent across the bench suite
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        written = emit_json(out.parent, "tiered_serving", result)
        if out.name != written.name:
            written.replace(out)
            print(f"moved to {out}", file=sys.stderr)

    gate_run = next(r for r in runs if r["rel_tol"] == GATE_REL_TOL)
    if not gate_run["within_tolerance"]:
        print(
            f"FAIL: routed answers at rel_tol={GATE_REL_TOL} deviate "
            f"{gate_run['max_rel_error']:.4f} from exact",
            file=sys.stderr,
        )
        return 1
    gate = args.assert_speedup == "always" or (
        args.assert_speedup == "auto" and not args.smoke
    )
    if gate and gate_run["speedup_vs_exact"] < GATE_SPEEDUP:
        print(
            f"FAIL: routed batch at rel_tol={GATE_REL_TOL} only "
            f"{gate_run['speedup_vs_exact']:.2f}x over exact "
            f"(>= {GATE_SPEEDUP}x required)",
            file=sys.stderr,
        )
        return 1
    print(
        f"tiered serving at rel_tol={GATE_REL_TOL}: "
        f"{gate_run['speedup_vs_exact']:.1f}x over exact, max rel err "
        f"{gate_run['max_rel_error']:.4f}, no-SLA bit-identical"
        + ("" if gate else " (speedup gate not applicable at smoke scale)"),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
