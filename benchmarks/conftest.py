"""Shared infrastructure for the benchmark suite.

Every bench target regenerates one table or figure of the paper (see
DESIGN.md §4).  Benchmarks run at a laptop-friendly scale by default;
set ``REPRO_BENCH_FULL=1`` for the larger configurations.

Rendered tables are printed *and* written to ``benchmarks/out/`` so the
paper-vs-measured record in EXPERIMENTS.md can be refreshed from a run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def full_scale() -> bool:
    """True when the user asked for full-scale benchmark runs."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_out_dir() -> Path:
    """Directory collecting rendered benchmark tables."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(out_dir: Path, name: str, text: str) -> None:
    """Print a rendered table and persist it under ``benchmarks/out/``."""
    print()
    print(text)
    (out_dir / f"{name}.txt").write_text(text + "\n")
