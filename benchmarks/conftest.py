"""Shared infrastructure for the benchmark suite.

Every bench target regenerates one table or figure of the paper (see
DESIGN.md §4).  Benchmarks run at a laptop-friendly scale by default;
set ``REPRO_BENCH_FULL=1`` for the larger configurations.

Rendered tables are printed *and* written to ``benchmarks/out/`` so the
paper-vs-measured record in EXPERIMENTS.md can be refreshed from a run.
Machine-readable records land next to them as ``BENCH_<name>.json``
(:func:`emit_json`) — one self-describing JSON object per bench, with the
host context attached, so CI artifacts accumulate a comparable trajectory
of measurements across commits.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def full_scale() -> bool:
    """True when the user asked for full-scale benchmark runs."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_out_dir() -> Path:
    """Directory collecting rendered benchmark tables."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(out_dir: Path, name: str, text: str) -> None:
    """Print a rendered table and persist it under ``benchmarks/out/``."""
    print()
    print(text)
    (out_dir / f"{name}.txt").write_text(text + "\n")


def host_context() -> dict:
    """Host facts every ``BENCH_*.json`` record carries for comparability."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "full_scale": full_scale(),
    }


def emit_json(out_dir: Path, name: str, record: dict) -> Path:
    """Write one machine-readable bench record as ``BENCH_<name>.json``.

    The record is augmented with :func:`host_context` under ``"host"``;
    CI uploads every ``BENCH_*.json`` as an artifact, forming the bench
    trajectory across commits.
    """
    out_dir.mkdir(exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    payload = dict(record)
    payload.setdefault("bench", name)
    payload.setdefault("host", host_context())
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    return path
