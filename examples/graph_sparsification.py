"""Spectral sparsification by effective-resistance sampling.

Demonstrates the Spielman–Srivastava sparsifier on a dense graph using
Alg. 3's approximate effective resistances as sampling scores — the core
of the power-grid reduction's step 4.  Verifies spectral quality via the
Laplacian quadratic form and via preserved effective resistances.

Run:  python examples/graph_sparsification.py
"""

from __future__ import annotations

import numpy as np

from repro import CholInvEffectiveResistance, ExactEffectiveResistance, complete_graph
from repro.graphs.laplacian import laplacian
from repro.reduction.sparsify import spielman_srivastava_sparsify


def main() -> None:
    graph = complete_graph(150)  # 11k edges — dense
    print(f"dense input: {graph.num_nodes} nodes, {graph.num_edges} edges")

    est = CholInvEffectiveResistance(graph, epsilon=1e-3, drop_tol=1e-3)
    resistances = est.all_edge_resistances()

    result = spielman_srivastava_sparsify(
        graph, resistances, sample_factor=6.0, seed=0
    )
    sparse = result.graph
    print(
        f"sparsified: {sparse.num_edges} edges "
        f"({sparse.num_edges / graph.num_edges:.1%} of input, "
        f"{result.num_samples} samples, {result.kept_tree_edges} tree edges re-added)"
    )

    # spectral quality: Laplacian quadratic form on random vectors
    lap_in = laplacian(graph).toarray()
    lap_out = laplacian(sparse).toarray()
    rng = np.random.default_rng(1)
    distortions = []
    for _ in range(20):
        x = rng.normal(size=graph.num_nodes)
        x -= x.mean()
        distortions.append((x @ lap_out @ x) / (x @ lap_in @ x))
    print(
        f"quadratic-form distortion over 20 probes: "
        f"[{min(distortions):.3f}, {max(distortions):.3f}] (ideal 1.0)"
    )

    # effective resistances survive sparsification
    exact_in = ExactEffectiveResistance(graph)
    exact_out = ExactEffectiveResistance(sparse)
    pairs = [(0, 1), (10, 140), (42, 99)]
    print("\neffective resistances before -> after:")
    for p, q in pairs:
        print(f"  R({p:3d},{q:3d}): {exact_in.query(p, q):.5f} -> {exact_out.query(p, q):.5f}")


if __name__ == "__main__":
    main()
