"""DC incremental analysis — the ECO (engineering change order) loop.

A designer iterates on a power grid: each fix touches a small region, and
re-verifying IR drop from scratch is wasteful.  Because Alg. 1's reduction
is block-local, only the modified blocks are re-reduced.  This example
runs three consecutive "design edits" and compares incremental reduction
against full re-reduction and direct solving.

Run:  python examples/incremental_design.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.incremental import perturb_blocks
from repro.powergrid.dc import dc_analysis
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.reduction.pipeline import PGReducer, ReductionConfig
from repro.utils.timing import timed


def main() -> None:
    grid = synthetic_ibmpg_like(nx=30, ny=30, pad_pitch=8, seed=3)
    ports = grid.port_nodes()
    config = ReductionConfig(er_method="cholinv", seed=1)

    with timed() as elapsed:
        reducer = PGReducer(grid, config)
        reduced = reducer.reduce()
    print(f"initial reduction: {grid.num_nodes} -> {reduced.grid.num_nodes} nodes "
          f"in {elapsed():.2f}s ({reducer.num_blocks} blocks)")

    rng = np.random.default_rng(0)
    current = grid
    current_reducer = reducer
    for iteration in range(1, 4):
        # the designer edits one block
        block = int(rng.integers(reducer.num_blocks))
        edited = perturb_blocks(current, reducer.labels, [block], seed=iteration)

        with timed() as elapsed:
            current_reducer = current_reducer.rebuild_for(edited, [block])
            reduced = current_reducer.reduce()
        t_incremental = elapsed()

        with timed() as elapsed:
            reduced_dc = dc_analysis(reduced.grid)
        t_solve = elapsed()

        with timed() as elapsed:
            direct_dc = dc_analysis(edited)
        t_direct = elapsed()

        err = reduced.port_voltage_errors(
            direct_dc.voltages, reduced_dc.voltages, ports
        )
        print(
            f"edit #{iteration} (block {block}): "
            f"re-reduce {t_incremental:.3f}s + solve {t_solve:.3f}s "
            f"vs direct {t_direct:.3f}s | "
            f"port err avg {err.mean() * 1e3:.4f} mV"
        )
        current = edited


if __name__ == "__main__":
    main()
