"""Full Alg. 1 power-grid reduction and transient verification.

Builds a synthetic IBM-style power grid (VDD + GND nets, pads, pulsed
loads, decaps), reduces it with the graph-sparsification flow using
Alg. 3 effective resistances, and verifies the reduced model by transient
simulation at the ports — the paper's Table II protocol in miniature.

Run:  python examples/power_grid_reduction.py
"""

from __future__ import annotations

from repro.apps.transient_flow import run_transient_flow
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.reduction.pipeline import ReductionConfig


def main() -> None:
    grid = synthetic_ibmpg_like(
        nx=32, ny=32, pad_pitch=8, transient=True, seed=7
    )
    ports = grid.port_nodes()
    print(f"original grid: {grid}")
    print(f"ports to preserve: {ports.size}")

    for method in ("exact", "cholinv"):
        outcome = run_transient_flow(
            grid,
            ReductionConfig(er_method=method, seed=1),
            step=1e-11,
            num_steps=300,
        )
        reduced = outcome.reduced.grid
        label = "accurate ER" if method == "exact" else "Alg. 3 ER"
        print(f"\n--- reduction with {label} ---")
        print(f"reduced grid: {reduced}")
        print(
            f"nodes {grid.num_nodes} -> {reduced.num_nodes} "
            f"({reduced.num_nodes / grid.num_nodes:.1%})"
        )
        print(f"Tred = {outcome.time_reduction:.2f}s")
        print(
            f"Ttr original = {outcome.time_transient_original:.2f}s, "
            f"reduced = {outcome.time_transient_reduced:.2f}s"
        )
        print(f"Err = {outcome.err_mv:.4f} mV,  Rel = {outcome.rel_pct:.2f}%")

        if method == "cholinv":
            from repro.reduction.quality import assess_reduction_quality

            quality = assess_reduction_quality(
                grid, outcome.reduced, num_corners=4, seed=0
            )
            print(f"corner sign-off: {quality.summary()}")


if __name__ == "__main__":
    main()
