"""Quickstart — compute effective resistances on a weighted graph.

Builds a small power-grid-like mesh, computes effective resistances for
every edge three ways (exact, the paper's Alg. 3, and the WWW'15 random
projection baseline), shows the engine registry (``EngineConfig`` +
``build_engine`` — the one factory every layer dispatches through), then
the query-serving layer (``repro.service.ResistanceService``): cached pair
queries, top-k central edges, an in-place refresh after edge edits, then
engine persistence — save a built Alg. 3 engine to ``.npz`` and warm-start
a service from it without refactoring — and finally the async serving
stack: a component-sharded engine whose per-shard sub-batches fan out over
a thread pool, fronted by ``AsyncResistanceService``, whose micro-batching
loop coalesces concurrent small requests into one planned batch
(``await``-able from asyncio, or via ``submit() -> Future``).

Alg. 3 accepts a ``mode=`` knob choosing the Alg. 2 kernel:
``mode="blocked"`` (default) runs the level-scheduled batched kernel,
``mode="reference"`` the original column-at-a-time loop — both produce the
same sparse approximate inverse, the blocked one several times faster.
Builds also parallelise: ``EngineConfig(build_workers=N)`` (CLI
``--build-workers``) runs large Alg. 2 levels as concurrent column chunks
and fans a sharded engine's component builds out over N threads — with
**bit-identical** results for every N, so the knob only trades build
wall-clock.  Lazy sharded engines can pre-build everything with
``engine.warm_up(workers=N)``.

Sharding itself now goes *inside* a component:
``EngineConfig(shard_strategy="separator")`` splits one large component
into vertex-separator-bounded regions (so region factors build
independently and in parallel) and answers cross-region pairs exactly
through a dense Schur complement on the separator — demonstrated at the
end on the single-component mesh.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    EngineConfig,
    ExactEffectiveResistance,
    Graph,
    RandomProjectionEffectiveResistance,
    build_engine,
    grid_2d,
    load_engine,
    registered_engines,
)


def main() -> None:
    # a 60x60 jittered grid: ~3.6k nodes, ~7.1k edges
    graph = grid_2d(60, 60, jitter=0.3, seed=0)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    pairs = graph.edge_array()

    t0 = time.perf_counter()
    exact = ExactEffectiveResistance(graph)
    truth = exact.query_pairs(pairs)
    t_exact = time.perf_counter() - t0
    print(f"\nexact (factor once + solve per edge): {t_exact:.2f}s")

    # every engine is built through the registry: one config, one factory
    print(f"registered engines: {', '.join(registered_engines())}")
    t0 = time.perf_counter()
    alg3 = build_engine(graph, EngineConfig(epsilon=1e-3, drop_tol=1e-3))
    approx = alg3.query_pairs(pairs)
    t_alg3 = time.perf_counter() - t0
    rel = np.abs(approx - truth) / truth
    print(
        f"Alg. 3 (approx inverse of Cholesky factor): {t_alg3:.2f}s  "
        f"Ea={rel.mean():.2e}  Em={rel.max():.2e}"
    )
    print(f"  filled-graph depth (dpt): {alg3.max_depth}")
    print(f"  nnz(Z)/(n log n): {alg3.stats.nnz_per_nlogn:.2f}  (paper: C < 20)")

    t0 = time.perf_counter()
    baseline = RandomProjectionEffectiveResistance(
        graph, num_projections=400, solver="splu", seed=0
    )
    jl = baseline.query_pairs(pairs)
    t_rp = time.perf_counter() - t0
    rel_rp = np.abs(jl - truth) / truth
    print(
        f"WWW'15 random projection (k=400): {t_rp:.2f}s  "
        f"Ea={rel_rp.mean():.2e}  Em={rel_rp.max():.2e}"
    )

    # a couple of point queries
    corner_to_corner = alg3.query(0, graph.num_nodes - 1)
    print(f"\nR_eff(corner, corner) = {corner_to_corner:.4f} ohms")
    print(f"R_eff(0, 1)           = {alg3.query(0, 1):.4f} ohms")

    # the serving layer: cached queries, centrality ranking, live refresh
    from repro.service import ResistanceService

    service = ResistanceService(graph, epsilon=1e-3, drop_tol=1e-3)
    hot_pairs = [(0, 1), (0, graph.num_nodes - 1), (1, 0)]
    service.query_pairs(hot_pairs)
    service.query_pairs(hot_pairs)  # answered from the LRU result cache
    print(f"\nservice cache hit rate: {service.stats.hit_rate:.0%}")
    top_edges, centrality = service.top_k_central_edges(3)
    print("3 most central edges (w(e)·R(e)):")
    for e, c in zip(top_edges, centrality):
        print(f"  ({int(graph.heads[e])}, {int(graph.tails[e])})  {c:.4f}")
    refresh = service.refresh_after_edge_update(edges=[(0, 1)], weights=[1.0])
    print(
        f"after adding a parallel (0, 1) edge (rebuilt in "
        f"{refresh.rebuild_seconds:.2f}s): R_eff(0, 1) = "
        f"{service.query(0, 1):.4f} ohms"
    )

    # persistence: save the built Alg. 3 engine, warm-start from disk
    with tempfile.TemporaryDirectory() as tmp:
        saved = service.engine.save(Path(tmp) / "engine.npz")
        restored = load_engine(saved)
        t0 = time.perf_counter()
        warm = ResistanceService.from_saved(saved)
        t_warm = time.perf_counter() - t0
        match = restored.query(0, 1) == service.query(0, 1)
        print(
            f"\nengine saved to .npz and restored (bit-identical: {match}); "
            f"service warm-started in {t_warm * 1e3:.1f}ms"
        )
        print(f"warm service R_eff(0, 1) = {warm.query(0, 1):.4f} ohms")

    # the async serving stack: sharded engine + parallel executor +
    # micro-batching front-end coalescing concurrent requests
    import asyncio

    from repro.service import AsyncResistanceService, ResistanceService, ThreadedExecutor

    multi = Graph.disjoint_union(
        [grid_2d(20, 20, jitter=0.3, seed=s) for s in range(4)]
    )
    # build_workers=2 builds the four component shards on two threads —
    # the engine is bit-identical to a serial build, just ready sooner
    sharded_service = ResistanceService(
        multi,
        config=EngineConfig(sharded=True, build_workers=2),
        executor=ThreadedExecutor(2),
    )
    print(
        f"\nsharded engine: {sharded_service.engine.shards_built} shards "
        f"built with build_workers=2"
    )

    async def serve_concurrent_clients(front: AsyncResistanceService):
        # eight clients firing small batches at once; the batcher
        # coalesces them into few planned engine batches
        requests = [
            front.aquery_pairs([(i, i + 1), (i, multi.num_nodes - 1 - i)])
            for i in range(8)
        ]
        return await asyncio.gather(*requests)

    with AsyncResistanceService(sharded_service, batch_window=0.005) as front:
        answers = asyncio.run(serve_concurrent_clients(front))
        stats = front.stats
        report = front.reports[-1]  # accounting of the coalesced batch
    direct = sharded_service.query_pairs(
        [(i, i + 1) for i in range(8)]
    )
    match = all(
        float(batch[0]) == float(direct[i]) for i, batch in enumerate(answers)
    )
    print(
        f"\nasync service on a {stats.requests}-request burst: "
        f"{stats.batches} coalesced engine batch(es), "
        f"answers match the synchronous path: {match}"
    )
    print(
        f"last batch: {report.num_queries} queries, "
        f"{report.trivial_rows} trivial, {report.cache_hit_rows} cache hits, "
        f"{report.unique_misses} engine misses over "
        f"{report.shards_touched} shard(s) [{report.executor} executor]"
    )

    # separator sharding: component sharding buys nothing on ONE huge
    # component, so shard_strategy="separator" splits it internally —
    # vertex-separator-bounded regions factor independently (in parallel)
    # and cross-region pairs go through a small dense Schur complement on
    # the separator, exactly (given the region factors)
    t0 = time.perf_counter()
    partitioned = build_engine(
        graph,
        EngineConfig(
            epsilon=1e-3, drop_tol=1e-3,
            shard_strategy="separator", build_workers=2,
        ),
    )
    t_part = time.perf_counter() - t0
    report = partitioned.partition_report()
    sep = report["separators"][0]
    print(
        f"\nseparator-sharded engine on the single {graph.num_nodes}-node "
        f"component: {report['num_shards']} regions "
        f"{[int(s) for s in report['shard_sizes']]}, "
        f"separator {report['separator_size']} nodes "
        f"({100 * sep.separator_fraction:.1f}%), built in {t_part:.2f}s"
    )
    part_values = partitioned.query_pairs(pairs)
    rel_part = np.abs(part_values - truth) / truth
    print(
        f"region-sharded answers vs exact: Ea={rel_part.mean():.2e}  "
        f"Em={rel_part.max():.2e}  (monolithic Em={rel.max():.2e})"
    )


if __name__ == "__main__":
    main()
