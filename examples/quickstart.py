"""Quickstart — compute effective resistances on a weighted graph.

Builds a small power-grid-like mesh, computes effective resistances for
every edge three ways (exact, the paper's Alg. 3, and the WWW'15 random
projection baseline), and prints accuracy/time comparisons.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
    RandomProjectionEffectiveResistance,
    grid_2d,
)


def main() -> None:
    # a 60x60 jittered grid: ~3.6k nodes, ~7.1k edges
    graph = grid_2d(60, 60, jitter=0.3, seed=0)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    pairs = graph.edge_array()

    t0 = time.perf_counter()
    exact = ExactEffectiveResistance(graph)
    truth = exact.query_pairs(pairs)
    t_exact = time.perf_counter() - t0
    print(f"\nexact (factor once + solve per edge): {t_exact:.2f}s")

    t0 = time.perf_counter()
    alg3 = CholInvEffectiveResistance(graph, epsilon=1e-3, drop_tol=1e-3)
    approx = alg3.query_pairs(pairs)
    t_alg3 = time.perf_counter() - t0
    rel = np.abs(approx - truth) / truth
    print(
        f"Alg. 3 (approx inverse of Cholesky factor): {t_alg3:.2f}s  "
        f"Ea={rel.mean():.2e}  Em={rel.max():.2e}"
    )
    print(f"  filled-graph depth (dpt): {alg3.max_depth}")
    print(f"  nnz(Z)/(n log n): {alg3.stats.nnz_per_nlogn:.2f}  (paper: C < 20)")

    t0 = time.perf_counter()
    baseline = RandomProjectionEffectiveResistance(
        graph, num_projections=400, solver="splu", seed=0
    )
    jl = baseline.query_pairs(pairs)
    t_rp = time.perf_counter() - t0
    rel_rp = np.abs(jl - truth) / truth
    print(
        f"WWW'15 random projection (k=400): {t_rp:.2f}s  "
        f"Ea={rel_rp.mean():.2e}  Em={rel_rp.max():.2e}"
    )

    # a couple of point queries
    corner_to_corner = alg3.query(0, graph.num_nodes - 1)
    print(f"\nR_eff(corner, corner) = {corner_to_corner:.4f} ohms")
    print(f"R_eff(0, 1)           = {alg3.query(0, 1):.4f} ohms")


if __name__ == "__main__":
    main()
