"""Spanning-edge centrality of a social-network-like graph.

The WWW'15 baseline paper's motivating application: the centrality of an
edge is the probability it appears in a uniformly random spanning tree,
``c(e) = w(e) · R_eff(e)``.  Alg. 3 computes all-edge effective
resistances fast enough to rank every edge of the network.

Run:  python examples/social_network_centrality.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import barabasi_albert_graph, spanning_edge_centrality
from repro.core.effective_resistance import ExactEffectiveResistance


def main() -> None:
    graph = barabasi_albert_graph(4000, 3, seed=42)
    print(f"social-network proxy: {graph.num_nodes} nodes, {graph.num_edges} edges")

    t0 = time.perf_counter()
    centrality = spanning_edge_centrality(
        graph, method="cholinv", epsilon=1e-3, drop_tol=1e-3
    )
    print(f"all-edge centrality via Alg. 3: {time.perf_counter() - t0:.2f}s")

    # sanity: exact centralities sum to n - 1 on a connected graph
    print(f"sum of centralities: {centrality.sum():.1f} (exact: {graph.num_nodes - 1})")

    order = np.argsort(centrality)
    print("\nmost critical edges (highest random-spanning-tree probability):")
    for e in order[-5:][::-1]:
        u, v = graph.heads[e], graph.tails[e]
        print(f"  ({u:5d}, {v:5d})  centrality = {centrality[e]:.4f}")

    print("\nmost redundant edges (many parallel paths):")
    for e in order[:5]:
        u, v = graph.heads[e], graph.tails[e]
        print(f"  ({u:5d}, {v:5d})  centrality = {centrality[e]:.4f}")

    # spot-check five random edges against the exact engine
    exact = ExactEffectiveResistance(graph)
    rng = np.random.default_rng(0)
    sample = rng.choice(graph.num_edges, size=5, replace=False)
    pairs = np.column_stack([graph.heads[sample], graph.tails[sample]])
    exact_vals = graph.weights[sample] * exact.query_pairs(pairs)
    print("\nspot check (approx vs exact):")
    for e, truth in zip(sample, exact_vals):
        print(f"  edge {e:6d}: {centrality[e]:.6f} vs {truth:.6f}")


if __name__ == "__main__":
    main()
