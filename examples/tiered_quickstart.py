"""Tiered serving quickstart — one batch, three accuracy tolerances.

Stands up a :class:`repro.service.ResistanceService` on a heavy-tailed
graph, enables the landmark estimator tier next to the exact cholinv
engine (``service.enable_tiers()`` builds the tier off the *same*
factorisation and calibrates a routing profile against it), then asks
for the same batch of pairs at three SLAs:

* no SLA — bit-identical to a tier-less service, the router never runs;
* ``rel_tol=0.2`` / ``0.05`` / ``0.01`` — the router serves every pair
  whose certified-or-calibrated error bound meets the tolerance from the
  cheap landmark tier and escalates the rest to the exact path.

The printed tier split and measured errors show the trade directly:
looser tolerances route more pairs to the cheap tier, and the observed
max relative error stays within what was asked for.

Run:  PYTHONPATH=src python examples/tiered_quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import EngineConfig
from repro.graphs.generators import barabasi_albert_graph
from repro.service import ResistanceService


def main() -> None:
    graph = barabasi_albert_graph(3000, attachments=4, seed=0)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # cache off so the three passes below measure engines, not the LRU
    service = ResistanceService(
        graph,
        config=EngineConfig(num_landmarks=64, seed=0),
        result_cache_size=0,
    )
    rng = np.random.default_rng(1)
    pairs = rng.integers(0, graph.num_nodes, size=(2000, 2))

    t0 = time.perf_counter()
    exact = service.query_pairs(pairs)
    t_exact = time.perf_counter() - t0
    print(f"exact path: {pairs.shape[0]} pairs in {t_exact * 1e3:.1f}ms")

    t0 = time.perf_counter()
    # default calibration sample (4096 pairs): the router's tolerance
    # promise is only as good as the error tail the calibration saw
    profile = service.enable_tiers(tiers=("landmark",))
    t_tiers = time.perf_counter() - t0
    print(
        f"landmark tier built + calibrated in {t_tiers:.2f}s "
        f"(exact ≈ {profile.exact_seconds_per_pair * 1e6:.1f}µs/pair, "
        f"landmark ≈ "
        f"{profile.tiers['landmark'].seconds_per_pair * 1e6:.1f}µs/pair)"
    )

    # no SLA → the router is never consulted; answers stay bit-identical
    plain = service.query_pairs(pairs)
    print(f"no-SLA request bit-identical: {np.array_equal(plain, exact)}")

    scale = np.maximum(np.abs(exact), 1e-12)
    for rel_tol in (0.2, 0.05, 0.01):
        t0 = time.perf_counter()
        values, report = service.query_pairs_with_report(
            pairs, rel_tol=rel_tol
        )
        elapsed = time.perf_counter() - t0
        max_rel = float(np.max(np.abs(values - exact) / scale))
        split = ", ".join(
            f"{tier}={count}" for tier, count in sorted(report.tier_rows.items())
        )
        print(
            f"rel_tol={rel_tol}: {elapsed * 1e3:.1f}ms "
            f"({t_exact / elapsed:.1f}x vs exact), tier split [{split}], "
            f"max rel err {max_rel:.4f} (within tolerance: "
            f"{max_rel <= rel_tol})"
        )


if __name__ == "__main__":
    main()
