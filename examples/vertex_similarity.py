"""Vertex similarity by resistance distance — the graph-mining application.

Effective resistance is a similarity metric: it shrinks when two vertices
are joined by many short, heavy paths (unlike shortest-path distance,
which sees only one).  This example builds a small-world network, picks a
query vertex, and contrasts its electrically-nearest neighbours with its
hop-nearest ones; it also builds a full resistance-distance matrix for a
node subset — the input a clustering / embedding pipeline would consume.

Run:  python examples/vertex_similarity.py
"""

from __future__ import annotations

import numpy as np

from repro import CholInvEffectiveResistance, watts_strogatz_graph
from repro.core.resistance_matrix import (
    electrically_nearest_neighbours,
    pairwise_resistance_matrix,
)


def hop_distances(graph, source: int) -> np.ndarray:
    """Unweighted BFS distances from ``source``."""
    from collections import deque

    adj = graph.adjacency().tocsr()
    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in adj.indices[adj.indptr[u] : adj.indptr[u + 1]]:
            if dist[v] == -1:
                dist[v] = dist[u] + 1
                queue.append(int(v))
    return dist


def main() -> None:
    graph = watts_strogatz_graph(2000, 6, 0.05, seed=3)
    print(f"small-world network: {graph.num_nodes} nodes, {graph.num_edges} edges")

    est = CholInvEffectiveResistance(graph, epsilon=1e-3, drop_tol=1e-3)
    query = 1000
    candidates = np.setdiff1d(np.arange(graph.num_nodes), [query])

    ids, resistance = electrically_nearest_neighbours(
        est, query, candidates, k=8
    )
    hops = hop_distances(graph, query)
    print(f"\nelectrically nearest neighbours of node {query}:")
    for node, r in zip(ids, resistance):
        print(f"  node {node:5d}: R_eff = {r:.4f}  (hops = {hops[node]})")

    # resistance-distance matrix for a landmark subset
    landmarks = np.arange(0, 2000, 250)
    matrix = pairwise_resistance_matrix(est, landmarks)
    print(f"\nresistance-distance matrix over landmarks {landmarks.tolist()}:")
    with np.printoptions(precision=3, suppress=True):
        print(matrix)

    # sanity: the metric is bounded by hop distance times the max edge R
    max_edge_resistance = (1.0 / graph.weights).max()
    for i, a in enumerate(landmarks):
        for j, b in enumerate(landmarks):
            if i < j:
                assert matrix[i, j] <= hop_distances(graph, int(a))[b] * max_edge_resistance + 1e-6
    print("\nmetric sanity checks passed (R_eff ≤ shortest-path resistance)")


if __name__ == "__main__":
    main()
