"""Setup shim.

The offline build environment lacks the `wheel` package, so PEP 517/660
builds (which need `bdist_wheel`) are unavailable; keeping configuration in
setup.cfg + this shim lets `pip install -e .` use the legacy editable path.
"""
from setuptools import setup

setup()
