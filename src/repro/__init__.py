"""repro — Effective resistances on large graphs via approximate inverse of
the Cholesky factor (reproduction of Liu & Yu, DATE 2023).

Quickstart
----------
>>> from repro import EngineConfig, build_engine, grid_2d
>>> graph = grid_2d(30, 30)
>>> engine = build_engine(graph, EngineConfig(epsilon=1e-3, drop_tol=1e-3))
>>> r = engine.query(0, 899)
>>> path = engine.save("engine.npz")          # persist the built factor
>>> from repro import load_engine
>>> restored = load_engine(path)              # warm-start, bit-identical

Every solver implements the :class:`~repro.core.engine.ResistanceEngine`
protocol and registers under a short name (``"cholinv"``, ``"exact"``,
``"random_projection"``, ``"naive"``); :func:`~repro.core.engine.build_engine`
is the one factory the convenience API, the service layer, the bench
harness and the CLI dispatch through.  ``EngineConfig(sharded=True)``
serves each connected component from its own sub-engine, and
``EngineConfig(shard_strategy="separator")`` goes further — it splits one
large component into vertex-separator-bounded regions and answers
cross-region pairs exactly through a dense Schur complement on the
separator (:class:`~repro.core.partitioned.PartitionedEngine`).

Layers
------
* :mod:`repro.graphs` — graph container, Laplacians, generators, IO;
* :mod:`repro.cholesky` — sparse complete/incomplete Cholesky substrate;
* :mod:`repro.core` — the paper's Alg. 2 / Alg. 3 and error analysis, the
  engine protocol/registry (:mod:`repro.core.engine`), partitioned /
  component sharding (:mod:`repro.core.partitioned`,
  :mod:`repro.core.sharded`) and engine persistence
  (:mod:`repro.core.persistence`);
* :mod:`repro.baselines` — WWW'15 random projection and the naive method
  (registered engines like everything else);
* :mod:`repro.powergrid` — power-grid netlists, MNA, DC and transient
  analysis;
* :mod:`repro.partition` — METIS-substitute graph partitioning;
* :mod:`repro.reduction` — Alg. 1 graph-sparsification-based PG reduction;
* :mod:`repro.apps` — transient / DC-incremental application flows
  (Table II);
* :mod:`repro.service` — the serving stack: planner/executor batch
  partitioning (:mod:`repro.service.planner`,
  :mod:`repro.service.executor`), the cached thread-safe
  :class:`~repro.service.ResistanceService`, and the micro-batching async
  front-end :class:`~repro.service.AsyncResistanceService`;
* :mod:`repro.bench` — harness regenerating every table and figure.
"""

from repro.baselines.naive import NaivePerQueryResistance
from repro.baselines.random_projection import RandomProjectionEffectiveResistance
from repro.cholesky.incomplete import ICholResult, ichol
from repro.cholesky.numeric import CholeskyFactor, cholesky
from repro.core.approx_inverse import ApproxInverseStats, approximate_inverse
from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
    effective_resistances,
    spanning_edge_centrality,
)
from repro.core.engine import (
    EngineConfig,
    ResistanceEngine,
    build_engine,
    register_engine,
    registered_engines,
)
from repro.core.error_bounds import estimate_query_errors, theorem1_bound
from repro.core.partitioned import PartitionedEngine, ShardPlan
from repro.core.persistence import load_engine, save_engine
from repro.core.sharded import ShardedEngine
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    fe_mesh_2d,
    fe_mesh_3d,
    grid_2d,
    grid_3d,
    path_graph,
    random_geometric_graph,
    rmat_graph,
    star_graph,
    stochastic_block_model,
    watts_strogatz_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.laplacian import grounded_laplacian, incidence_matrix, laplacian
from repro.service import (
    AsyncResistanceService,
    BatchReport,
    ResistanceService,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "laplacian",
    "grounded_laplacian",
    "incidence_matrix",
    "cholesky",
    "CholeskyFactor",
    "ichol",
    "ICholResult",
    "approximate_inverse",
    "ApproxInverseStats",
    "ResistanceEngine",
    "EngineConfig",
    "register_engine",
    "registered_engines",
    "build_engine",
    "ShardedEngine",
    "PartitionedEngine",
    "ShardPlan",
    "save_engine",
    "load_engine",
    "CholInvEffectiveResistance",
    "ExactEffectiveResistance",
    "RandomProjectionEffectiveResistance",
    "NaivePerQueryResistance",
    "effective_resistances",
    "spanning_edge_centrality",
    "ResistanceService",
    "AsyncResistanceService",
    "BatchReport",
    "SerialExecutor",
    "ThreadedExecutor",
    "make_executor",
    "estimate_query_errors",
    "theorem1_bound",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_2d",
    "grid_3d",
    "fe_mesh_2d",
    "fe_mesh_3d",
    "barabasi_albert_graph",
    "stochastic_block_model",
    "watts_strogatz_graph",
    "rmat_graph",
    "random_geometric_graph",
    "__version__",
]
