"""``repro.analysis`` — AST-based invariant checker for this repository.

A small static-analysis pass that *proves* the structural invariants the
concurrent serving stack depends on (lock discipline, registry purity,
config↔persistence round-tripping, build determinism, boundary
validation, no shared mutable defaults) on every commit — the codebase
applying to itself the philosophy the reproduced paper's relatives (PEERS)
apply to numerics: settle structure symbolically before anything runs.

Run it as ``python -m repro.analysis [paths...]`` or ``python -m repro
lint``; the library entry point is :func:`run_analysis`.  See
``src/repro/analysis/README.md`` for the rule catalogue, suppression and
baseline workflow, and how to add a rule.
"""

from repro.analysis.framework import (
    AnalysisReport,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    register_rule,
    registered_rules,
    run_analysis,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "register_rule",
    "registered_rules",
    "run_analysis",
]
