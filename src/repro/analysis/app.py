"""Command-line front-end of the invariant checker.

``python -m repro.analysis [paths...]`` (and the ``python -m repro lint``
alias) runs every registered rule, filters inline suppressions and the
committed baseline, renders the report (``--format text|json``) and exits
non-zero iff any non-baselined *error* finding remains — which is exactly
what the CI ``lint`` job gates on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import load_baseline, partition, write_baseline
from repro.analysis.framework import registered_rules, run_analysis
from repro.analysis.reporters import render_json, render_text

DEFAULT_PATHS = ("src/repro",)
DEFAULT_BASELINE = "analysis-baseline.json"


def build_arg_parser(prog: str = "repro.analysis") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "AST-based invariant checker: lock discipline, lock order, "
            "atomicity, blocking-under-lock, executor escape, registry "
            "purity, config-persistence drift, determinism, boundary "
            "validation, mutable defaults"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help=f"files/directories to analyse (default: {DEFAULT_PATHS[0]})",
    )
    parser.add_argument(
        "--paths", action="append", dest="extra_paths", metavar="PATH",
        default=None,
        help="additional file/directory to analyse (repeatable; combines "
             "with positional paths)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"baseline file of accepted findings (default: "
             f"{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select", metavar="RULE[,RULE...]", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--lock-graph-dot", metavar="PATH", default=None,
        help="also export the lock acquisition graph as DOT to PATH",
    )
    parser.add_argument(
        "--lock-graph-json", metavar="PATH", default=None,
        help="also export the lock acquisition graph as JSON to PATH",
    )
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in sorted(registered_rules().items()):
            print(f"{rule_id} [{rule_cls.severity}] — {rule_cls.description}")
        return 0

    paths = tuple(args.paths) + tuple(args.extra_paths or ()) or DEFAULT_PATHS
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    if (
        args.baseline is not None
        and not args.write_baseline
        and not Path(args.baseline).exists()
    ):
        print(
            f"error: baseline file not found: {args.baseline} "
            f"(pass --write-baseline to create it)",
            file=sys.stderr,
        )
        return 2
    try:
        report = run_analysis(paths, select=select)
        if args.lock_graph_dot or args.lock_graph_json:
            from repro.analysis.lockgraph import export_lock_graph

            export_lock_graph(
                paths, dot=args.lock_graph_dot, json_path=args.lock_graph_json
            )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        write_baseline(target, report.findings)
        print(
            f"baseline written to {target} "
            f"({len(report.findings)} finding(s) accepted)",
            file=sys.stderr,
        )
        return 0

    accepted = load_baseline(baseline_path) if baseline_path else set()
    new, baselined = partition(report.findings, accepted)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(new, report.suppressed, baselined))
    return 1 if any(f.severity == "error" for f in new) else 0
