"""Committed-baseline support for the invariant checker.

A baseline is a JSON file of *accepted* findings: anything listed there is
reported separately and does not fail a run, so wiring a new rule into CI
never blocks unrelated work while the pre-existing debt is paid down.
Entries match on :meth:`repro.analysis.framework.Finding.key` — ``(rule,
path, message)``, deliberately excluding line numbers so ordinary edits
that shift code do not resurrect baselined findings.

The shipped tree carries an **empty** baseline
(``analysis-baseline.json``): every violation the six rules found was
fixed (or given an inline ``# repro: ignore[...] — reason``) rather than
baselined, and CI keeps it that way.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.framework import Finding

BASELINE_VERSION = 1


def empty_baseline() -> "set[tuple[str, str, str]]":
    """The baseline of a clean tree: accepts nothing."""
    return set()


def load_baseline(path: "str | Path") -> "set[tuple[str, str, str]]":
    """Read accepted finding keys from a baseline file.

    A missing file is an empty baseline (so ``--baseline`` can point at a
    file that will only be created once something is accepted).
    """
    path = Path(path)
    if not path.exists():
        return empty_baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    version = int(data.get("version", 0))
    if version > BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has format version {version}, newer than "
            f"supported version {BASELINE_VERSION}"
        )
    keys: "set[tuple[str, str, str]]" = set()
    for entry in data.get("findings", []):
        keys.add((str(entry["rule"]), str(entry["path"]), str(entry["message"])))
    return keys


def write_baseline(path: "str | Path", findings: "Iterable[Finding]") -> Path:
    """Write ``findings`` as the new accepted baseline; returns the path."""
    entries = sorted(
        {
            (f.rule, f.path, f.message)
            for f in findings
        }
    )
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": rule, "path": rel, "message": message}
            for rule, rel, message in entries
        ],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def partition(
    findings: "Sequence[Finding]",
    accepted: "set[tuple[str, str, str]]",
) -> "tuple[tuple[Finding, ...], tuple[Finding, ...]]":
    """Split findings into ``(new, baselined)`` against accepted keys."""
    new: "list[Finding]" = []
    baselined: "list[Finding]" = []
    for finding in findings:
        (baselined if finding.key() in accepted else new).append(finding)
    return tuple(new), tuple(baselined)
