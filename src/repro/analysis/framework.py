"""Core of the ``repro.analysis`` invariant checker.

The serving stack that PRs 3–5 grew (registry-built engines, per-shard
build locks, thread-pooled Alg. 2 levels, locked LRUs, async
micro-batching) is held together by *structural* invariants — "engine
state is only mutated under a lock", "engines are constructed through the
registry", "every persisted config field round-trips" — that unit tests
only probe pointwise.  This module is the frame for proving them on every
commit, the same philosophy as PEERS' augmented symbolic analysis: a
structural pass that runs before (and independently of) the numeric one.

Pieces
------
:class:`Finding`
    One violation at a source location; ordered, hashable, and carrying a
    line-number-independent :meth:`Finding.key` for baseline matching.
:class:`ModuleInfo` / :class:`Project`
    A parsed source file (AST + ``# repro: ignore[...]`` suppression map)
    and the set of all parsed files.  Rules that need cross-file context
    (registry purity, config↔persistence drift) see the whole project.
:class:`Rule` / :func:`register_rule`
    The rule protocol and its registry — the same register-and-dispatch
    idiom as :mod:`repro.core.engine`.  A rule implements
    :meth:`Rule.check_module` (per file), :meth:`Rule.check_project`
    (whole tree), or both.
:func:`run_analysis`
    Parse, run every (selected) rule, apply suppressions, and return an
    :class:`AnalysisReport`.

Suppressions
------------
A ``# repro: ignore[rule-id]`` comment on the *same line* as a finding
suppresses it; ``# repro: ignore[a, b]`` suppresses several rules and a
bare ``# repro: ignore`` suppresses everything on that line.  Suppressed
findings are still reported (counted separately) so they never silently
rot.  Pre-existing findings that are not worth an inline marker belong in
the committed baseline instead (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import abc
import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Rule id used for files that fail to parse at all.
PARSE_ERROR_RULE = "parse-error"

_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore(?:\[(?P<rules>[^\]]*)\])?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Field order matters: sorting a list of findings orders them by file,
    then line, then column, then rule id — the order every reporter uses.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def key(self) -> "tuple[str, str, str]":
        """Line-independent identity ``(rule, path, message)``.

        Baselines match on this key so an unrelated edit that shifts line
        numbers does not resurrect a baselined finding.
        """
        return (self.rule, self.path, self.message)


def parse_suppressions(source: str) -> "dict[int, frozenset[str]]":
    """Map line number → rule ids suppressed by ``# repro: ignore[...]``.

    A bare ``# repro: ignore`` yields the wildcard entry ``{"*"}``.
    Tokenisation errors (only possible on files that already failed to
    parse) simply yield no suppressions.
    """
    out: "dict[int, set[str]]" = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _IGNORE_RE.search(tok.string)
            if match is None:
                continue
            spec = match.group("rules")
            if spec is None:
                ids = {"*"}
            else:
                ids = {part.strip() for part in spec.split(",") if part.strip()}
                ids = ids or {"*"}
            out.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenError:
        pass
    return {line: frozenset(ids) for line, ids in out.items()}


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file plus everything rules need to judge it."""

    path: Path
    rel: str
    module: str
    source: str
    tree: ast.Module
    suppressions: "dict[int, frozenset[str]]"

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``# repro: ignore`` on ``line`` covers ``rule_id``."""
        ids = self.suppressions.get(line)
        return ids is not None and (rule_id in ids or "*" in ids)

    @property
    def dotted_parts(self) -> "tuple[str, ...]":
        """Components of the module's dotted name (``core.engine`` → 2)."""
        return tuple(self.module.split("."))


@dataclass(frozen=True)
class Project:
    """Every parsed module of one analysis run, for cross-file rules."""

    modules: "tuple[ModuleInfo, ...]"

    def __iter__(self) -> "Iterator[ModuleInfo]":
        return iter(self.modules)


class Rule(abc.ABC):
    """A structural invariant, checked per module and/or per project.

    Subclasses set :attr:`rule_id` (kebab-case, stable — it appears in
    suppression comments and baselines), :attr:`severity` (``"error"``
    findings fail the run, ``"warning"`` findings are reported only) and
    :attr:`description`, then implement :meth:`check_module`,
    :meth:`check_project`, or both.  Register with
    :func:`register_rule` so the CLI and ``--select`` can find the rule.
    """

    rule_id: str = ""
    severity: str = "error"
    description: str = ""

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` in ``module``."""
        return Finding(
            path=module.rel,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            rule=self.rule_id,
            severity=self.severity,
            message=message,
        )

    def check_module(self, module: ModuleInfo) -> "Iterable[Finding]":
        """Findings visible from one file alone (default: none)."""
        return ()

    def check_project(self, project: Project) -> "Iterable[Finding]":
        """Findings that need the whole parsed tree (default: none)."""
        return ()


_RULES: "dict[str, type[Rule]]" = {}
_builtin_rules_loaded = False


def register_rule(cls: "type[Rule]") -> "type[Rule]":
    """Class decorator adding a rule to the registry under its rule id."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must set a non-empty rule_id")
    if cls.severity not in ("error", "warning"):
        raise ValueError(
            f"{cls.__name__}.severity must be 'error' or 'warning', "
            f"got {cls.severity!r}"
        )
    _RULES[cls.rule_id] = cls
    return cls


def _ensure_builtin_rules() -> None:
    """Import the package whose modules self-register (idempotent)."""
    global _builtin_rules_loaded
    if _builtin_rules_loaded:
        return
    import repro.analysis.rules  # noqa: F401

    _builtin_rules_loaded = True


def registered_rules() -> "dict[str, type[Rule]]":
    """Registered rules keyed by rule id (a copy; mutate freely)."""
    _ensure_builtin_rules()
    return dict(_RULES)


def _iter_python_files(path: Path) -> "Iterator[Path]":
    if path.is_file():
        yield path
        return
    yield from sorted(path.rglob("*.py"))


def load_project(
    paths: "Sequence[str | Path]",
) -> "tuple[Project, list[Finding]]":
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`.

    Directories are walked recursively; module dotted names are relative
    to the scanned root, so scanning ``src/repro`` yields ``core.engine``
    etc.  Files that fail to parse become :data:`PARSE_ERROR_RULE`
    findings instead of modules (returned separately).
    """
    modules: "list[ModuleInfo]" = []
    errors: "list[Finding]" = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"no such file or directory: {root}")
        base = root if root.is_dir() else root.parent
        for file in _iter_python_files(root):
            rel = file.as_posix()
            module_name = ".".join(file.relative_to(base).with_suffix("").parts)
            source = file.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(file))
            except SyntaxError as exc:
                errors.append(
                    Finding(
                        path=rel,
                        line=int(exc.lineno or 1),
                        col=max(int(exc.offset or 1) - 1, 0),
                        rule=PARSE_ERROR_RULE,
                        severity="error",
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            modules.append(
                ModuleInfo(
                    path=file,
                    rel=rel,
                    module=module_name,
                    source=source,
                    tree=tree,
                    suppressions=parse_suppressions(source),
                )
            )
    return Project(tuple(modules)), errors


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of one :func:`run_analysis` call."""

    findings: "tuple[Finding, ...]"
    suppressed: "tuple[Finding, ...]"

    @property
    def errors(self) -> "tuple[Finding, ...]":
        """Active findings with severity ``error`` (these fail a run)."""
        return tuple(f for f in self.findings if f.severity == "error")


def run_analysis(
    paths: "Sequence[str | Path]",
    select: "Sequence[str] | None" = None,
) -> AnalysisReport:
    """Run every (selected) registered rule over ``paths``.

    Returns active findings and the findings silenced by inline
    ``# repro: ignore`` comments, both sorted by location.  Baseline
    filtering is a separate, caller-side step
    (:func:`repro.analysis.baseline.partition`) so library callers always
    see the full picture.
    """
    project, parse_errors = load_project(paths)
    rules = registered_rules()
    if select is not None:
        chosen = set(select)
        unknown = sorted(chosen - set(rules))
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; registered: {sorted(rules)}"
            )
        rules = {rid: cls for rid, cls in rules.items() if rid in chosen}
    raw: "list[Finding]" = list(parse_errors)
    for rule_cls in rules.values():
        rule = rule_cls()
        for module in project.modules:
            raw.extend(rule.check_module(module))
        raw.extend(rule.check_project(project))
    by_rel = {module.rel: module for module in project.modules}
    active: "list[Finding]" = []
    suppressed: "list[Finding]" = []
    for finding in sorted(set(raw)):
        module = by_rel.get(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            suppressed.append(finding)
        else:
            active.append(finding)
    return AnalysisReport(tuple(active), tuple(suppressed))
