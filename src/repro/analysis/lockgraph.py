"""The project-wide lock acquisition graph, with DOT/JSON export.

Nodes are :class:`~repro.analysis.model.LockId` entries from the project
model's inventory; an edge ``A → B`` means some thread can acquire ``B``
while holding ``A`` — either by a nested ``with`` in one function, or by
calling (transitively, through the model's call graph) a function that
acquires ``B`` while ``A`` is held.  A cycle is a potential deadlock:
two threads walking the cycle from different entry points can each hold
the lock the other wants.

Two kinds of self-edge are *not* deadlocks and are never added:

* keyed collections (``dict[int, threading.Lock]``) — acquiring
  ``locks[a]`` then ``locks[b]`` takes two different locks;
* reentrant kinds (``RLock``, ``Condition``) — legal to re-acquire.

The CI ``lint`` job exports the graph (``--lock-graph-dot`` /
``--lock-graph-json``) as a build artifact, so every PR ships a picture
of its locking structure; the ``lock-order`` rule turns each cycle into
an error finding.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.framework import Finding, load_project
from repro.analysis.model import LockId, ProjectModel, build_model


@dataclass(frozen=True)
class Witness:
    """Where one ordered acquisition was observed."""

    function: str  #: qualname of the function holding the source lock
    rel: str  #: file of the acquiring statement
    line: int

    @property
    def label(self) -> str:
        return f"{self.function}:{self.line}"


@dataclass
class LockEdge:
    """``src`` held while ``dst`` is acquired, with every witness site."""

    src: LockId
    dst: LockId
    witnesses: "list[Witness]" = field(default_factory=list)


class LockGraph:
    """Directed lock-acquisition graph over a project's lock inventory."""

    def __init__(self) -> None:
        self.edges: "dict[tuple[LockId, LockId], LockEdge]" = {}

    # ------------------------------------------------------------------
    def add(self, src: LockId, dst: LockId, witness: Witness) -> None:
        if src == dst and (src.keyed or src.reentrant):
            # distinct keys / reentrant re-acquisition: not an ordering
            return
        edge = self.edges.get((src, dst))
        if edge is None:
            edge = LockEdge(src, dst)
            self.edges[(src, dst)] = edge
        if witness not in edge.witnesses:
            edge.witnesses.append(witness)

    @property
    def nodes(self) -> "list[LockId]":
        out: "set[LockId]" = set()
        for src, dst in self.edges:
            out.add(src)
            out.add(dst)
        return sorted(out, key=lambda lock: lock.label)

    def successors(self, node: LockId) -> "list[LockId]":
        return sorted(
            (dst for src, dst in self.edges if src == node),
            key=lambda lock: lock.label,
        )

    # ------------------------------------------------------------------
    # cycles
    # ------------------------------------------------------------------
    def _sccs(self) -> "list[list[LockId]]":
        """Tarjan strongly connected components (deterministic order)."""
        index: "dict[LockId, int]" = {}
        low: "dict[LockId, int]" = {}
        on_stack: "set[LockId]" = set()
        stack: "list[LockId]" = []
        sccs: "list[list[LockId]]" = []
        counter = [0]

        def strongconnect(node: LockId) -> None:
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in self.successors(node):
                if succ not in index:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if low[node] == index[node]:
                component: "list[LockId]" = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component, key=lambda lock: lock.label))
        for node in self.nodes:
            if node not in index:
                strongconnect(node)
        return sorted(sccs, key=lambda scc: scc[0].label)

    def cycles(self) -> "list[tuple[LockId, ...]]":
        """One representative cycle per cyclic SCC (shortest through its
        lexicographically first node; deterministic)."""
        out: "list[tuple[LockId, ...]]" = []
        for scc in self._sccs():
            members = set(scc)
            if len(scc) == 1 and (scc[0], scc[0]) not in self.edges:
                continue
            start = scc[0]
            if len(scc) == 1:
                out.append((start,))
                continue
            # BFS within the SCC from start back to start
            parent: "dict[LockId, LockId]" = {}
            queue = [start]
            found = None
            while queue and found is None:
                node = queue.pop(0)
                for succ in self.successors(node):
                    if succ == start:
                        found = node
                        break
                    if succ in members and succ not in parent:
                        parent[succ] = node
                        queue.append(succ)
            if found is None:  # pragma: no cover - SCC guarantees a cycle
                continue
            path = [found]
            while path[-1] != start:
                path.append(parent[path[-1]])
            out.append(tuple(reversed(path)))
        return out

    def cyclic_nodes(self) -> "set[LockId]":
        """Every node that participates in some cycle."""
        out: "set[LockId]" = set()
        for scc in self._sccs():
            if len(scc) > 1 or (scc[0], scc[0]) in self.edges:
                out.update(scc)
        return out

    def cyclic_edges(self) -> "set[tuple[LockId, LockId]]":
        """Every edge that participates in some cycle (both ends in one
        cyclic SCC)."""
        cyclic = self.cyclic_nodes()
        scc_of: "dict[LockId, int]" = {}
        for i, scc in enumerate(self._sccs()):
            for node in scc:
                scc_of[node] = i
        return {
            (src, dst)
            for src, dst in self.edges
            if src in cyclic
            and dst in cyclic
            and (scc_of[src] == scc_of[dst])
        }

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_dot(self) -> str:
        cyc_nodes = self.cyclic_nodes()
        cyc_edges = self.cyclic_edges()
        lines = [
            "digraph lock_order {",
            "  rankdir=LR;",
            "  node [shape=box];",
        ]
        for node in self.nodes:
            attrs = " [color=red]" if node in cyc_nodes else ""
            lines.append(f'  "{node.label}"{attrs};')
        for key in sorted(
            self.edges, key=lambda pair: (pair[0].label, pair[1].label)
        ):
            edge = self.edges[key]
            witness = min(edge.witnesses, key=lambda w: (w.function, w.line))
            attrs = f'label="{witness.label}"'
            if key in cyc_edges:
                attrs += ", color=red"
            lines.append(
                f'  "{edge.src.label}" -> "{edge.dst.label}" [{attrs}];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "nodes": [
                {
                    "label": node.label,
                    "owner": node.owner,
                    "attr": node.attr,
                    "keyed": node.keyed,
                    "kind": node.kind,
                    "defined": f"{node.rel}:{node.line}" if node.rel else None,
                }
                for node in self.nodes
            ],
            "edges": [
                {
                    "src": self.edges[key].src.label,
                    "dst": self.edges[key].dst.label,
                    "witnesses": [
                        {
                            "function": w.function,
                            "location": f"{w.rel}:{w.line}",
                        }
                        for w in sorted(
                            self.edges[key].witnesses,
                            key=lambda w: (w.function, w.line),
                        )
                    ],
                }
                for key in sorted(
                    self.edges,
                    key=lambda pair: (pair[0].label, pair[1].label),
                )
            ],
            "cycles": [
                [node.label for node in cycle] for cycle in self.cycles()
            ],
        }
        return json.dumps(payload, indent=2) + "\n"


def build_lock_graph(model: ProjectModel) -> LockGraph:
    """Assemble the acquisition graph from the model's lock events."""
    graph = LockGraph()
    for fn in sorted(model.functions, key=str):
        info = model.functions[fn]
        for event in info.events:
            if not event.held:
                continue
            line = int(getattr(event.node, "lineno", 0))
            witness = Witness(info.qualname, info.module.rel, line)
            if event.kind == "acquire" and event.lock is not None:
                for held in event.held:
                    graph.add(held, event.lock, witness)
            elif event.kind == "call" and isinstance(event.node, ast.Call):
                for callee in info.resolved(event.node):
                    callee_info = model.functions.get(callee)
                    if callee_info is None:
                        continue
                    for acquired in callee_info.acquires:
                        for held in event.held:
                            graph.add(held, acquired, witness)
    return graph


def cycle_findings(graph: LockGraph, rule_id: str) -> "list[Finding]":
    """One error finding per representative cycle, anchored at a witness."""
    findings: "list[Finding]" = []
    for cycle in graph.cycles():
        closed = list(cycle) + [cycle[0]]
        path = " -> ".join(node.label for node in closed)
        witness = None
        for src, dst in zip(closed, closed[1:]):
            edge = graph.edges.get((src, dst))
            if edge is not None and edge.witnesses:
                witness = min(
                    edge.witnesses, key=lambda w: (w.function, w.line)
                )
                break
        if witness is None:  # pragma: no cover - cycles come from edges
            continue
        findings.append(
            Finding(
                path=witness.rel,
                line=witness.line,
                col=0,
                rule=rule_id,
                severity="error",
                message=(
                    f"lock acquisition cycle (potential deadlock): {path}; "
                    f"one witness is '{witness.function}'"
                ),
            )
        )
    return findings


def export_lock_graph(
    paths: "Sequence[str | Path]",
    dot: "str | None" = None,
    json_path: "str | None" = None,
) -> LockGraph:
    """Build the graph for ``paths`` and write the requested artifacts."""
    project, _ = load_project(paths)
    graph = build_lock_graph(build_model(project))
    if dot is not None:
        Path(dot).write_text(graph.to_dot(), encoding="utf-8")
    if json_path is not None:
        Path(json_path).write_text(graph.to_json(), encoding="utf-8")
    return graph
