"""Shared project model consumed by the semantic concurrency passes.

PR 6's rules are independent syntactic walks: each looks at one class or
one module and pattern-matches.  The concurrency invariants that matter
now — "no two locks are ever taken in opposite orders", "an engine build
never runs while a hot lock is held" — are *interprocedural*: the second
lock is usually acquired three calls away from the first, through an
attribute whose type only the whole project knows.  This module parses
the project **once** into a model the semantic rules share:

:class:`LockId`
    One mutual-exclusion primitive: the owning class (or module), the
    attribute it lives in, whether it is a *keyed collection* of locks
    (``dict[int, threading.Lock]`` — one node per collection, because
    distinct keys are distinct locks), and its kind (``Lock``/``RLock``/
    ``Condition`` — reentrant kinds may legally self-nest).
:class:`ClassInfo` / :class:`FunctionInfo`
    Symbol table entries carrying the lock inventory (discovered from
    ``__init__`` assignments, dataclass fields and keyed ``setdefault``
    creation), inferred attribute types (``self.x = ClassName(...)``,
    annotated parameters stored on ``self``, annotated class fields) and
    resolved call sites.
:class:`ProjectModel`
    The whole tree: classes, functions, a class-hierarchy-analysis call
    graph resolved to a fixpoint (generalising the mini-fixpoint the
    ``boundary-validation`` rule already ran), per-function *lock event*
    streams (every acquisition and every call, with the locks held at
    that point — including locks aliased through locals, e.g. ``lock =
    self._build_locks.setdefault(...); with lock:``), and the transitive
    lock set every function can acquire.

The model is deliberately conservative where resolution fails: an
unresolvable call contributes nothing (no phantom deadlocks), and a
lock-looking ``with`` target that resolves to no inventory entry becomes
an *inferred* lock so it still participates in ordering.  Helpers shared
with the syntactic ``lock-discipline`` rule (:func:`is_lockish`,
:func:`self_attr_root`, …) live here so both layers agree on what counts
as a lock and what counts as a write.
"""

from __future__ import annotations

import ast
import re
import threading
import weakref
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.framework import ModuleInfo, Project

#: Identifier fragment that marks an object as a mutual-exclusion
#: primitive — the single definition both analyzer layers share.
LOCKISH = re.compile(r"lock|mutex|guard|cond", re.IGNORECASE)

#: ``threading`` constructors that create locks, and the kind they make.
LOCK_CTORS: "dict[str, str]" = {
    "Lock": "Lock",
    "RLock": "RLock",
    "Condition": "Condition",
    "Semaphore": "Semaphore",
    "BoundedSemaphore": "Semaphore",
}

#: Kinds a thread may legally re-acquire while already holding them
#: (``Condition`` wraps an ``RLock`` by default).
REENTRANT_KINDS = frozenset({"RLock", "Condition"})

#: Containers whose annotation marks a lock attribute as *keyed* — a
#: collection of locks, one per key, like ``dict[int, threading.Lock]``.
_KEYED_CONTAINERS = frozenset({"dict", "Dict", "defaultdict", "list", "List"})


# ----------------------------------------------------------------------
# helpers shared with the syntactic lock-discipline rule
# ----------------------------------------------------------------------
def is_lockish(expr: ast.expr) -> bool:
    """Whether a ``with`` context expression looks like a lock object."""
    if isinstance(expr, ast.Name):
        return bool(LOCKISH.search(expr.id))
    if isinstance(expr, ast.Attribute):
        return bool(LOCKISH.search(expr.attr))
    if isinstance(expr, ast.Subscript):
        # ``with self._locks[c]:`` — the container name carries the intent
        return is_lockish(expr.value)
    return False


def self_attr_root(target: ast.expr, self_name: str) -> "str | None":
    """Root attribute of a ``self``-rooted target, else ``None``.

    ``self.stats.queries += 1`` and ``self._engines[c] = e`` both resolve
    to their root attribute (``stats`` / ``_engines``): what the lock
    protects is the instance slot, however deep the access goes.
    """
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
        ):
            return node.attr
        node = node.value
    return None


def write_targets(node: ast.stmt) -> "Iterator[ast.expr]":
    """Assignment targets of a statement (flattening tuple unpacking)."""
    targets: "list[ast.expr]" = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from target.elts
        else:
            yield target


@dataclass(frozen=True)
class SelfAccess:
    """One ``self.X``-rooted read or write inside a method."""

    attr: str
    method: str
    node: ast.AST
    locked: bool


def scan_self_accesses(
    method: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> "tuple[list[SelfAccess], list[SelfAccess]]":
    """``(writes, reads)`` of ``self.X`` slots in ``method``, with lock depth.

    Reads are ``self.X`` attribute loads (including the base of a
    subscript store, which reads the container before mutating it);
    targets of plain attribute stores are not reads.  Nested scopes
    (functions, lambdas, classes) are skipped on both sides — they have
    their own receiver and their own discipline.
    """
    if not method.args.args:
        return [], []
    self_name = method.args.args[0].arg
    writes: "list[SelfAccess]" = []
    reads: "list[SelfAccess]" = []

    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inside = locked or any(
                is_lockish(item.context_expr) for item in node.items
            )
            for item in node.items:
                visit(item.context_expr, locked)
            for child in node.body:
                visit(child, inside)
            return
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            return  # nested scope: its own receiver, its own discipline
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            for target in write_targets(node):
                attr = self_attr_root(target, self_name)
                if attr is not None:
                    writes.append(SelfAccess(attr, method.name, node, locked))
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
        ):
            reads.append(SelfAccess(node.attr, method.name, node, locked))
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    for statement in method.body:
        visit(statement, False)
    return writes, reads


# ----------------------------------------------------------------------
# model dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class LockId:
    """Identity of one lock (or one keyed collection of locks)."""

    owner: str  #: qualname of the owning class (or module, or function)
    attr: str  #: attribute / variable name the lock lives in
    keyed: bool = False  #: a dict/list of locks — distinct keys, distinct locks
    kind: str = field(default="Lock", compare=False)
    rel: str = field(default="", compare=False)  #: defining file
    line: int = field(default=0, compare=False)  #: defining line

    @property
    def reentrant(self) -> bool:
        return self.kind in REENTRANT_KINDS

    @property
    def label(self) -> str:
        suffix = "[*]" if self.keyed else ""
        return f"{self.owner}.{self.attr}{suffix}"


@dataclass(frozen=True)
class LockEvent:
    """One acquisition or call inside a function, with the locks held."""

    kind: str  #: ``"acquire"`` or ``"call"``
    node: ast.AST
    held: "tuple[LockId, ...]"  #: locks held *before* this event
    lock: "LockId | None" = None  #: the acquired lock (``kind == "acquire"``)


@dataclass
class FunctionInfo:
    """One function or method: AST, resolved calls, lock behaviour."""

    qualname: str
    name: str
    module: ModuleInfo
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    owner_class: "str | None" = None
    calls: "dict[int, tuple[str, ...]]" = field(default_factory=dict)
    callees: "frozenset[str]" = frozenset()
    events: "tuple[LockEvent, ...]" = ()
    direct_acquires: "frozenset[LockId]" = frozenset()
    acquires: "frozenset[LockId]" = frozenset()  #: transitive (fixpoint)

    def resolved(self, call: ast.Call) -> "tuple[str, ...]":
        """Callee qualnames resolved for one call node of this function."""
        return self.calls.get(id(call), ())


@dataclass
class ClassInfo:
    """One class: methods, bases, lock inventory, inferred attribute types."""

    qualname: str
    name: str
    module: ModuleInfo
    node: ast.ClassDef
    bases: "tuple[str, ...]" = ()  #: resolved project base qualnames
    methods: "dict[str, FunctionInfo]" = field(default_factory=dict)
    locks: "dict[str, LockId]" = field(default_factory=dict)
    attr_types: "dict[str, frozenset[str]]" = field(default_factory=dict)
    guarded_attrs: "frozenset[str]" = frozenset()  #: attrs written under a lock


def _final_name(expr: ast.expr) -> "str | None":
    """Trailing identifier of a name/attribute chain (``a.b.c`` → ``c``)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _lock_ctor_kind(expr: ast.expr) -> "str | None":
    """``threading.Lock()`` / ``RLock()`` / … → its kind, else ``None``."""
    if not isinstance(expr, ast.Call):
        return None
    name = _final_name(expr.func)
    return LOCK_CTORS.get(name) if name is not None else None


def _annotation_names(node: "ast.expr | None") -> "set[str]":
    """Every identifier mentioned by an annotation (strings parsed too)."""
    names: "set[str]" = set()
    if node is None:
        return names
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return names
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            try:
                inner = ast.parse(sub.value, mode="eval").body
            except SyntaxError:
                continue
            for leaf in ast.walk(inner):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
                elif isinstance(leaf, ast.Attribute):
                    names.add(leaf.attr)
    return names


class ProjectModel:
    """Symbol table + lock inventory + call graph of one parsed project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.classes: "dict[str, ClassInfo]" = {}
        self.functions: "dict[str, FunctionInfo]" = {}
        self.module_locks: "dict[str, LockId]" = {}
        self._scopes: "dict[str, dict[str, str]]" = {}
        self._module_names: "set[str]" = {m.module for m in project}
        self._by_class_name: "dict[str, list[str]]" = {}
        self._subclasses: "dict[str, set[str]]" = {}
        self._collect_symbols()
        self._bind_scopes()
        self._resolve_bases()
        self._discover_locks()
        self._infer_attr_types()
        self._scan_guarded_attrs()
        self._resolve_calls()
        self._collect_events()
        self._fix_acquires()

    # ------------------------------------------------------------------
    # symbol collection
    # ------------------------------------------------------------------
    def _collect_symbols(self) -> None:
        for module in self.project:
            for stmt in module.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    qual = f"{module.module}.{stmt.name}"
                    info = ClassInfo(qual, stmt.name, module, stmt)
                    self.classes[qual] = info
                    self._by_class_name.setdefault(stmt.name, []).append(qual)
                    for item in stmt.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            fq = f"{qual}.{item.name}"
                            fn = FunctionInfo(
                                fq, item.name, module, item, owner_class=qual
                            )
                            info.methods[item.name] = fn
                            self.functions[fq] = fn
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fq = f"{module.module}.{stmt.name}"
                    self.functions[fq] = FunctionInfo(
                        fq, stmt.name, module, stmt
                    )

    def _resolve_module(self, dotted: str) -> "str | None":
        """Map an import path onto a scanned module, tolerating prefixes.

        Scanning ``src/repro`` names modules relative to that root
        (``core.engine``), while sources import ``repro.core.engine`` —
        leading components are stripped until a scanned module matches.
        """
        parts = dotted.split(".")
        for start in range(len(parts)):
            candidate = ".".join(parts[start:])
            if candidate in self._module_names:
                return candidate
        return None

    def _bind_scopes(self) -> None:
        for module in self.project:
            scope: "dict[str, str]" = {}
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                    scope[stmt.name] = f"{module.module}.{stmt.name}"
            # imports bind wherever they appear (several live inside
            # functions to break cycles); module scope over-approximates
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        resolved = self._resolve_module(alias.name)
                        if resolved is not None:
                            scope[alias.asname or alias.name] = resolved
                elif isinstance(node, ast.ImportFrom) and node.module:
                    base = self._resolve_module(node.module)
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        as_module = self._resolve_module(
                            f"{node.module}.{alias.name}"
                        )
                        if base is not None:
                            scope[bound] = f"{base}.{alias.name}"
                        elif as_module is not None:
                            scope[bound] = as_module
            self._scopes[module.module] = scope

    def _lookup(self, module: ModuleInfo, name: str) -> "str | None":
        return self._scopes.get(module.module, {}).get(name)

    def resolve_name(self, module: ModuleInfo, name: str) -> "str | None":
        """What bare ``name`` denotes at ``module`` scope (qualname), if
        it resolves to a scanned symbol or module at all."""
        return self._lookup(module, name)

    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            bases: "list[str]" = []
            for base in info.node.bases:
                name: "str | None" = None
                if isinstance(base, ast.Name):
                    name = self._lookup(info.module, base.id)
                elif isinstance(base, ast.Attribute):
                    candidates = self._by_class_name.get(base.attr)
                    name = self._lookup(info.module, base.attr) or (
                        candidates[0] if candidates else None
                    )
                if name is not None and name in self.classes:
                    bases.append(name)
            info.bases = tuple(bases)
            for base_qual in bases:
                self._subclasses.setdefault(base_qual, set()).add(info.qualname)

    # ------------------------------------------------------------------
    # class hierarchy
    # ------------------------------------------------------------------
    def mro(self, qualname: str) -> "Iterator[ClassInfo]":
        """The class and its project bases, depth-first, no duplicates."""
        seen: "set[str]" = set()
        stack = [qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen or qual not in self.classes:
                continue
            seen.add(qual)
            info = self.classes[qual]
            yield info
            stack.extend(info.bases)

    def subclasses(self, qualname: str) -> "Iterator[ClassInfo]":
        """Every transitive project subclass of ``qualname``."""
        seen: "set[str]" = set()
        stack = list(self._subclasses.get(qualname, ()))
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            if qual in self.classes:
                yield self.classes[qual]
            stack.extend(self._subclasses.get(qual, ()))

    def resolve_method(self, qualname: str, name: str) -> "list[FunctionInfo]":
        """CHA resolution of ``obj.name()`` where ``obj: qualname``.

        The first definition along the MRO plus every subclass override —
        the receiver may be any subclass of the annotated type.
        """
        out: "list[FunctionInfo]" = []
        for info in self.mro(qualname):
            if name in info.methods:
                out.append(info.methods[name])
                break
        for sub in self.subclasses(qualname):
            if name in sub.methods:
                out.append(sub.methods[name])
        return out

    # ------------------------------------------------------------------
    # lock inventory
    # ------------------------------------------------------------------
    def _discover_locks(self) -> None:
        for info in self.classes.values():
            rel = info.module.rel
            for item in info.node.body:  # dataclass fields / class vars
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    names = _annotation_names(item.annotation)
                    kinds = [LOCK_CTORS[n] for n in names if n in LOCK_CTORS]
                    factory = self._field_factory_kind(item.value)
                    if kinds or factory:
                        keyed = bool(names & _KEYED_CONTAINERS)
                        kind = factory or kinds[0]
                        info.locks[item.target.id] = LockId(
                            info.qualname, item.target.id, keyed, kind,
                            rel, item.lineno,
                        )
                elif isinstance(item, ast.Assign):
                    kind_ = _lock_ctor_kind(item.value)
                    if kind_ is not None:
                        for target in item.targets:
                            if isinstance(target, ast.Name):
                                info.locks[target.id] = LockId(
                                    info.qualname, target.id, False, kind_,
                                    rel, item.lineno,
                                )
            for method in info.methods.values():
                self._discover_method_locks(info, method)
        for module in self.project:  # module-level locks
            for stmt in module.tree.body:
                if isinstance(stmt, ast.Assign):
                    kind = _lock_ctor_kind(stmt.value)
                    if kind is None:
                        continue
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            qual = f"{module.module}.{target.id}"
                            self.module_locks[qual] = LockId(
                                module.module, target.id, False, kind,
                                module.rel, stmt.lineno,
                            )

    @staticmethod
    def _field_factory_kind(value: "ast.expr | None") -> "str | None":
        """``field(default_factory=threading.Lock)`` → ``"Lock"``."""
        if not isinstance(value, ast.Call):
            return None
        if _final_name(value.func) != "field":
            return None
        for kw in value.keywords:
            if kw.arg == "default_factory":
                name = _final_name(kw.value)
                if name in LOCK_CTORS:
                    return LOCK_CTORS[name]
        return None

    def _discover_method_locks(
        self, info: ClassInfo, method: FunctionInfo
    ) -> None:
        node = method.node
        if not node.args.args:
            return
        self_name = node.args.args[0].arg
        rel = info.module.rel
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                value = sub.value
                kind = _lock_ctor_kind(value) if value is not None else None
                ann_names = (
                    _annotation_names(sub.annotation)
                    if isinstance(sub, ast.AnnAssign)
                    else set()
                )
                ann_kinds = [
                    LOCK_CTORS[n] for n in ann_names if n in LOCK_CTORS
                ]
                if kind is None and not ann_kinds:
                    continue
                for target in write_targets(sub):
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        keyed = bool(ann_names & _KEYED_CONTAINERS)
                        info.locks.setdefault(
                            target.attr,
                            LockId(
                                info.qualname, target.attr, keyed,
                                kind or ann_kinds[0], rel, sub.lineno,
                            ),
                        )
                    elif (
                        kind is not None
                        and isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and isinstance(target.value.value, ast.Name)
                        and target.value.value.id == self_name
                    ):
                        # self._locks[key] = threading.Lock(): keyed map
                        info.locks.setdefault(
                            target.value.attr,
                            LockId(
                                info.qualname, target.value.attr, True,
                                kind, rel, sub.lineno,
                            ),
                        )
            elif isinstance(sub, ast.Call):
                # self._locks.setdefault(key, threading.Lock())
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "setdefault"
                    and len(sub.args) == 2
                    and _lock_ctor_kind(sub.args[1]) is not None
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == self_name
                ):
                    kind2 = _lock_ctor_kind(sub.args[1])
                    assert kind2 is not None
                    info.locks.setdefault(
                        func.value.attr,
                        LockId(
                            info.qualname, func.value.attr, True, kind2,
                            rel, sub.lineno,
                        ),
                    )

    # ------------------------------------------------------------------
    # attribute / local type inference
    # ------------------------------------------------------------------
    def _classes_from_annotation(
        self, module: ModuleInfo, node: "ast.expr | None"
    ) -> "frozenset[str]":
        out: "set[str]" = set()
        for name in _annotation_names(node):
            resolved = self._lookup(module, name)
            if resolved is not None and resolved in self.classes:
                out.add(resolved)
            elif name in self._by_class_name and resolved is None:
                # annotation names a project class not imported here
                # (string forward reference) — unique bare names resolve
                candidates = self._by_class_name[name]
                if len(candidates) == 1:
                    out.add(candidates[0])
        return frozenset(out)

    def _expr_types(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: "dict[str, frozenset[str]]",
    ) -> "frozenset[str]":
        """Project classes an expression may evaluate to (best effort)."""
        module = fn.module
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            resolved = self._lookup(module, expr.id)
            if resolved is not None and resolved in self.classes:
                return frozenset({resolved})  # the class object itself
            return frozenset()
        if isinstance(expr, ast.Call):
            name: "str | None" = None
            if isinstance(expr.func, ast.Name):
                name = self._lookup(module, expr.func.id)
            elif isinstance(expr.func, ast.Attribute):
                name = self._lookup(module, expr.func.attr)
            if name is None:
                return frozenset()
            if name in self.classes:
                return frozenset({name})
            if name in self.functions:
                target = self.functions[name]
                return self._classes_from_annotation(
                    target.module, target.node.returns
                )
            return frozenset()
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and fn.owner_class is not None
            and fn.node.args.args
            and expr.value.id == fn.node.args.args[0].arg
        ):
            return self._attr_types(fn.owner_class, expr.attr)
        return frozenset()

    def _attr_types(self, class_qual: str, attr: str) -> "frozenset[str]":
        for info in self.mro(class_qual):
            if attr in info.attr_types:
                return info.attr_types[attr]
        return frozenset()

    def _local_env(self, fn: FunctionInfo) -> "dict[str, frozenset[str]]":
        """Flow-insensitive local-name → project-class types for ``fn``."""
        env: "dict[str, frozenset[str]]" = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            types = self._classes_from_annotation(fn.module, arg.annotation)
            if types:
                env[arg.arg] = types
        if fn.owner_class is not None and args.args:
            first = args.args[0].arg
            if first in ("self", "cls"):
                env[first] = frozenset({fn.owner_class})
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    types = self._expr_types(fn, stmt.value, env)
                    if types:
                        env[target.id] = types
                elif (
                    isinstance(target, (ast.Tuple, ast.List))
                    and isinstance(stmt.value, (ast.Tuple, ast.List))
                    and len(target.elts) == len(stmt.value.elts)
                ):
                    # engine, graph = self.engine, self.graph
                    for sub_target, sub_value in zip(
                        target.elts, stmt.value.elts
                    ):
                        if isinstance(sub_target, ast.Name):
                            types = self._expr_types(fn, sub_value, env)
                            if types:
                                env[sub_target.id] = types
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                types = self._classes_from_annotation(fn.module, stmt.annotation)
                if types:
                    env[stmt.target.id] = types
        return env

    def _infer_attr_types(self) -> None:
        for info in self.classes.values():
            types: "dict[str, set[str]]" = {}
            for item in info.node.body:  # annotated class fields
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    found = self._classes_from_annotation(
                        info.module, item.annotation
                    )
                    if found:
                        types.setdefault(item.target.id, set()).update(found)
            for method in info.methods.values():
                node = method.node
                if not node.args.args:
                    continue
                self_name = node.args.args[0].arg
                env = self._local_env(method)
                for stmt in ast.walk(node):
                    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        continue
                    if stmt.value is None:
                        continue
                    for target in write_targets(stmt):
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == self_name
                        ):
                            found = self._expr_types(method, stmt.value, env)
                            if isinstance(stmt, ast.AnnAssign):
                                found = found | self._classes_from_annotation(
                                    info.module, stmt.annotation
                                )
                            if found:
                                types.setdefault(target.attr, set()).update(
                                    found
                                )
            info.attr_types = {
                attr: frozenset(vals) for attr, vals in types.items()
            }

    def _scan_guarded_attrs(self) -> None:
        for info in self.classes.values():
            guarded: "set[str]" = set()
            for method in info.methods.values():
                writes, _ = scan_self_accesses(method.node)
                guarded.update(w.attr for w in writes if w.locked)
            info.guarded_attrs = frozenset(guarded)

    def guarded_attrs(self, class_qual: str) -> "frozenset[str]":
        """Attrs written under a lock anywhere in the class or its bases."""
        out: "set[str]" = set()
        for info in self.mro(class_qual):
            out.update(info.guarded_attrs)
        return frozenset(out)

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def _resolve_call(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: "dict[str, frozenset[str]]",
    ) -> "tuple[str, ...]":
        func = call.func
        out: "list[str]" = []
        if isinstance(func, ast.Name):
            resolved = self._lookup(fn.module, func.id)
            if resolved is not None and resolved in self.functions:
                out.append(resolved)
            elif resolved is not None and resolved in self.classes:
                # ClassName(...) → its __init__
                init = self.classes[resolved].methods.get("__init__")
                if init is not None:
                    out.append(init.qualname)
        elif isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
                and fn.owner_class is not None
            ):
                mro = list(self.mro(fn.owner_class))
                for info in mro[1:]:
                    if func.attr in info.methods:
                        out.append(info.methods[func.attr].qualname)
                        break
            else:
                for class_qual in sorted(self._expr_types(fn, receiver, env)):
                    for target in self.resolve_method(class_qual, func.attr):
                        out.append(target.qualname)
                if not out and isinstance(receiver, ast.Name):
                    resolved = self._lookup(fn.module, receiver.id)
                    if resolved is not None and resolved in self._module_names:
                        qual = f"{resolved}.{func.attr}"
                        if qual in self.functions:
                            out.append(qual)
                        elif qual in self.classes:
                            init = self.classes[qual].methods.get("__init__")
                            if init is not None:
                                out.append(init.qualname)
        seen: "dict[str, None]" = dict.fromkeys(out)
        return tuple(seen)

    def _resolve_calls(self) -> None:
        for fn in self.functions.values():
            env = self._local_env(fn)
            calls: "dict[int, tuple[str, ...]]" = {}
            callees: "set[str]" = set()
            for node in self._own_body_walk(fn.node):
                if isinstance(node, ast.Call):
                    targets = self._resolve_call(fn, node, env)
                    if targets:
                        calls[id(node)] = targets
                        callees.update(targets)
            fn.calls = calls
            fn.callees = frozenset(callees)

    @staticmethod
    def _own_body_walk(
        root: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> "Iterator[ast.AST]":
        """Walk a function's own body, not entering nested scopes."""
        stack: "list[ast.AST]" = list(root.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    # ------------------------------------------------------------------
    # lock events
    # ------------------------------------------------------------------
    def resolve_lock_expr(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        aliases: "dict[str, LockId]",
        env: "dict[str, frozenset[str]]",
    ) -> "LockId | None":
        """The :class:`LockId` a ``with`` target (or alias RHS) denotes."""
        if isinstance(expr, ast.Name):
            if expr.id in aliases:
                return aliases[expr.id]
            own = f"{fn.module.module}.{expr.id}"
            if own in self.module_locks:
                return self.module_locks[own]
            bound = self._lookup(fn.module, expr.id)
            if bound is not None and bound in self.module_locks:
                return self.module_locks[bound]
            if LOCKISH.search(expr.id):
                return LockId(fn.qualname, expr.id, False, "inferred")
            return None
        if isinstance(expr, ast.Attribute):
            found = self._attribute_lock(fn, expr, env)
            if found is not None:
                return found
            if LOCKISH.search(expr.attr):
                owner = fn.owner_class or fn.qualname
                return LockId(owner, expr.attr, False, "inferred")
            return None
        if isinstance(expr, ast.Subscript):
            base = expr.value
            if isinstance(base, (ast.Attribute, ast.Name)):
                found = (
                    self._attribute_lock(fn, base, env)
                    if isinstance(base, ast.Attribute)
                    else aliases.get(base.id)
                )
                if found is not None:
                    return found
            if is_lockish(expr):
                owner = fn.owner_class or fn.qualname
                name = _final_name(base) or "?"
                return LockId(owner, name, True, "inferred")
            return None
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            # lock = self._build_locks.setdefault(key, threading.Lock())
            if expr.func.attr in ("setdefault", "get") and isinstance(
                expr.func.value, (ast.Attribute, ast.Name)
            ):
                base2 = expr.func.value
                if isinstance(base2, ast.Attribute):
                    return self._attribute_lock(fn, base2, env)
                return aliases.get(base2.id)
        return None

    def _attribute_lock(
        self,
        fn: FunctionInfo,
        expr: ast.Attribute,
        env: "dict[str, frozenset[str]]",
    ) -> "LockId | None":
        """``self._lock`` / ``obj._lock`` → the inventory entry, if any."""
        receiver = expr.value
        if (
            isinstance(receiver, ast.Name)
            and fn.owner_class is not None
            and fn.node.args.args
            and receiver.id == fn.node.args.args[0].arg
        ):
            for info in self.mro(fn.owner_class):
                if expr.attr in info.locks:
                    return info.locks[expr.attr]
            return None
        for class_qual in sorted(self._expr_types(fn, receiver, env)):
            for info in self.mro(class_qual):
                if expr.attr in info.locks:
                    return info.locks[expr.attr]
        return None

    def _collect_events(self) -> None:
        for fn in self.functions.values():
            env = self._local_env(fn)
            aliases: "dict[str, LockId]" = {}
            for node in self._own_body_walk(fn.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    lock = self.resolve_lock_expr(fn, node.value, aliases, env)
                    if lock is not None:
                        aliases[node.targets[0].id] = lock
            events: "list[LockEvent]" = []

            def visit(
                node: ast.AST, held: "tuple[LockId, ...]", fn: FunctionInfo,
                aliases: "dict[str, LockId]",
                env: "dict[str, frozenset[str]]",
                events: "list[LockEvent]",
            ) -> None:
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    inner = held
                    for item in node.items:
                        for sub in ast.walk(item.context_expr):
                            if isinstance(sub, ast.Call):
                                events.append(LockEvent("call", sub, inner))
                        lock = self.resolve_lock_expr(
                            fn, item.context_expr, aliases, env
                        )
                        if lock is not None:
                            events.append(
                                LockEvent(
                                    "acquire", item.context_expr, inner, lock
                                )
                            )
                            inner = inner + (lock,)
                    for child in node.body:
                        visit(child, inner, fn, aliases, env, events)
                    return
                if isinstance(
                    node,
                    (
                        ast.FunctionDef,
                        ast.AsyncFunctionDef,
                        ast.Lambda,
                        ast.ClassDef,
                    ),
                ):
                    return
                if isinstance(node, ast.Call):
                    events.append(LockEvent("call", node, held))
                for child in ast.iter_child_nodes(node):
                    visit(child, held, fn, aliases, env, events)

            for stmt in fn.node.body:
                visit(stmt, (), fn, aliases, env, events)
            fn.events = tuple(events)
            fn.direct_acquires = frozenset(
                e.lock for e in fn.events if e.kind == "acquire" and e.lock
            )

    # ------------------------------------------------------------------
    # transitive acquisition fixpoint
    # ------------------------------------------------------------------
    def _fix_acquires(self) -> None:
        star: "dict[str, set[LockId]]" = {
            qual: set(fn.direct_acquires)
            for qual, fn in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for qual, fn in self.functions.items():
                mine = star[qual]
                before = len(mine)
                for callee in fn.callees:
                    if callee in star:
                        mine.update(star[callee])
                if len(mine) != before:
                    changed = True
        for qual, fn in self.functions.items():
            fn.acquires = frozenset(star[qual])


# ----------------------------------------------------------------------
# memoised construction
# ----------------------------------------------------------------------
_model_cache: "list[tuple[weakref.ref[Project], ProjectModel]]" = []
_model_cache_lock = threading.Lock()


def build_model(project: Project) -> ProjectModel:
    """Build (or reuse) the :class:`ProjectModel` for a parsed project.

    Several rules consume the model in one :func:`~repro.analysis.framework.
    run_analysis` call; identity-keyed memoisation (weakly referenced, so
    dead projects never pin their ASTs) makes that one build, not four.
    """
    with _model_cache_lock:
        for ref, model in _model_cache:
            if ref() is project:
                return model
        model = ProjectModel(project)
        _model_cache[:] = [
            (ref, cached) for ref, cached in _model_cache if ref() is not None
        ][-4:]
        _model_cache.append((weakref.ref(project), model))
        return model
