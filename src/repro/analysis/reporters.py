"""Reporters — render an analysis run for humans (text) or machines (JSON).

Both renderers take the same inputs (active findings, plus the suppressed
and baselined ones that were filtered out) and produce deterministic
output, so they are covered by golden tests and the JSON form can be
uploaded as a CI artifact next to the ``BENCH_*.json`` records.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.framework import Finding

JSON_REPORT_VERSION = 1


def _counts(
    findings: "Sequence[Finding]",
    suppressed: "Sequence[Finding]",
    baselined: "Sequence[Finding]",
) -> "dict[str, int]":
    return {
        "findings": len(findings),
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
        "suppressed": len(suppressed),
        "baselined": len(baselined),
    }


def render_text(
    findings: "Sequence[Finding]",
    suppressed: "Sequence[Finding]" = (),
    baselined: "Sequence[Finding]" = (),
) -> str:
    """Human-readable report: one ``path:line:col`` line per finding."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity}] {f.message}"
        for f in sorted(findings)
    ]
    counts = _counts(findings, suppressed, baselined)
    if counts["findings"] == 0:
        summary = "clean: no findings"
    else:
        summary = (
            f"{counts['findings']} finding(s): "
            f"{counts['errors']} error(s), {counts['warnings']} warning(s)"
        )
    summary += (
        f" ({counts['suppressed']} suppressed, {counts['baselined']} baselined)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: "Sequence[Finding]",
    suppressed: "Sequence[Finding]" = (),
    baselined: "Sequence[Finding]" = (),
) -> str:
    """Machine-readable report (stable key order, 2-space indent)."""

    def encode(f: Finding) -> "dict[str, object]":
        return {
            "rule": f.rule,
            "severity": f.severity,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "message": f.message,
        }

    payload = {
        "version": JSON_REPORT_VERSION,
        "counts": _counts(findings, suppressed, baselined),
        "findings": [encode(f) for f in sorted(findings)],
        "suppressed": [encode(f) for f in sorted(suppressed)],
        "baselined": [encode(f) for f in sorted(baselined)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
