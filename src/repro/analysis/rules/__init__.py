"""Built-in invariant rules; importing this package registers them all.

Each module registers one rule with
:func:`repro.analysis.framework.register_rule` — the same self-registering
import idiom the engine registry uses.  Add a rule by dropping a module
here and importing it below (see ``repro/analysis/README.md``).
"""

from repro.analysis.rules import (  # noqa: F401
    atomicity,
    blocking_under_lock,
    boundary_validation,
    config_drift,
    determinism,
    executor_escape,
    lock_discipline,
    lock_order,
    mutable_defaults,
    registry_purity,
)
