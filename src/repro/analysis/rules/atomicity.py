"""Rule ``atomicity`` — the read-side twin of ``lock-discipline``.

``lock-discipline`` stops unlocked *writes* to guarded state, but a torn
*read* is just as wrong: ``self.engine`` and ``self.graph`` are swapped
together under ``ResistanceService._lock``, so a method that reads them
without the lock can observe the new engine next to the old graph.  The
rule is the mirror image of the write side:

    for every class, any ``self.X`` attribute that is ever *written*
    inside a ``with`` block whose context manager looks like a lock must
    never be *read* outside such a block in the same class — except in
    ``__init__``, where the object is not yet shared.

Root-attribute resolution and "looks like a lock" are shared with
``lock-discipline`` (:mod:`repro.analysis.model`): ``self.stats.reads``
reads root slot ``stats``; the base of a subscript store
(``self._engines[c] = e``) counts as a read of the container.  Reads
inside nested functions/lambdas are out of scope (their execution time
is unknowable syntactically).  Deliberately racy snapshots — progress
counters, ``repr``, double-checked fast paths — carry a reasoned
``# repro: ignore[atomicity]``, which is exactly the load-bearing
comment such a read deserves.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ModuleInfo, Rule, register_rule
from repro.analysis.model import SelfAccess, scan_self_accesses


@register_rule
class AtomicityRule(Rule):
    rule_id = "atomicity"
    severity = "error"
    description = (
        "attributes ever written under a lock must also be read "
        "under one (outside __init__)"
    )

    def check_module(self, module: ModuleInfo) -> "Iterable[Finding]":
        findings: "list[Finding]" = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            writes: "list[SelfAccess]" = []
            reads: "list[SelfAccess]" = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    item_writes, item_reads = scan_self_accesses(item)
                    writes.extend(item_writes)
                    reads.extend(item_reads)
            guarded = {w.attr for w in writes if w.locked}
            for read in reads:
                if (
                    read.attr in guarded
                    and not read.locked
                    and read.method != "__init__"
                ):
                    findings.append(
                        self.finding(
                            module,
                            read.node,
                            f"attribute 'self.{read.attr}' is written under "
                            f"a lock elsewhere in class '{node.name}' but "
                            f"method '{read.method}' reads it without "
                            f"holding one",
                        )
                    )
        return findings
