"""Rule ``blocking-under-lock`` — no slow work inside a critical section.

A lock that is held across an engine factorisation, a file load or a
pool drain turns every concurrent reader into a queue: the paper's whole
point is that queries are cheap *because* the expensive Cholesky work
happened up front, and one careless ``with self._lock:`` around
``build_engine`` silently serialises the query path.  The rule flags any
call made while a lock is held that can *reach* a blocking primitive:

* engine factorisation — ``build_engine``, ``approximate_inverse``,
  ``schur_reduce``;
* file I/O — ``load_engine`` / ``save_engine``, ``np.load`` /
  ``np.save`` / ``np.savez`` / ``np.savez_compressed``;
* executor waits — ``Future.result()``, ``concurrent.futures.wait``,
  pool ``shutdown``, thread ``join``, ``time.sleep``.

"Can reach" is the project model's call graph closed to a fixpoint, so
``self._build_system(c)`` under a per-component lock is flagged because
a nested worker three calls down runs ``schur_reduce``.  Nested ``def``s
and lambdas *are* scanned for primitives (they usually run inline or on
the submitting path) but calls to them cannot be resolved — unresolved
calls contribute nothing, keeping the rule free of phantom findings.
``Condition.wait`` is exempt: it releases the lock it is called under.

Some critical sections exist precisely to serialise a build (per-shard
build locks, the refresh lock): mark those lines with a reasoned
``# repro: ignore[blocking-under-lock]`` stating which lock is the
designated build serialiser.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.framework import Finding, Project, Rule, register_rule
from repro.analysis.model import (
    FunctionInfo,
    LockId,
    ProjectModel,
    _final_name,
    build_model,
    is_lockish,
)

#: Engine factorisation entry points (anything that runs Alg. 1/2 or
#: assembles a Schur complement).
_BUILD_PRIMITIVES = frozenset(
    {"build_engine", "approximate_inverse", "schur_reduce"}
)

#: Engine persistence entry points (disk round-trips).
_IO_PRIMITIVES = frozenset({"load_engine", "save_engine"})

#: ``np.<fn>`` calls that hit the filesystem.
_NUMPY_IO = frozenset({"load", "save", "savez", "savez_compressed"})

_POOLISH = re.compile(r"pool|executor", re.IGNORECASE)
_THREADISH = re.compile(r"thread|pool|worker", re.IGNORECASE)


def blocking_reason(call: ast.Call) -> "str | None":
    """Why this call blocks, if it is itself a blocking primitive."""
    func = call.func
    name = _final_name(func)
    if name in _BUILD_PRIMITIVES:
        return f"reaches engine factorisation '{name}()'"
    if name in _IO_PRIMITIVES:
        return f"reaches engine file I/O '{name}()'"
    if isinstance(func, ast.Attribute):
        receiver = func.value
        receiver_name = _final_name(receiver)
        if func.attr in _NUMPY_IO and receiver_name in ("np", "numpy"):
            return f"reaches numpy file I/O 'np.{func.attr}()'"
        if func.attr == "result":
            return "waits on a Future ('.result()')"
        if func.attr == "wait" and not is_lockish(receiver):
            # Condition.wait releases the lock it runs under — exempt.
            return "waits on futures/events ('.wait()')"
        if (
            func.attr == "shutdown"
            and receiver_name is not None
            and _POOLISH.search(receiver_name)
        ):
            return "waits for a worker pool to drain ('.shutdown()')"
        if (
            func.attr == "join"
            and receiver_name is not None
            and _THREADISH.search(receiver_name)
        ):
            return "joins a thread ('.join()')"
        if func.attr == "sleep" and receiver_name == "time":
            return "sleeps ('time.sleep()')"
    elif isinstance(func, ast.Name) and func.id == "sleep":
        return "sleeps ('sleep()')"
    return None


def _direct_reasons(model: ProjectModel) -> "dict[str, str]":
    """First blocking primitive syntactically inside each function.

    Unlike the call-graph walk this scan *does* enter nested ``def``s and
    lambdas: a worker closure handed to ``pool.map`` inside the function
    is part of the work the function performs.
    """
    out: "dict[str, str]" = {}
    for qual in sorted(model.functions):
        fn = model.functions[qual]
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                reason = blocking_reason(node)
                if reason is not None:
                    out[qual] = reason
                    break
    return out


def _star_reasons(model: ProjectModel) -> "dict[str, str]":
    """Fixpoint: a function blocks if it calls a function that blocks."""
    star = _direct_reasons(model)
    changed = True
    while changed:
        changed = False
        for qual in sorted(model.functions):
            if qual in star:
                continue
            fn = model.functions[qual]
            for callee in sorted(fn.callees):
                if callee in star:
                    star[qual] = star[callee]
                    changed = True
                    break
    return star


def _call_text(call: ast.Call) -> str:
    try:
        return ast.unparse(call.func)
    except Exception:  # pragma: no cover - unparse is total on parsed ASTs
        return "<call>"


@register_rule
class BlockingUnderLockRule(Rule):
    rule_id = "blocking-under-lock"
    severity = "error"
    description = (
        "no call reaching an engine build, file I/O or an executor "
        "wait may run while a lock is held"
    )

    def check_project(self, project: Project) -> "Iterable[Finding]":
        model = build_model(project)
        star = _star_reasons(model)
        findings: "list[Finding]" = []
        for qual in sorted(model.functions):
            fn = model.functions[qual]
            for event in fn.events:
                if event.kind != "call" or not event.held:
                    continue
                call = event.node
                if not isinstance(call, ast.Call):
                    continue
                findings.extend(self._judge(fn, call, event.held, star))
        return findings

    def _judge(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        held: "tuple[LockId, ...]",
        star: "dict[str, str]",
    ) -> "Iterable[Finding]":
        reason = blocking_reason(call)
        via: "str | None" = None
        if reason is None:
            for callee in fn.resolved(call):
                if callee in star:
                    reason, via = star[callee], callee
                    break
        if reason is None:
            return
        lock_label = held[-1].label
        message = (
            f"'{_call_text(call)}(...)' runs while lock "
            f"'{lock_label}' is held: {reason}"
        )
        if via is not None:
            message += f" (via '{via}')"
        yield self.finding(fn.module, call, message)
