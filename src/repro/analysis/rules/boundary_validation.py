"""Rule ``boundary-validation`` — services validate node ids at the door.

PR 4 established the contract: a bad node id fails at the *service*
boundary with a ``ValueError`` naming the offender
(:func:`repro.core.engine.validate_node_ids`), never as an ``IndexError``
— or worse, a silently wrapped negative index — deep inside an engine.
The async front-end additionally relies on it so one malformed request
fails only its own future, not a whole coalesced micro-batch.

The rule checks every public method of every ``*Service`` class: if a
parameter is node-id-bearing (``p``, ``q``, ``pairs``, ``edges``,
``node``, ``nodes``, ``node_ids``, ``ids``), the method must call
``validate_node_ids`` — directly, or by delegating to another method of
the same class that (transitively) does.  Delegation is resolved as a
fixpoint over ``self.<method>(...)`` calls, so thin wrappers like
``query_pairs`` → ``query_pairs_with_report`` pass without repeating the
check.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ModuleInfo, Rule, register_rule

_VALIDATOR = "validate_node_ids"
_NODE_PARAMS = {"p", "q", "pairs", "edges", "node", "nodes", "node_ids", "ids"}
_SERVICE_SUFFIX = "Service"


def _method_calls_validator(method: ast.AST) -> bool:
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == _VALIDATOR:
                return True
    return False


def _self_delegates(
    method: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> "set[str]":
    """Names of same-class methods this method calls via ``self.<m>(...)``."""
    if not method.args.args:
        return set()
    self_name = method.args.args[0].arg
    out: "set[str]" = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == self_name
        ):
            out.add(node.func.attr)
    return out


def _node_params(
    method: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> "list[str]":
    params = [
        arg.arg
        for arg in (
            method.args.posonlyargs + method.args.args + method.args.kwonlyargs
        )
    ]
    return [name for name in params[1:] if name in _NODE_PARAMS] if params else []


@register_rule
class BoundaryValidationRule(Rule):
    rule_id = "boundary-validation"
    severity = "error"
    description = (
        "public *Service methods taking node ids must call "
        "validate_node_ids (directly or via a delegate method)"
    )

    def check_module(self, module: ModuleInfo) -> "Iterable[Finding]":
        findings: "list[Finding]" = []
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.ClassDef)
                and node.name.endswith(_SERVICE_SUFFIX)
                and not node.name.startswith("_")
            ):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            satisfied = {
                name
                for name, method in methods.items()
                if _method_calls_validator(method)
            }
            delegates = {
                name: _self_delegates(method) & set(methods)
                for name, method in methods.items()
            }
            # fixpoint: calling a satisfied sibling satisfies the caller
            changed = True
            while changed:
                changed = False
                for name, called in delegates.items():
                    if name not in satisfied and called & satisfied:
                        satisfied.add(name)
                        changed = True
            for name, method in methods.items():
                if name.startswith("_") or name in satisfied:
                    continue
                params = _node_params(method)
                if params:
                    findings.append(
                        self.finding(
                            module,
                            method,
                            f"public method '{node.name}.{name}' takes node "
                            f"ids ({', '.join(repr(p) for p in params)}) but "
                            f"never calls {_VALIDATOR}(), so a bad id would "
                            f"surface as an IndexError (or wrap negative) "
                            f"inside an engine",
                        )
                    )
        return findings
