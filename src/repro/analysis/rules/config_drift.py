"""Rule ``config-persistence-drift`` — saved configs must round-trip.

The exact bug class this rule encodes shipped silently once already: PR 5
added ``EngineConfig.build_workers``, and until it was explicitly threaded
through ``persistence.py:save_engine`` and
``CholInvEffectiveResistance.from_state``, engines restored from disk
quietly rebuilt with the default worker count.  Nothing crashed — the
field just evaporated across a save/load cycle.

The rule cross-checks three structures, wherever they live in the project,
for *every* persisted engine kind (``cholinv``, ``landmark``, …):

* the ``EngineConfig`` dataclass — the set of declared field names;
* each ``register_engine("<method>", params=(...))`` registration — the
  subset of fields that engine actually consumes;
* the save path — every ``EngineConfig(method="<method>", ...)`` call
  inside ``save_engine`` declares which engine it persists through its
  ``method=`` keyword, and must write every param that engine consumes —
  and the restore path — the ``from_state`` classmethod of a class
  registered under a persisted method must read every such param back as
  ``config.<field>``.

Any keyword ``save_engine`` passes that is not a declared field (a typo
that ``from_dict`` would silently drop) is flagged too.  The executable
twin of this rule is the save/load field-equality test in
``tests/test_persistence_drift.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ModuleInfo, Project, Rule, register_rule

_CONFIG_CLASS = "EngineConfig"
_SAVE_FUNC = "save_engine"
_RESTORE_FUNC = "from_state"
_REGISTRAR = "register_engine"


def _terminal_name(func: ast.expr) -> "str | None":
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _config_fields(project: Project) -> "set[str]":
    """Field names of the (single) ``EngineConfig`` dataclass, if any."""
    fields: "set[str]" = set()
    for module in project:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == _CONFIG_CLASS:
                for statement in node.body:
                    if isinstance(statement, ast.AnnAssign) and isinstance(
                        statement.target, ast.Name
                    ):
                        fields.add(statement.target.id)
    return fields


def _registered_params(project: Project) -> "dict[str, set[str]]":
    """``method -> params`` from every ``register_engine(...)`` call."""
    registry: "dict[str, set[str]]" = {}
    for module in project:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and _terminal_name(node.func) == _REGISTRAR
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            params = registry.setdefault(node.args[0].value, set())
            for keyword in node.keywords:
                if keyword.arg == "params" and isinstance(
                    keyword.value, (ast.Tuple, ast.List)
                ):
                    for element in keyword.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            params.add(element.value)
    return registry


def _call_method(call: ast.Call) -> "str | None":
    """The constant ``method=`` keyword of an ``EngineConfig(...)`` call."""
    for keyword in call.keywords:
        if (
            keyword.arg == "method"
            and isinstance(keyword.value, ast.Constant)
            and isinstance(keyword.value.value, str)
        ):
            return keyword.value.value
    return None


def _registered_method(class_node: ast.ClassDef) -> "str | None":
    """The method a class registers via its ``register_engine`` decorator."""
    for decorator in class_node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and _terminal_name(decorator.func) == _REGISTRAR
            and decorator.args
            and isinstance(decorator.args[0], ast.Constant)
            and isinstance(decorator.args[0].value, str)
        ):
            return decorator.args[0].value
    return None


@register_rule
class ConfigPersistenceDriftRule(Rule):
    rule_id = "config-persistence-drift"
    severity = "error"
    description = (
        "every EngineConfig field a persisted engine consumes must be "
        "written by save_engine and read back by its from_state"
    )

    def check_project(self, project: Project) -> "Iterable[Finding]":
        fields = _config_fields(project)
        registry = _registered_params(project)
        if not fields or not registry:
            return ()  # nothing persistable in this tree
        # the save path is the source of truth for what gets persisted:
        # every EngineConfig(method="<m>", ...) built inside save_engine
        persisted = self._persisted_methods(project)
        findings: "list[Finding]" = []
        for module in project:
            findings.extend(
                self._check_save(module, registry, fields)
            )
            findings.extend(
                self._check_restore(module, registry, persisted)
            )
        return findings

    def _save_config_calls(
        self, module: ModuleInfo
    ) -> "Iterable[ast.Call]":
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == _SAVE_FUNC
            ):
                continue
            for call in ast.walk(node):
                if (
                    isinstance(call, ast.Call)
                    and _terminal_name(call.func) == _CONFIG_CLASS
                ):
                    yield call

    def _persisted_methods(self, project: Project) -> "set[str]":
        methods: "set[str]" = set()
        for module in project:
            for call in self._save_config_calls(module):
                method = _call_method(call)
                if method is not None:
                    methods.add(method)
        return methods

    def _check_save(
        self,
        module: ModuleInfo,
        registry: "dict[str, set[str]]",
        fields: "set[str]",
    ) -> "Iterable[Finding]":
        for call in self._save_config_calls(module):
            if any(keyword.arg is None for keyword in call.keywords):
                continue  # **kwargs: opaque to static analysis
            method = _call_method(call)
            written = {
                keyword.arg for keyword in call.keywords
                if keyword.arg is not None
            }
            if method is None:
                yield self.finding(
                    module,
                    call,
                    f"EngineConfig built inside {_SAVE_FUNC}() without a "
                    f"constant method= keyword; the drift check cannot "
                    f"tell which engine's params it must persist",
                )
                continue
            required = sorted(registry.get(method, set()) - {"method"})
            for param in required:
                if param not in written:
                    yield self.finding(
                        module,
                        call,
                        f"EngineConfig field '{param}' is consumed by "
                        f"the '{method}' engine but not "
                        f"written by {_SAVE_FUNC}(); saved engines "
                        f"would silently lose it",
                    )
            for name in sorted(written - fields - {"method"}):
                yield self.finding(
                    module,
                    call,
                    f"{_SAVE_FUNC}() passes keyword '{name}' which is "
                    f"not an EngineConfig field (typo? from_dict would "
                    f"silently drop it)",
                )

    def _check_restore(
        self,
        module: ModuleInfo,
        registry: "dict[str, set[str]]",
        persisted: "set[str]",
    ) -> "Iterable[Finding]":
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            method = _registered_method(class_node)
            if method is None or method not in persisted:
                continue
            required = sorted(registry.get(method, set()) - {"method"})
            for node in class_node.body:
                if not (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == _RESTORE_FUNC
                ):
                    continue
                arg_names = {arg.arg for arg in node.args.args} | {
                    arg.arg for arg in node.args.kwonlyargs
                }
                if "config" not in arg_names:
                    continue
                reads = {
                    sub.attr
                    for sub in ast.walk(node)
                    if isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "config"
                }
                for param in required:
                    if param not in reads:
                        yield self.finding(
                            module,
                            node,
                            f"EngineConfig field '{param}' is consumed by "
                            f"the '{method}' engine but never read back "
                            f"by {_RESTORE_FUNC}(); restored engines would "
                            f"silently rebuild with the default",
                        )
