"""Rule ``config-persistence-drift`` — saved configs must round-trip.

The exact bug class this rule encodes shipped silently once already: PR 5
added ``EngineConfig.build_workers``, and until it was explicitly threaded
through ``persistence.py:save_engine`` and
``CholInvEffectiveResistance.from_state``, engines restored from disk
quietly rebuilt with the default worker count.  Nothing crashed — the
field just evaporated across a save/load cycle.

The rule cross-checks three structures, wherever they live in the project:

* the ``EngineConfig`` dataclass — the set of declared field names;
* the ``register_engine("cholinv", params=(...))`` registration — the
  subset of fields the persisted (Alg. 3) engine actually consumes;
* ``save_engine`` — the keywords of the ``EngineConfig(...)`` call it
  builds the on-disk config from — and ``from_state`` — the
  ``config.<field>`` attributes it reads back.

Every cholinv param must be written by ``save_engine`` and read by
``from_state``; any keyword ``save_engine`` passes that is not a declared
field (a typo that ``from_dict`` would silently drop) is flagged too.
The executable twin of this rule is the save/load field-equality test in
``tests/test_persistence_drift.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ModuleInfo, Project, Rule, register_rule

_CONFIG_CLASS = "EngineConfig"
_PERSISTED_METHOD = "cholinv"
_SAVE_FUNC = "save_engine"
_RESTORE_FUNC = "from_state"
_REGISTRAR = "register_engine"


def _terminal_name(func: ast.expr) -> "str | None":
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _config_fields(project: Project) -> "set[str]":
    """Field names of the (single) ``EngineConfig`` dataclass, if any."""
    fields: "set[str]" = set()
    for module in project:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == _CONFIG_CLASS:
                for statement in node.body:
                    if isinstance(statement, ast.AnnAssign) and isinstance(
                        statement.target, ast.Name
                    ):
                        fields.add(statement.target.id)
    return fields


def _persisted_params(project: Project) -> "set[str]":
    """Params declared by ``register_engine("cholinv", params=(...))``."""
    params: "set[str]" = set()
    for module in project:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and _terminal_name(node.func) == _REGISTRAR
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == _PERSISTED_METHOD
            ):
                continue
            for keyword in node.keywords:
                if keyword.arg == "params" and isinstance(
                    keyword.value, (ast.Tuple, ast.List)
                ):
                    for element in keyword.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            params.add(element.value)
    return params


@register_rule
class ConfigPersistenceDriftRule(Rule):
    rule_id = "config-persistence-drift"
    severity = "error"
    description = (
        "every EngineConfig field the persisted engine consumes must be "
        "written by save_engine and read back by from_state"
    )

    def check_project(self, project: Project) -> "Iterable[Finding]":
        fields = _config_fields(project)
        params = _persisted_params(project)
        if not fields or not params:
            return ()  # nothing persistable in this tree
        required = sorted(params - {"method"})
        findings: "list[Finding]" = []
        for module in project:
            findings.extend(self._check_save(module, required, fields))
            findings.extend(self._check_restore(module, required))
        return findings

    def _check_save(
        self, module: ModuleInfo, required: "list[str]", fields: "set[str]"
    ) -> "Iterable[Finding]":
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == _SAVE_FUNC
            ):
                continue
            calls = [
                call
                for call in ast.walk(node)
                if isinstance(call, ast.Call)
                and _terminal_name(call.func) == _CONFIG_CLASS
            ]
            for call in calls:
                if any(keyword.arg is None for keyword in call.keywords):
                    continue  # **kwargs: opaque to static analysis
                written = {
                    keyword.arg for keyword in call.keywords
                    if keyword.arg is not None
                }
                for param in required:
                    if param not in written:
                        yield self.finding(
                            module,
                            call,
                            f"EngineConfig field '{param}' is consumed by "
                            f"the '{_PERSISTED_METHOD}' engine but not "
                            f"written by {_SAVE_FUNC}(); saved engines "
                            f"would silently lose it",
                        )
                for name in sorted(written - fields - {"method"}):
                    yield self.finding(
                        module,
                        call,
                        f"{_SAVE_FUNC}() passes keyword '{name}' which is "
                        f"not an EngineConfig field (typo? from_dict would "
                        f"silently drop it)",
                    )

    def _check_restore(
        self, module: ModuleInfo, required: "list[str]"
    ) -> "Iterable[Finding]":
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == _RESTORE_FUNC
            ):
                continue
            arg_names = {arg.arg for arg in node.args.args} | {
                arg.arg for arg in node.args.kwonlyargs
            }
            if "config" not in arg_names:
                continue
            reads = {
                sub.attr
                for sub in ast.walk(node)
                if isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "config"
            }
            for param in required:
                if param not in reads:
                    yield self.finding(
                        module,
                        node,
                        f"EngineConfig field '{param}' is consumed by the "
                        f"'{_PERSISTED_METHOD}' engine but never read back "
                        f"by {_RESTORE_FUNC}(); restored engines would "
                        f"silently rebuild with the default",
                    )
