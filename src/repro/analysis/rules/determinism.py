"""Rule ``determinism`` — no unseeded randomness, no wall-clock in builds.

The repository's strongest guarantee is that engine builds are pure
functions of (graph, config): the blocked Alg. 2 kernel is bit-identical
at any worker count, sharded builds are bit-identical to serial ones, and
persistence round-trips bit-exactly.  Two things would quietly break that:

* **unseeded randomness** — every stochastic component must thread a
  seed/`numpy.random.Generator` through
  :func:`repro.utils.rng.ensure_rng`.  The rule flags the legacy
  global-state ``np.random.*`` API (``rand``, ``seed``, ``shuffle``, …),
  ``np.random.default_rng()`` called with no argument (or a literal
  ``None``), and any use of the stdlib ``random`` module;
* **wall-clock reads in the build path** — ``time.time()`` in the
  ``core``/``cholesky``/``linalg``/``partition`` layers (where its value
  could leak into thresholds or tie-breaking).  ``time.perf_counter()``
  stays legal everywhere: it only ever feeds timers.

``np.random.default_rng(seed)`` with a *variable* argument is accepted —
whether that variable may be ``None`` is the caller's explicit,
documented choice (see :func:`repro.utils.rng.ensure_rng`).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ModuleInfo, Rule, register_rule

#: Legacy global-state numpy RNG entry points (non-exhaustive on purpose:
#: these are the ones that mutate or read the hidden global state).
_LEGACY_NP_RANDOM = {
    "beta", "binomial", "choice", "exponential", "gamma", "normal",
    "permutation", "poisson", "rand", "randint", "randn", "random",
    "random_sample", "seed", "shuffle", "standard_normal", "uniform",
}

#: Directory components that form the deterministic build path.
_BUILD_DIRS = {"core", "cholesky", "linalg", "partition"}


def _numpy_aliases(tree: ast.Module) -> "set[str]":
    """Names the ``numpy`` module is bound to in this file."""
    aliases: "set[str]" = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _stdlib_random_aliases(tree: ast.Module) -> "set[str]":
    aliases: "set[str]" = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
    return aliases


def _time_names(tree: ast.Module) -> "tuple[set[str], set[str]]":
    """``(module_aliases, bare_names)`` under which ``time.time`` is visible."""
    modules: "set[str]" = set()
    bare: "set[str]" = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    modules.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    bare.add(alias.asname or "time")
    return modules, bare


@register_rule
class DeterminismRule(Rule):
    rule_id = "determinism"
    severity = "error"
    description = (
        "no unseeded/global-state RNG anywhere; no time.time() in the "
        "build-path layers"
    )

    def check_module(self, module: ModuleInfo) -> "Iterable[Finding]":
        findings: "list[Finding]" = []
        np_aliases = _numpy_aliases(module.tree)
        random_aliases = _stdlib_random_aliases(module.tree)
        in_build_path = any(
            part in _BUILD_DIRS for part in module.dotted_parts[:-1]
        )
        time_modules, time_bare = (
            _time_names(module.tree) if in_build_path else (set(), set())
        )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                findings.append(
                    self.finding(
                        module,
                        node,
                        "stdlib 'random' is global-state and unseeded by "
                        "default; use a numpy Generator threaded through "
                        "repro.utils.rng.ensure_rng",
                    )
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # random.<anything>(...) on the stdlib module
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in random_aliases
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"stdlib 'random.{func.attr}()' is global-state and "
                        f"unseeded by default; use a numpy Generator "
                        f"threaded through repro.utils.rng.ensure_rng",
                    )
                )
                continue
            # np.random.<legacy>(...) and np.random.default_rng()
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in np_aliases
            ):
                if func.attr in _LEGACY_NP_RANDOM:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"legacy global-state 'np.random.{func.attr}()' "
                            f"is unseeded; use a Generator from "
                            f"repro.utils.rng.ensure_rng",
                        )
                    )
                elif func.attr == "default_rng" and not node.keywords:
                    unseeded = not node.args or (
                        isinstance(node.args[0], ast.Constant)
                        and node.args[0].value is None
                    )
                    if unseeded:
                        findings.append(
                            self.finding(
                                module,
                                node,
                                "np.random.default_rng() without an explicit "
                                "seed draws OS entropy; thread a "
                                "seed/Generator argument through instead",
                            )
                        )
                continue
            # time.time() in the build path
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id in time_modules
            ) or (isinstance(func, ast.Name) and func.id in time_bare):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "time.time() in a build-path module can leak "
                        "wall-clock into deterministic builds; use "
                        "time.perf_counter() for timing",
                    )
                )
        return findings
