"""Rule ``executor-escape`` — worker payloads must not mutate shared
state outside a lock.

Every callable handed to a pool (``ThreadedExecutor.map``,
``pool.submit``, ``warm_up``'s build fan-out, the async batcher's
``threading.Thread``) runs on another thread, concurrently with its
submitter and with its sibling workers.  A payload that closes over
mutable shared state — ``self`` attributes, lists/dicts from the
enclosing frame — and mutates it without a lock is a data race the GIL
merely makes *rare*; and the ROADMAP's ``ProcessExecutor`` will make
the same payloads cross a pickle boundary, where the mutation silently
stops propagating at all.  This pass is written against the project
model so the later process-backed variant can reuse the same payload
resolution to gate picklability/mmap-backing.

Detection: a *submission site* is ``<receiver>.submit(...)`` /
``<receiver>.map(...)`` where the receiver's text mentions ``pool`` /
``executor`` / ``worker``, or ``threading.Thread(target=...)``.  The
payload (lambda, nested ``def``, module function or ``self.method``,
expanded transitively through same-class ``self.*()`` calls) is then
scanned for unlocked mutations of:

* ``self.X`` slots that are not lock-guarded anywhere in the class
  (model ``guarded_attrs``, MRO-wide) — unlocked writes to *guarded*
  slots are already ``lock-discipline``/``atomicity`` territory;
* mutator-method calls (``append``/``update``/``pop``/…) on such slots;
* names closed over from the enclosing frame (anything mutated that is
  neither a payload local nor ``self``).

Payloads that are *designed* to write disjoint slices of a shared array
(level-chunked Alg. 2, per-subbatch scatter into a result vector) carry
a reasoned ``# repro: ignore[executor-escape]`` on the mutation line —
the comment is the documentation that the disjointness argument exists.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.framework import Finding, ModuleInfo, Project, Rule, register_rule
from repro.analysis.model import (
    FunctionInfo,
    ProjectModel,
    build_model,
    is_lockish,
    self_attr_root,
    write_targets,
)

_SUBMITTISH = re.compile(r"pool|executor|worker", re.IGNORECASE)

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "add", "update",
        "pop", "popleft", "popitem", "clear", "remove", "discard",
        "setdefault", "sort", "reverse", "write",
    }
)


@dataclass(frozen=True)
class _Body:
    """One resolved payload body to scan (possibly a transitive method)."""

    stmts: "tuple[ast.AST, ...]"
    module: ModuleInfo
    self_name: "str | None"
    class_qual: "str | None"
    desc: str  #: how the payload was named at the submission site


def _root_name(expr: ast.expr) -> "str | None":
    """Leftmost ``Name`` of an attribute/subscript chain, else ``None``."""
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _enclosing_self(fn: FunctionInfo) -> "str | None":
    if fn.owner_class is not None and fn.node.args.args:
        return fn.node.args.args[0].arg
    return None


def _submission_payload(call: ast.Call) -> "tuple[ast.expr, str] | None":
    """The submitted callable of a pool/thread submission site, if any."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in ("submit", "map"):
        try:
            receiver_text = ast.unparse(func.value)
        except Exception:  # pragma: no cover - unparse is total here
            return None
        if _SUBMITTISH.search(receiver_text) and call.args:
            return call.args[0], f".{func.attr}()"
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name == "Thread":
        for keyword in call.keywords:
            if keyword.arg == "target":
                return keyword.value, "Thread(target=...)"
    return None


def _collect_locals(stmts: "tuple[ast.AST, ...]") -> "set[str]":
    """Names bound inside the payload body (stores, loop/with targets)."""
    out: "set[str]" = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                out.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.add(node.name)
    return out


def _callable_locals(
    node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda",
) -> "set[str]":
    args = node.args
    out = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
    if args.vararg is not None:
        out.add(args.vararg.arg)
    if args.kwarg is not None:
        out.add(args.kwarg.arg)
    return out


@register_rule
class ExecutorEscapeRule(Rule):
    rule_id = "executor-escape"
    severity = "error"
    description = (
        "callables handed to executor/pool workers must not mutate "
        "shared state outside a lock"
    )

    def check_project(self, project: Project) -> "Iterable[Finding]":
        model = build_model(project)
        findings: "list[Finding]" = []
        for qual in sorted(model.functions):
            fn = model.functions[qual]
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                payload = _submission_payload(node)
                if payload is None:
                    continue
                expr, how = payload
                findings.extend(self._check_payload(model, fn, expr, how))
        return findings

    # ------------------------------------------------------------------
    def _resolve_payload(
        self, model: ProjectModel, fn: FunctionInfo, expr: ast.expr
    ) -> "list[_Body]":
        if isinstance(expr, ast.Lambda):
            return [
                _Body(
                    (expr.body,),
                    fn.module,
                    _enclosing_self(fn),
                    fn.owner_class,
                    "lambda",
                )
            ]
        if isinstance(expr, ast.Name):
            for node in ast.walk(fn.node):  # nested def in the submitter
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == expr.id
                ):
                    return [
                        _Body(
                            tuple(node.body),
                            fn.module,
                            _enclosing_self(fn),
                            fn.owner_class,
                            f"'{expr.id}'",
                        )
                    ]
            resolved = model.resolve_name(fn.module, expr.id)
            if resolved is not None and resolved in model.functions:
                target = model.functions[resolved]
                return [
                    _Body(
                        tuple(target.node.body),
                        target.module,
                        None,
                        None,
                        f"'{expr.id}'",
                    )
                ]
            return []
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and fn.owner_class is not None
            and expr.value.id == _enclosing_self(fn)
        ):
            out: "list[_Body]" = []
            for target in model.resolve_method(fn.owner_class, expr.attr):
                self_name = (
                    target.node.args.args[0].arg
                    if target.node.args.args
                    else None
                )
                out.append(
                    _Body(
                        tuple(target.node.body),
                        target.module,
                        self_name,
                        target.owner_class,
                        f"'self.{expr.attr}'",
                    )
                )
            return out
        return []  # data arguments, partials, etc. — not resolvable

    def _check_payload(
        self,
        model: ProjectModel,
        fn: FunctionInfo,
        expr: ast.expr,
        how: str,
    ) -> "Iterable[Finding]":
        findings: "list[Finding]" = []
        queue = self._resolve_payload(model, fn, expr)
        seen: "set[int]" = {id(body.stmts[0]) for body in queue if body.stmts}
        while queue:
            body = queue.pop(0)
            more = self._scan_body(model, fn, body, how, findings)
            for extra in more:
                if extra.stmts and id(extra.stmts[0]) not in seen:
                    seen.add(id(extra.stmts[0]))
                    queue.append(extra)
        return findings

    def _scan_body(
        self,
        model: ProjectModel,
        submitter: FunctionInfo,
        body: _Body,
        how: str,
        findings: "list[Finding]",
    ) -> "list[_Body]":
        guarded = (
            model.guarded_attrs(body.class_qual)
            if body.class_qual is not None
            else frozenset()
        )
        locals_ = _collect_locals(body.stmts)
        expansions: "list[_Body]" = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                self.finding(
                    body.module,
                    node,
                    f"worker payload {body.desc} (submitted via {how} in "
                    f"'{submitter.qualname}') {what} outside any lock — "
                    f"shared state escapes the executor boundary",
                )
            )

        def visit(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inside = locked or any(
                    is_lockish(item.context_expr) for item in node.items
                )
                for item in node.items:
                    visit(item.context_expr, locked)
                for child in node.body:
                    visit(child, inside)
                return
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                return  # a further deferred scope: out of this payload
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for target in write_targets(node):
                    self._judge_target(
                        node, target, body, guarded, locals_, locked, flag
                    )
            if isinstance(node, ast.Call):
                self._judge_call(
                    model, node, body, guarded, locals_, locked, flag, expansions
                )
            for child in ast.iter_child_nodes(node):
                visit(child, locked)

        for stmt in body.stmts:
            visit(stmt, False)
        return expansions

    def _judge_target(
        self,
        stmt: ast.AST,
        target: ast.expr,
        body: _Body,
        guarded: "frozenset[str]",
        locals_: "set[str]",
        locked: bool,
        flag: "Callable[[ast.AST, str], None]",
    ) -> None:
        if body.self_name is not None:
            attr = self_attr_root(target, body.self_name)
            if attr is not None:
                if not locked and attr not in guarded:
                    flag(stmt, f"writes 'self.{attr}'")
                return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if (
                root is not None
                and root != body.self_name
                and root not in locals_
                and not locked
            ):
                flag(stmt, f"mutates closed-over '{root}'")

    def _judge_call(
        self,
        model: ProjectModel,
        call: ast.Call,
        body: _Body,
        guarded: "frozenset[str]",
        locals_: "set[str]",
        locked: bool,
        flag: "Callable[[ast.AST, str], None]",
        expansions: "list[_Body]",
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        # transitive expansion: self.method() stays on the worker thread
        if (
            body.self_name is not None
            and body.class_qual is not None
            and isinstance(func.value, ast.Name)
            and func.value.id == body.self_name
        ):
            for target in model.resolve_method(body.class_qual, func.attr):
                self_name = (
                    target.node.args.args[0].arg
                    if target.node.args.args
                    else None
                )
                expansions.append(
                    _Body(
                        tuple(target.node.body),
                        target.module,
                        self_name,
                        target.owner_class,
                        body.desc,
                    )
                )
            return
        if func.attr not in _MUTATORS:
            return
        receiver = func.value
        if body.self_name is not None:
            attr = self_attr_root(receiver, body.self_name)
            if attr is not None:
                if not locked and attr not in guarded:
                    flag(call, f"calls 'self.{attr}.{func.attr}()'")
                return
        root = _root_name(receiver)
        if (
            root is not None
            and root != body.self_name
            and root not in locals_
            and not locked
        ):
            flag(call, f"calls a mutator '.{func.attr}()' on closed-over '{root}'")
