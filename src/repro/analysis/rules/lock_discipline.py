"""Rule ``lock-discipline`` — once locked, always locked.

The concurrent layers (``core/sharded.py``, ``service/resistance_service.py``,
``service/async_service.py``) follow one convention: instance state that is
ever mutated under a lock is *only* mutated under a lock.  PR 4's epoch
fencing and PR 5's per-shard build locks both depend on it, and the
ROADMAP's ``ProcessExecutor`` work will touch exactly this code — so the
convention is enforced structurally:

    for every class, any attribute assigned (``self.x = …``,
    ``self.x[i] = …``, ``self.x += …``) inside a ``with`` block whose
    context manager looks like a lock must never be assigned outside such
    a block in the same class — except in ``__init__``, where the object
    is not yet shared.

"Looks like a lock" means the ``with`` expression is a name, attribute or
subscript whose final identifier contains ``lock``, ``mutex``, ``guard``
or ``cond`` (case-insensitive): ``with self._lock:``, ``with
self._locks_guard:``, ``with lock:`` (a lock pulled out of a dict),
``with self._locks[c]:``, ``with self._cond:``.
Constructor *helpers* (e.g. a ``_init_state`` called only from
``__init__``) are not recognised — mark those lines with
``# repro: ignore[lock-discipline]`` and a reason, which is exactly the
kind of load-bearing comment the convention wants written down.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.framework import Finding, ModuleInfo, Rule, register_rule

_LOCKISH = re.compile(r"lock|mutex|guard|cond", re.IGNORECASE)


def _is_lockish(expr: ast.expr) -> bool:
    """Whether a ``with`` context expression looks like a lock object."""
    if isinstance(expr, ast.Name):
        return bool(_LOCKISH.search(expr.id))
    if isinstance(expr, ast.Attribute):
        return bool(_LOCKISH.search(expr.attr))
    if isinstance(expr, ast.Subscript):
        # ``with self._locks[c]:`` — the container name carries the intent
        return _is_lockish(expr.value)
    return False


def _self_attr_root(target: ast.expr, self_name: str) -> "str | None":
    """Root attribute of a ``self``-rooted write target, else ``None``.

    ``self.stats.queries += 1`` and ``self._engines[c] = e`` both resolve
    to their root attribute (``stats`` / ``_engines``): what the lock
    protects is the instance slot, however deep the mutation goes.
    """
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
        ):
            return node.attr
        node = node.value
    return None


def _write_targets(node: ast.stmt) -> "Iterator[ast.expr]":
    """Assignment targets of a statement (flattening tuple unpacking)."""
    targets: "list[ast.expr]" = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from target.elts
        else:
            yield target


class _Write:
    """One attribute write inside a method, with its lock context."""

    def __init__(
        self, attr: str, method: str, node: ast.stmt, locked: bool
    ) -> None:
        self.attr = attr
        self.method = method
        self.node = node
        self.locked = locked


def _collect_writes(
    method: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> "list[_Write]":
    """Every ``self.X``-rooted write in ``method`` with its lock depth."""
    if not method.args.args:
        return []
    self_name = method.args.args[0].arg
    writes: "list[_Write]" = []

    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inside = locked or any(
                _is_lockish(item.context_expr) for item in node.items
            )
            for child in node.body:
                visit(child, inside)
            return
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            return  # nested scope: its own receiver, its own discipline
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            for target in _write_targets(node):
                attr = _self_attr_root(target, self_name)
                if attr is not None:
                    writes.append(_Write(attr, method.name, node, locked))
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    for statement in method.body:
        visit(statement, False)
    return writes


@register_rule
class LockDisciplineRule(Rule):
    rule_id = "lock-discipline"
    severity = "error"
    description = (
        "attributes ever written under a lock must always be written "
        "under one (outside __init__)"
    )

    def check_module(self, module: ModuleInfo) -> "Iterable[Finding]":
        findings: "list[Finding]" = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            writes: "list[_Write]" = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    writes.extend(_collect_writes(item))
            guarded = {w.attr for w in writes if w.locked}
            for write in writes:
                if (
                    write.attr in guarded
                    and not write.locked
                    and write.method != "__init__"
                ):
                    findings.append(
                        self.finding(
                            module,
                            write.node,
                            f"attribute 'self.{write.attr}' is written under "
                            f"a lock elsewhere in class '{node.name}' but "
                            f"method '{write.method}' writes it without "
                            f"holding one",
                        )
                    )
        return findings
