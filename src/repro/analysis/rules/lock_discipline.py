"""Rule ``lock-discipline`` — once locked, always locked.

The concurrent layers (``core/sharded.py``, ``service/resistance_service.py``,
``service/async_service.py``) follow one convention: instance state that is
ever mutated under a lock is *only* mutated under a lock.  PR 4's epoch
fencing and PR 5's per-shard build locks both depend on it, and the
ROADMAP's ``ProcessExecutor`` work will touch exactly this code — so the
convention is enforced structurally:

    for every class, any attribute assigned (``self.x = …``,
    ``self.x[i] = …``, ``self.x += …``) inside a ``with`` block whose
    context manager looks like a lock must never be assigned outside such
    a block in the same class — except in ``__init__``, where the object
    is not yet shared.

"Looks like a lock" means the ``with`` expression is a name, attribute or
subscript whose final identifier contains ``lock``, ``mutex``, ``guard``
or ``cond`` (case-insensitive): ``with self._lock:``, ``with
self._locks_guard:``, ``with lock:`` (a lock pulled out of a dict),
``with self._locks[c]:``, ``with self._cond:``.
Constructor *helpers* (e.g. a ``_init_state`` called only from
``__init__``) are not recognised — mark those lines with
``# repro: ignore[lock-discipline]`` and a reason, which is exactly the
kind of load-bearing comment the convention wants written down.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ModuleInfo, Rule, register_rule
from repro.analysis.model import SelfAccess, scan_self_accesses


@register_rule
class LockDisciplineRule(Rule):
    rule_id = "lock-discipline"
    severity = "error"
    description = (
        "attributes ever written under a lock must always be written "
        "under one (outside __init__)"
    )

    def check_module(self, module: ModuleInfo) -> "Iterable[Finding]":
        findings: "list[Finding]" = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            writes: "list[SelfAccess]" = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    writes.extend(scan_self_accesses(item)[0])
            guarded = {w.attr for w in writes if w.locked}
            for write in writes:
                if (
                    write.attr in guarded
                    and not write.locked
                    and write.method != "__init__"
                ):
                    findings.append(
                        self.finding(
                            module,
                            write.node,
                            f"attribute 'self.{write.attr}' is written under "
                            f"a lock elsewhere in class '{node.name}' but "
                            f"method '{write.method}' writes it without "
                            f"holding one",
                        )
                    )
        return findings
