"""Rule ``lock-order`` — the lock acquisition graph must stay acyclic.

Two threads that take the same pair of locks in opposite orders can each
end up holding the lock the other wants: a deadlock that no unit test
reliably reproduces.  The project model records, for every function, the
locks held at every acquisition and at every (CHA-resolved) call — so
the whole-project acquisition graph is cheap to assemble
(:func:`repro.analysis.lockgraph.build_lock_graph`) and a cycle in it is
a structural proof of a *possible* deadlock, reported as an error.

The graph itself exports as DOT/JSON from the CLI
(``--lock-graph-dot`` / ``--lock-graph-json``); CI uploads both as a
build artifact so every PR ships a picture of its locking structure.

There is no meaningful inline suppression for a cycle (it spans files);
break the cycle instead, by reordering acquisitions or narrowing the
critical section.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.framework import Finding, Project, Rule, register_rule
from repro.analysis.lockgraph import build_lock_graph, cycle_findings
from repro.analysis.model import build_model


@register_rule
class LockOrderRule(Rule):
    rule_id = "lock-order"
    severity = "error"
    description = (
        "no two locks may ever be acquired in opposite orders "
        "(acquisition graph cycles are potential deadlocks)"
    )

    def check_project(self, project: Project) -> "Iterable[Finding]":
        graph = build_lock_graph(build_model(project))
        return cycle_findings(graph, self.rule_id)
