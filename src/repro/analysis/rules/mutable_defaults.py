"""Rule ``mutable-default-args`` — no shared mutable default values.

A default like ``def f(cache={})`` is evaluated once at definition time
and shared by every call — state leaks across calls (and across *threads*,
which is what makes this more than a style nit in a serving stack).  The
rule flags literal list/dict/set displays and calls to the common mutable
constructors (``list``, ``dict``, ``set``, ``OrderedDict``,
``defaultdict``, ``deque``, ``Counter``) used as parameter defaults.

The fix is the standard idiom: default to ``None`` and materialise inside
the function body.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.framework import Finding, ModuleInfo, Rule, register_rule

_MUTABLE_CONSTRUCTORS = {
    "Counter", "OrderedDict", "defaultdict", "deque", "dict", "list", "set",
}


def _describe(default: ast.expr) -> "str | None":
    if isinstance(default, ast.List):
        return "list literal"
    if isinstance(default, ast.Dict):
        return "dict literal"
    if isinstance(default, ast.Set):
        return "set literal"
    if isinstance(default, ast.Call):
        func = default.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _MUTABLE_CONSTRUCTORS:
            return f"{name}() call"
    return None


def _defaults(
    node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda",
) -> "Iterator[ast.expr]":
    yield from node.args.defaults
    for default in node.args.kw_defaults:
        if default is not None:
            yield default


@register_rule
class MutableDefaultArgsRule(Rule):
    rule_id = "mutable-default-args"
    severity = "error"
    description = "no mutable values as function parameter defaults"

    def check_module(self, module: ModuleInfo) -> "Iterable[Finding]":
        findings: "list[Finding]" = []
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            name = getattr(node, "name", "<lambda>")
            for default in _defaults(node):
                label = _describe(default)
                if label is not None:
                    findings.append(
                        self.finding(
                            module,
                            default,
                            f"parameter default of '{name}' is a mutable "
                            f"{label}, evaluated once and shared across "
                            f"calls (and threads); default to None and "
                            f"materialise inside the body",
                        )
                    )
        return findings
