"""Rule ``registry-purity`` — engines are built through the registry.

PR 3 unified every solver behind :func:`repro.core.engine.build_engine`:
the factory is where ``EngineConfig`` defaults are resolved, where
``config.sharded`` wraps the method in a :class:`ShardedEngine`, and where
the ``config`` attribute that persistence and the serving layer rely on is
attached.  An engine class instantiated directly skips all of that — the
resulting object has no config, cannot be refreshed by a service, and
silently bypasses sharding.  (The two pre-rule offenders were
``core/error_bounds.py`` and ``core/resistance_matrix.py``, fixed in the
same PR that added this rule.)

The rule finds every engine class in the project — a class decorated with
``register_engine(...)`` or whose bases name ``ResistanceEngine`` — and
flags any call to such a class outside the module that defines
``build_engine`` (the factory is the one legitimate construction site;
tests are simply not part of the scanned tree).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, Project, Rule, register_rule

_BASE_CLASS = "ResistanceEngine"
_FACTORY = "build_engine"
_REGISTRAR = "register_engine"


def _call_name(func: ast.expr) -> "str | None":
    """Terminal identifier of a call target (``X(...)`` / ``m.X(...)``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_engine_class(node: ast.ClassDef) -> bool:
    if node.name == _BASE_CLASS:
        return False
    for base in node.bases:
        if _call_name(base) == _BASE_CLASS:
            return True
    for decorator in node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and _call_name(decorator.func) == _REGISTRAR
        ):
            return True
    return False


@register_rule
class RegistryPurityRule(Rule):
    rule_id = "registry-purity"
    severity = "error"
    description = (
        "engine classes are only instantiated by the build_engine factory"
    )

    def check_project(self, project: Project) -> "Iterable[Finding]":
        engine_classes: "set[str]" = set()
        factory_modules: "set[str]" = set()
        for module in project:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and _is_engine_class(node):
                    engine_classes.add(node.name)
                elif (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == _FACTORY
                ):
                    factory_modules.add(module.rel)
        if not engine_classes:
            return ()
        findings: "list[Finding]" = []
        for module in project:
            if module.rel in factory_modules:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node.func)
                if name in engine_classes:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"engine class '{name}' is instantiated directly; "
                            f"construct engines through {_FACTORY}() so the "
                            f"registry attaches config and handles "
                            f"sharding/persistence uniformly",
                        )
                    )
        return findings
