"""Application flows of the paper's evaluation (Table II).

* :mod:`repro.apps.transient_flow` — power-grid reduction followed by
  1000-step transient analysis; errors measured at port nodes against the
  unreduced grid (Table II upper half, Fig. 1 waveforms);
* :mod:`repro.apps.incremental` — DC incremental analysis: a design change
  touches ~10% of the blocks, only those are re-reduced, and the reduced
  model is re-solved (Table II lower half).
"""

from repro.apps.incremental import (
    IncrementalOutcome,
    perturb_blocks,
    run_incremental_flow,
)
from repro.apps.transient_flow import TransientOutcome, run_transient_flow

__all__ = [
    "run_transient_flow",
    "TransientOutcome",
    "run_incremental_flow",
    "IncrementalOutcome",
    "perturb_blocks",
]
