"""DC incremental-analysis application flow (Table II lower half).

The design scenario of Section IV-B: a power-grid designer fixes IR-drop
violations by editing a small region of the grid — here, 10% of the blocks
get their wire resistances and load currents perturbed.  Because Alg. 1 is
block-local, only the modified blocks need re-reduction:

* ``Tred``  — time to re-reduce the modified blocks and re-stitch;
* ``Tinc``  — time to DC-solve the reduced model;
* ``Err`` / ``Rel`` — port-voltage error of the reduced solve against a
  direct DC solve of the modified original grid.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.powergrid.dc import dc_analysis, max_voltage_drop
from repro.powergrid.netlist import PowerGrid
from repro.reduction.pipeline import PGReducer, ReducedGrid, ReductionConfig
from repro.utils.rng import ensure_rng
from repro.utils.timing import timed
from repro.utils.validation import require


def perturb_blocks(
    grid: PowerGrid,
    labels: np.ndarray,
    block_ids,
    resistance_span: "tuple[float, float]" = (0.6, 1.6),
    load_span: "tuple[float, float]" = (0.8, 1.25),
    seed=None,
) -> PowerGrid:
    """Return a copy of ``grid`` with the chosen blocks modified.

    Resistors whose *both* endpoints lie in a modified block are scaled by
    a random factor in ``resistance_span``; current loads inside modified
    blocks are scaled by ``load_span``.  Topology (and therefore the
    partition and node roles) is unchanged — exactly the setting in which
    incremental reduction applies.
    """
    rng = ensure_rng(seed)
    modified = copy.deepcopy(grid)
    chosen = set(int(b) for b in block_ids)
    for i, (a, b) in enumerate(zip(modified.res_a, modified.res_b)):
        if int(labels[a]) in chosen and int(labels[b]) in chosen:
            modified.res_ohms[i] *= float(rng.uniform(*resistance_span))
    for source in modified.isources:
        if int(labels[source.node]) in chosen:
            source.dc *= float(rng.uniform(*load_span))
    return modified


@dataclass
class IncrementalOutcome:
    """Everything Table II (lower) reports for one (case, method) cell."""

    reduced: ReducedGrid
    modified_blocks: np.ndarray
    time_incremental_reduction: float
    time_reduced_solve: float
    time_original_solve: float
    err_volts: float
    rel_error: float

    @property
    def err_mv(self) -> float:
        """``Err`` in millivolts."""
        return self.err_volts * 1e3

    @property
    def rel_pct(self) -> float:
        """``Rel`` in percent."""
        return self.rel_error * 1e2

    @property
    def total_time(self) -> float:
        """Incremental reduction + reduced solve."""
        return self.time_incremental_reduction + self.time_reduced_solve


def run_incremental_flow(
    grid: PowerGrid,
    config: "ReductionConfig | None" = None,
    modified_fraction: float = 0.1,
    seed=0,
    base_reducer: "PGReducer | None" = None,
) -> IncrementalOutcome:
    """Run the Table II (lower) protocol for one method.

    Steps: reduce the pristine grid once (warm cache), perturb ~10% of the
    blocks, re-reduce only those, re-stitch, DC-solve the reduced model,
    and compare against a direct DC solve of the modified grid.
    """
    require(0 < modified_fraction <= 1.0, "modified_fraction in (0, 1]")
    rng = ensure_rng(seed)
    if base_reducer is None:
        base_reducer = PGReducer(grid, config or ReductionConfig())
        base_reducer.reduce()  # populate the block cache

    num_blocks = base_reducer.num_blocks
    count = max(1, int(round(modified_fraction * num_blocks)))
    modified_blocks = np.sort(rng.choice(num_blocks, size=count, replace=False))

    modified_grid = perturb_blocks(
        grid, base_reducer.labels, modified_blocks, seed=rng
    )

    with timed() as elapsed:
        incremental = base_reducer.rebuild_for(modified_grid, modified_blocks)
        reduced = incremental.reduce()
    time_red = elapsed()

    with timed() as elapsed:
        reduced_dc = dc_analysis(reduced.grid)
    time_solve = elapsed()

    with timed() as elapsed:
        original_dc = dc_analysis(modified_grid)
    time_original = elapsed()

    ports = modified_grid.port_nodes()
    errors = reduced.port_voltage_errors(
        original_dc.voltages, reduced_dc.voltages, ports
    )
    err = float(errors.mean())
    drop = max_voltage_drop(modified_grid, original_dc.voltages)
    rel = err / drop if drop > 0 else 0.0
    return IncrementalOutcome(
        reduced=reduced,
        modified_blocks=modified_blocks,
        time_incremental_reduction=time_red,
        time_reduced_solve=time_solve,
        time_original_solve=time_original,
        err_volts=err,
        rel_error=rel,
    )
