"""Incremental-analysis application flows.

Two scenarios live here:

* the Table II (lower half) power-grid protocol of Section IV-B — a
  designer fixes IR-drop violations by editing a small region of the grid;
  because Alg. 1 is block-local, only the modified blocks need re-reduction
  (:func:`run_incremental_flow`);
* an online graph-editing flow on top of
  :class:`repro.service.ResistanceService` — edge weights change (or edges
  appear), the service refreshes in place, and the flow reports refresh
  cost and post-refresh accuracy against the exact engine
  (:func:`run_edge_update_flow`).

For the power-grid flow:

* ``Tred``  — time to re-reduce the modified blocks and re-stitch;
* ``Tinc``  — time to DC-solve the reduced model;
* ``Err`` / ``Rel`` — port-voltage error of the reduced solve against a
  direct DC solve of the modified original grid.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.powergrid.dc import dc_analysis, max_voltage_drop
from repro.powergrid.netlist import PowerGrid
from repro.reduction.pipeline import PGReducer, ReducedGrid, ReductionConfig
from repro.utils.rng import ensure_rng
from repro.utils.timing import timed
from repro.utils.validation import require


def perturb_blocks(
    grid: PowerGrid,
    labels: np.ndarray,
    block_ids,
    resistance_span: "tuple[float, float]" = (0.6, 1.6),
    load_span: "tuple[float, float]" = (0.8, 1.25),
    seed=None,
) -> PowerGrid:
    """Return a copy of ``grid`` with the chosen blocks modified.

    Resistors whose *both* endpoints lie in a modified block are scaled by
    a random factor in ``resistance_span``; current loads inside modified
    blocks are scaled by ``load_span``.  Topology (and therefore the
    partition and node roles) is unchanged — exactly the setting in which
    incremental reduction applies.
    """
    rng = ensure_rng(seed)
    modified = copy.deepcopy(grid)
    chosen = set(int(b) for b in block_ids)
    for i, (a, b) in enumerate(zip(modified.res_a, modified.res_b)):
        if int(labels[a]) in chosen and int(labels[b]) in chosen:
            modified.res_ohms[i] *= float(rng.uniform(*resistance_span))
    for source in modified.isources:
        if int(labels[source.node]) in chosen:
            source.dc *= float(rng.uniform(*load_span))
    return modified


@dataclass
class IncrementalOutcome:
    """Everything Table II (lower) reports for one (case, method) cell."""

    reduced: ReducedGrid
    modified_blocks: np.ndarray
    time_incremental_reduction: float
    time_reduced_solve: float
    time_original_solve: float
    err_volts: float
    rel_error: float

    @property
    def err_mv(self) -> float:
        """``Err`` in millivolts."""
        return self.err_volts * 1e3

    @property
    def rel_pct(self) -> float:
        """``Rel`` in percent."""
        return self.rel_error * 1e2

    @property
    def total_time(self) -> float:
        """Incremental reduction + reduced solve."""
        return self.time_incremental_reduction + self.time_reduced_solve


def run_incremental_flow(
    grid: PowerGrid,
    config: "ReductionConfig | None" = None,
    modified_fraction: float = 0.1,
    seed=0,
    base_reducer: "PGReducer | None" = None,
) -> IncrementalOutcome:
    """Run the Table II (lower) protocol for one method.

    Steps: reduce the pristine grid once (warm cache), perturb ~10% of the
    blocks, re-reduce only those, re-stitch, DC-solve the reduced model,
    and compare against a direct DC solve of the modified grid.
    """
    require(0 < modified_fraction <= 1.0, "modified_fraction in (0, 1]")
    rng = ensure_rng(seed)
    if base_reducer is None:
        base_reducer = PGReducer(grid, config or ReductionConfig())
        base_reducer.reduce()  # populate the block cache

    num_blocks = base_reducer.num_blocks
    count = max(1, int(round(modified_fraction * num_blocks)))
    modified_blocks = np.sort(rng.choice(num_blocks, size=count, replace=False))

    modified_grid = perturb_blocks(
        grid, base_reducer.labels, modified_blocks, seed=rng
    )

    with timed() as elapsed:
        incremental = base_reducer.rebuild_for(modified_grid, modified_blocks)
        reduced = incremental.reduce()
    time_red = elapsed()

    with timed() as elapsed:
        reduced_dc = dc_analysis(reduced.grid)
    time_solve = elapsed()

    with timed() as elapsed:
        original_dc = dc_analysis(modified_grid)
    time_original = elapsed()

    ports = modified_grid.port_nodes()
    errors = reduced.port_voltage_errors(
        original_dc.voltages, reduced_dc.voltages, ports
    )
    err = float(errors.mean())
    drop = max_voltage_drop(modified_grid, original_dc.voltages)
    rel = err / drop if drop > 0 else 0.0
    return IncrementalOutcome(
        reduced=reduced,
        modified_blocks=modified_blocks,
        time_incremental_reduction=time_red,
        time_reduced_solve=time_solve,
        time_original_solve=time_original,
        err_volts=err,
        rel_error=rel,
    )


# ----------------------------------------------------------------------
# graph-editing flow on top of ResistanceService
# ----------------------------------------------------------------------
@dataclass
class EdgeUpdateOutcome:
    """What one service refresh after graph edits cost, and how good it is."""

    updated_graph: Graph
    refresh_seconds: float
    queries_after_refresh: int
    max_rel_error: float
    mean_rel_error: float
    invalidated_results: int


def perturb_edge_weights(
    graph: Graph,
    fraction: float = 0.1,
    span: "tuple[float, float]" = (0.5, 2.0),
    seed=None,
) -> Graph:
    """Scale a random ``fraction`` of edge weights by factors in ``span``."""
    require(0 < fraction <= 1.0, "fraction in (0, 1]")
    rng = ensure_rng(seed)
    count = max(1, int(round(fraction * graph.num_edges)))
    chosen = rng.choice(graph.num_edges, size=count, replace=False)
    weights = graph.weights.copy()
    weights[chosen] *= rng.uniform(*span, size=count)
    return graph.with_weights(weights)


def run_edge_update_flow(
    service,
    updated_graph: "Graph | None" = None,
    modified_fraction: float = 0.1,
    num_check_pairs: int = 64,
    seed=0,
) -> EdgeUpdateOutcome:
    """Edit the served graph, refresh the service, and audit the answers.

    Steps: perturb ~``modified_fraction`` of the edge weights (or take the
    caller's ``updated_graph``), call
    :meth:`~repro.service.ResistanceService.refresh_after_edge_update`,
    re-query a random pair sample, and compare against the exact engine on
    the updated graph.
    """
    from repro.core.engine import build_engine

    rng = ensure_rng(seed)
    if updated_graph is None:
        updated_graph = perturb_edge_weights(
            service.graph, fraction=modified_fraction, seed=rng
        )
    refresh = service.refresh_after_edge_update(updated_graph)

    n = updated_graph.num_nodes
    pairs = np.column_stack([
        rng.integers(0, n, size=num_check_pairs),
        rng.integers(0, n, size=num_check_pairs),
    ])
    served = service.query_pairs(pairs)
    truth = build_engine(updated_graph, "exact").query_pairs(pairs)
    finite = np.isfinite(truth) & (truth > 0)
    rel = np.abs(served[finite] - truth[finite]) / truth[finite]
    same = ~finite
    consistent = np.array_equal(np.isfinite(served[same]), np.isfinite(truth[same]))
    require(consistent, "service and exact engine disagree on connectivity")
    return EdgeUpdateOutcome(
        updated_graph=updated_graph,
        refresh_seconds=refresh.rebuild_seconds,
        queries_after_refresh=int(pairs.shape[0]),
        max_rel_error=float(rel.max()) if rel.size else 0.0,
        mean_rel_error=float(rel.mean()) if rel.size else 0.0,
        invalidated_results=refresh.invalidated_results,
    )
