"""Transient-analysis application flow (Table II upper half).

Protocol, following Section IV-B of the paper:

* reduce the power grid with Alg. 1 under a chosen effective-resistance
  backend (``Tred`` = reduction wall-clock);
* run 1000 fixed-step Backward-Euler transient steps on the original and
  on the reduced grid, factoring each matrix exactly once (``Ttr``);
* report ``Err`` — the average absolute voltage error over all ports and
  time steps (in mV) — and ``Rel`` — ``Err`` divided by the maximum
  voltage drop observed on the original grid (in %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.powergrid.dc import max_voltage_drop
from repro.powergrid.netlist import PowerGrid
from repro.powergrid.transient import TransientResult, transient_analysis
from repro.reduction.pipeline import PGReducer, ReducedGrid, ReductionConfig
from repro.utils.timing import timed

__all__ = ["TransientOutcome", "run_transient_flow", "max_voltage_drop"]


@dataclass
class TransientOutcome:
    """Everything Table II (upper) reports for one (case, method) cell."""

    reduced: ReducedGrid
    time_reduction: float
    time_transient_original: float
    time_transient_reduced: float
    err_volts: float
    rel_error: float
    original_result: TransientResult
    reduced_result: TransientResult

    @property
    def err_mv(self) -> float:
        """``Err`` in millivolts, as printed in Table II."""
        return self.err_volts * 1e3

    @property
    def rel_pct(self) -> float:
        """``Rel`` in percent, as printed in Table II."""
        return self.rel_error * 1e2

    @property
    def total_time(self) -> float:
        """Reduction + reduced-model analysis (the paper's overall time)."""
        return self.time_reduction + self.time_transient_reduced


def run_transient_flow(
    grid: PowerGrid,
    config: "ReductionConfig | None" = None,
    step: float = 1e-11,
    num_steps: int = 1000,
    reducer: "PGReducer | None" = None,
    original_result: "TransientResult | None" = None,
) -> TransientOutcome:
    """Run the full Table II (upper) protocol for one method.

    Parameters
    ----------
    grid:
        Transient-enabled power grid (caps + pulse loads).
    config:
        Reduction configuration selecting the ER backend.
    step, num_steps:
        Backward-Euler step size and count (paper: 1000 steps).
    reducer / original_result:
        Optional pre-built artefacts so benchmark loops can amortise the
        original-grid simulation across methods.
    """
    ports = grid.port_nodes()

    with timed() as elapsed:
        if reducer is None:
            reducer = PGReducer(grid, config or ReductionConfig())
        reduced = reducer.reduce()
    time_reduction = elapsed()

    if original_result is None:
        with timed() as elapsed:
            original_result = transient_analysis(
                grid, step=step, num_steps=num_steps, observe=ports
            )
        time_tr_original = elapsed()
    else:
        time_tr_original = original_result.timer.total

    reduced_ports = reduced.reduced_index_of(ports)
    with timed() as elapsed:
        reduced_result = transient_analysis(
            reduced.grid, step=step, num_steps=num_steps, observe=reduced_ports
        )
    time_tr_reduced = elapsed()

    diff = np.abs(original_result.voltages - reduced_result.voltages)
    err = float(diff.mean())
    drop = max_voltage_drop(grid, original_result.voltages)
    rel = err / drop if drop > 0 else 0.0
    return TransientOutcome(
        reduced=reduced,
        time_reduction=time_reduction,
        time_transient_original=time_tr_original,
        time_transient_reduced=time_tr_reduced,
        err_volts=err,
        rel_error=rel,
        original_result=original_result,
        reduced_result=reduced_result,
    )
