"""Comparator algorithms the paper evaluates against.

* :mod:`repro.baselines.random_projection` — the WWW'15 method [1]
  (Johnson–Lindenstrauss projection of the edge-space embedding), the main
  competitor in Table I;
* :mod:`repro.baselines.naive` — one linear solve per query without caching,
  the Ω(|E|²) strawman of Section II-B, kept for didactic benchmarks.
"""

from repro.baselines.naive import NaivePerQueryResistance
from repro.baselines.random_projection import RandomProjectionEffectiveResistance

__all__ = [
    "RandomProjectionEffectiveResistance",
    "NaivePerQueryResistance",
]
