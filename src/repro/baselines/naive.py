"""Naive per-query effective resistances (the Ω(|E|²) strawman).

Section II-B of the paper notes that answering each query ``(p, q)`` with a
fresh linear solve costs at least ``Ω(|E|)`` per query — prohibitive when
``Q_r = E``.  This class implements exactly that strategy (a fresh PCG solve
per query, no factorisation reuse) so benchmarks can demonstrate the gap the
smarter methods close.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import ResistanceEngine, as_pair_columns, register_engine
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.graphs.laplacian import grounded_laplacian
from repro.linalg.pcg import pcg
from repro.utils.timing import Timer


@register_engine("naive", params=("ground_value", "rtol"))
class NaivePerQueryResistance(ResistanceEngine):
    """One unpreconditioned CG solve per query; nothing cached but the matrix."""

    def __init__(self, graph: Graph, ground_value: "float | None" = None, rtol: float = 1e-10):
        self.graph = graph
        self.rtol = rtol
        self.timer = Timer()
        if ground_value is None:
            ground_value = float(graph.weights.mean()) if graph.num_edges else 1.0
        self.matrix, self.ground_nodes = grounded_laplacian(graph, ground_value)
        self.component_labels, _ = connected_components(graph)
        self.n = graph.num_nodes

    def query(self, p: int, q: int) -> float:
        """Effective resistance via a fresh iterative solve."""
        if self.component_labels[p] != self.component_labels[q]:
            return float("inf")
        if p == q:
            return 0.0
        rhs = np.zeros(self.n)
        rhs[p] = 1.0
        rhs[q] = -1.0
        with self.timer.section("solves"):
            result = pcg(self.matrix, rhs, rtol=self.rtol)
        return float(result.x[p] - result.x[q])

    def query_pairs(self, pairs) -> np.ndarray:
        """Loop of per-query solves (intentionally unamortised)."""
        ps, qs = as_pair_columns(pairs)
        return np.array([self.query(int(p), int(q)) for p, q in zip(ps, qs)],
                        dtype=np.float64)
