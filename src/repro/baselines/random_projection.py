"""WWW'15 random-projection effective resistances (the paper's baseline [1]).

Spielman–Srivastava (Eq. 4) write the effective resistance as a Euclidean
distance between columns of ``W^{1/2} B L_G⁺``; the Johnson–Lindenstrauss
lemma lets a random ``k × m`` sign matrix ``Q`` compress the edge dimension
(Eq. 5)::

    R(p,q) ≈ ‖ (Q W^{1/2} B L_G⁺)(e_p − e_q) ‖²,   k = O(log m)

The practical WWW'15 implementation [Mavroforakis et al.] materialises
``Y = Q W^{1/2} B`` (k dense rows, built edge-wise without storing ``Q``)
and then solves ``k`` Laplacian systems ``L_G x_i = y_i`` with the CMG
combinatorial-multigrid *PCG* solver.  Two solver substrates are offered:

* ``solver="pcg"`` (default) — Jacobi-preconditioned conjugate gradient,
  the iterative-SDD-solver stand-in for CMG (scipy's triangular solves are
  too slow for an IC-preconditioned variant to pay off — see the bench
  notes in EXPERIMENTS.md);
* ``solver="splu"`` — one SuperLU factorisation reused for all ``k``
  right-hand sides; a *stronger* substrate than the original (C-coded
  direct solves), useful to bound the baseline's best case.

The grounded solve returns the pseudo-inverse solution plus a per-row
multiple of the all-ones vector (each row of ``Y`` sums to zero); query
*differences* cancel that shift, so answers are unbiased.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from repro.core.engine import ResistanceEngine, as_pair_columns, register_engine
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.graphs.laplacian import grounded_laplacian
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import require


def default_num_projections(num_edges: int, c_jl: float = 100.0) -> int:
    """Paper-calibrated JL dimension ``k = ⌈c·ln m⌉``.

    Table I reports ``nnz(Q)/(n log n)`` around 100–340 for the baseline,
    i.e. ``k ≈ 100·ln n`` — accuracy near 2% then follows from the JL
    variance ``√(2/k)``.  ``c_jl`` scales the same trade-off here.
    """
    return max(1, int(np.ceil(c_jl * np.log(max(num_edges, 2)))))


@register_engine(
    "random_projection",
    params=("num_projections", "c_jl", "ground_value", "solver",
            "pcg_rtol", "seed"),
)
class RandomProjectionEffectiveResistance(ResistanceEngine):
    """The WWW'15 baseline: project the edge embedding, solve ``k`` systems.

    Parameters
    ----------
    graph:
        Weighted undirected graph.
    num_projections:
        JL dimension ``k``; default ``⌈c_jl · ln m⌉``.
    c_jl:
        Scale constant used when ``num_projections`` is not given.
    ground_value:
        Grounding conductance for the Laplacian solves.
    seed:
        RNG seed for the sign matrix.
    """

    def __init__(
        self,
        graph: Graph,
        num_projections: "int | None" = None,
        c_jl: float = 100.0,
        ground_value: "float | None" = None,
        solver: str = "pcg",
        pcg_rtol: float = 1e-6,
        seed=None,
    ):
        self.graph = graph
        self.timer = Timer()
        rng = ensure_rng(seed)
        m, n = graph.num_edges, graph.num_nodes
        require(m > 0, "graph must have at least one edge")
        require(solver in ("pcg", "splu"), f"unknown solver {solver!r}")
        if num_projections is None:
            num_projections = default_num_projections(m, c_jl)
        self.num_projections = int(num_projections)
        if ground_value is None:
            ground_value = float(graph.weights.mean())
        self.ground_value = ground_value
        self.solver_kind = solver
        self.component_labels, _ = connected_components(graph)

        k = self.num_projections
        scale = 1.0 / np.sqrt(k)
        sqrt_w = np.sqrt(graph.weights)

        with self.timer.section("factorize"):
            matrix, self.ground_nodes = grounded_laplacian(graph, ground_value)
            if solver == "splu":
                direct = spla.splu(matrix.tocsc())
                solve_one = direct.solve
            else:
                from repro.linalg.pcg import pcg

                inv_diag = 1.0 / matrix.diagonal()
                csr = matrix.tocsr()

                def solve_one(rhs: np.ndarray) -> np.ndarray:
                    return pcg(
                        csr,
                        rhs,
                        preconditioner=lambda r: inv_diag * r,
                        rtol=pcg_rtol,
                    ).x

        # Build Y = Q W^{1/2} B row-by-row (never materialising Q) and solve.
        self.embedding = np.empty((n, k))  # column i holds L_G⁻¹ yᵢ
        with self.timer.section("projection_solves"):
            for i in range(k):
                signs = rng.integers(0, 2, size=m).astype(np.float64) * 2.0 - 1.0
                weighted = signs * sqrt_w * scale
                y = np.zeros(n)
                np.add.at(y, graph.heads, weighted)
                np.subtract.at(y, graph.tails, weighted)
                self.embedding[:, i] = solve_one(y)
        self.n = n

    def query_pairs(self, pairs) -> np.ndarray:
        """Approximate effective resistances for ``(m, 2)`` node pairs."""
        ps, qs = as_pair_columns(pairs)
        with self.timer.section("queries"):
            diff = self.embedding[ps] - self.embedding[qs]
            out = np.einsum("ij,ij->i", diff, diff)
        same = self.component_labels[ps] == self.component_labels[qs]
        out[~same] = np.inf
        out[ps == qs] = 0.0
        return out

    @property
    def projection_nnz(self) -> int:
        """nnz of the dense projected matrix — the ``nnz(Q)`` of Table I."""
        return int(self.embedding.size)
