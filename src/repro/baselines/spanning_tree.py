"""Spanning-tree-sampling effective resistances (the [2]/[3] family).

The paper's related work cites random-walk / random-spanning-tree methods
(Hayashi et al., IJCAI'16; Peng et al., KDD'21) and notes they "can only
handle unweighted graphs".  This module implements the idea for *weighted*
graphs too, as an optional extra baseline:

* **Wilson's algorithm** samples uniform (weighted) spanning trees by
  loop-erased random walks — exactly proportional to tree weight;
* by the matrix-tree theorem, ``Pr[e ∈ T] = w(e)·R_eff(e)`` — the
  spanning-edge centrality — so averaging edge indicators over sampled
  trees estimates every edge's effective resistance at once.

The estimator is unbiased with variance ``p(1−p)/k``; it is practical for
rough all-edge estimates and serves as an independent cross-check of the
exact engine in tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.effective_resistance import _as_pair_arrays
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import require


def sample_spanning_tree(
    graph: Graph, rng: "np.random.Generator", root: int = 0
) -> np.ndarray:
    """Sample one weighted-uniform spanning tree with Wilson's algorithm.

    Returns the edge indices of the sampled tree (``n − 1`` of them).
    The graph must be connected and coalesced (unique node pairs), so each
    (node, neighbour) step maps back to a unique edge id.
    """
    n = graph.num_nodes
    adj = graph.adjacency().tocsr()
    # map CSR slots back to edge ids through canonical keys
    lo = np.minimum(graph.heads, graph.tails)
    hi = np.maximum(graph.heads, graph.tails)
    keys = lo * np.int64(n) + hi
    order = np.argsort(keys)
    sorted_keys = keys[order]
    require(
        np.unique(sorted_keys).size == keys.size,
        "graph must be coalesced (no parallel edges) for tree sampling",
    )

    in_tree = np.zeros(n, dtype=bool)
    in_tree[root] = True
    next_node = -np.ones(n, dtype=np.int64)

    for start in range(n):
        if in_tree[start]:
            continue
        # random walk from `start` until hitting the tree, with loop erasure
        u = start
        while not in_tree[u]:
            begin, end = adj.indptr[u], adj.indptr[u + 1]
            neighbours = adj.indices[begin:end]
            weights = adj.data[begin:end]
            probabilities = weights / weights.sum()
            u_next = int(neighbours[rng.choice(neighbours.shape[0], p=probabilities)])
            next_node[u] = u_next
            u = u_next
        # retrace the loop-erased path and attach it to the tree
        u = start
        while not in_tree[u]:
            in_tree[u] = True
            u = int(next_node[u])

    # collect the tree edges: every non-root node's final parent pointer
    # (erased-loop pointers were overwritten by the walk that re-attached
    # the node, so surviving pointers all belong to the tree)
    us = np.array(
        [u for u in range(n) if u != root and next_node[u] >= 0 and in_tree[u]],
        dtype=np.int64,
    )
    a = np.minimum(us, next_node[us])
    b = np.maximum(us, next_node[us])
    tree_keys = a * np.int64(n) + b
    positions = np.searchsorted(sorted_keys, tree_keys)
    edge_ids = order[positions]
    return np.unique(edge_ids)


class SpanningTreeEffectiveResistance:
    """All-edge effective resistances from sampled spanning trees.

    Parameters
    ----------
    graph:
        Connected weighted graph (coalesced).
    num_trees:
        Number of Wilson samples ``k``; the per-edge standard error is
        ``√(p(1−p)/k) / w(e)``.
    seed:
        RNG seed.
    """

    def __init__(self, graph: Graph, num_trees: int = 200, seed=None):
        require(num_trees >= 1, "need at least one tree")
        self.graph = graph.coalesce()
        self.num_trees = num_trees
        self.timer = Timer()
        rng = ensure_rng(seed)
        counts = np.zeros(self.graph.num_edges)
        with self.timer.section("tree_sampling"):
            for _ in range(num_trees):
                tree = sample_spanning_tree(self.graph, rng)
                counts[tree] += 1.0
        self.edge_frequency = counts / num_trees
        # R(e) = Pr[e in T] / w(e)
        self._edge_resistance = self.edge_frequency / self.graph.weights
        n = self.graph.num_nodes
        lo = np.minimum(self.graph.heads, self.graph.tails)
        hi = np.maximum(self.graph.heads, self.graph.tails)
        keys = lo * np.int64(n) + hi
        self._key_order = np.argsort(keys)
        self._sorted_keys = keys[self._key_order]

    def all_edge_resistances(self) -> np.ndarray:
        """Estimated effective resistance of every (coalesced) edge."""
        return self._edge_resistance.copy()

    def query_pairs(self, pairs) -> np.ndarray:
        """Estimates for node pairs — only *edges* are supported.

        Non-adjacent pairs raise: tree sampling only observes edge
        indicators (this mirrors the scope of the methods in [2], [3]).
        """
        ps, qs = _as_pair_arrays(pairs)
        n = self.graph.num_nodes
        keys = (
            np.minimum(ps, qs).astype(np.int64) * np.int64(n)
            + np.maximum(ps, qs).astype(np.int64)
        )
        positions = np.searchsorted(self._sorted_keys, keys)
        valid = (positions < self._sorted_keys.shape[0]) & (
            self._sorted_keys[np.minimum(positions, self._sorted_keys.shape[0] - 1)]
            == keys
        )
        require(bool(np.all(valid)), "spanning-tree estimator only answers edge queries")
        return self._edge_resistance[self._key_order[positions]]

    def query(self, p: int, q: int) -> float:
        """Estimate for one adjacent pair."""
        return float(self.query_pairs([(p, q)])[0])

    def spanning_edge_centrality(self) -> np.ndarray:
        """Direct estimate of ``Pr[e ∈ T]`` (sums to ≈ n − 1)."""
        return self.edge_frequency.copy()
