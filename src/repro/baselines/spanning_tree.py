"""Spanning-tree-sampling effective resistances (the [2]/[3] family).

The paper's related work cites random-walk / random-spanning-tree methods
(Hayashi et al., IJCAI'16; Peng et al., KDD'21) and notes they "can only
handle unweighted graphs".  This module implements the idea for *weighted*
graphs too, as an optional extra baseline:

* **Wilson's algorithm** samples uniform (weighted) spanning trees by
  loop-erased random walks — exactly proportional to tree weight (one
  tree per connected component, i.e. a spanning forest);
* by the matrix-tree theorem, ``Pr[e ∈ T] = w(e)·R_eff(e)`` — the
  spanning-edge centrality — so averaging edge indicators over sampled
  trees estimates every edge's effective resistance at once.

The estimator is unbiased with variance ``p(1−p)/k``; it is practical for
rough all-edge estimates and serves as an independent cross-check of the
exact engine in tests.  It registers with the engine registry as
``"spanning_tree"`` and reports binomial confidence intervals through the
:class:`~repro.estimators.base.BoundedResistanceEngine` protocol, so the
adaptive ladder and the SLA router can use it as an optional coarse tier
for edge-heavy workloads (non-edge pairs report an infinite half-width
and simply escalate).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.core.engine import register_engine
from repro.estimators.base import (
    BoundedResistanceEngine,
    resistance_floor,
    split_trivial,
    weighted_degrees,
)
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import require

_Z_99 = 2.576  # two-sided 99% normal quantile


def sample_spanning_tree(
    graph: Graph, rng: "np.random.Generator", root: int = 0
) -> np.ndarray:
    """Sample one weighted-uniform spanning forest with Wilson's algorithm.

    Returns the edge indices of the sampled forest (``n − c`` of them for
    ``c`` connected components; a spanning tree when the graph is
    connected).  The graph must be coalesced (unique node pairs), so each
    (node, neighbour) step maps back to a unique edge id.  ``root`` seeds
    the tree of its own component; every other component is rooted at its
    smallest node id (walks never leave their component, so sampling
    stays independent per component).
    """
    n = graph.num_nodes
    adj = graph.adjacency().tocsr()
    # map CSR slots back to edge ids through canonical keys
    lo = np.minimum(graph.heads, graph.tails)
    hi = np.maximum(graph.heads, graph.tails)
    keys = lo * np.int64(n) + hi
    order = np.argsort(keys)
    sorted_keys = keys[order]
    require(
        np.unique(sorted_keys).size == keys.size,
        "graph must be coalesced (no parallel edges) for tree sampling",
    )

    labels, num_components = connected_components(graph)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[root] = True
    if num_components > 1:
        # one root per component (Wilson walks can never cross components)
        first = np.full(num_components, -1, dtype=np.int64)
        for node in range(n - 1, -1, -1):
            first[labels[node]] = node
        first[labels[root]] = root
        in_tree[first] = True
    next_node = -np.ones(n, dtype=np.int64)

    for start in range(n):
        if in_tree[start]:
            continue
        # random walk from `start` until hitting the tree, with loop erasure
        u = start
        while not in_tree[u]:
            begin, end = adj.indptr[u], adj.indptr[u + 1]
            neighbours = adj.indices[begin:end]
            weights = adj.data[begin:end]
            probabilities = weights / weights.sum()
            u_next = int(neighbours[rng.choice(neighbours.shape[0], p=probabilities)])
            next_node[u] = u_next
            u = u_next
        # retrace the loop-erased path and attach it to the tree
        u = start
        while not in_tree[u]:
            in_tree[u] = True
            u = int(next_node[u])

    # collect the tree edges: every non-root node's final parent pointer
    # (erased-loop pointers were overwritten by the walk that re-attached
    # the node, so surviving pointers all belong to the tree)
    us = np.array(
        [u for u in range(n) if next_node[u] >= 0 and in_tree[u]],
        dtype=np.int64,
    )
    a = np.minimum(us, next_node[us])
    b = np.maximum(us, next_node[us])
    tree_keys = a * np.int64(n) + b
    positions = np.searchsorted(sorted_keys, tree_keys)
    edge_ids = order[positions]
    return np.unique(edge_ids)


@register_engine("spanning_tree", params=("num_trees", "seed"))
class SpanningTreeEffectiveResistance(BoundedResistanceEngine):
    """All-edge effective resistances from sampled spanning trees.

    Parameters
    ----------
    graph:
        Weighted graph; parallel edges are coalesced internally (the
        served :attr:`graph` keeps the caller's object).
    num_trees:
        Number of Wilson samples ``k``; the per-edge standard error is
        ``√(p(1−p)/k) / w(e)``.
    seed:
        RNG seed.
    """

    def __init__(
        self, graph: Graph, num_trees: int = 200, seed: "int | None" = None
    ):
        require(num_trees >= 1, "need at least one tree")
        self.graph = graph
        self.n = graph.num_nodes
        self._coalesced = graph.coalesce()
        self.num_trees = num_trees
        self.timer = Timer()
        labels, _ = connected_components(graph)
        self.component_labels = labels
        self._weighted_degree = weighted_degrees(self._coalesced)
        rng = ensure_rng(seed)
        counts = np.zeros(self._coalesced.num_edges)
        with self.timer.section("tree_sampling"):
            for _ in range(num_trees):
                tree = sample_spanning_tree(self._coalesced, rng)
                counts[tree] += 1.0
        self.edge_frequency = counts / num_trees
        # R(e) = Pr[e in T] / w(e)
        self._edge_resistance = self.edge_frequency / self._coalesced.weights
        n = self.n
        lo = np.minimum(self._coalesced.heads, self._coalesced.tails)
        hi = np.maximum(self._coalesced.heads, self._coalesced.tails)
        keys = lo * np.int64(n) + hi
        self._key_order = np.argsort(keys)
        self._sorted_keys = keys[self._key_order]

    def all_edge_resistances(self) -> np.ndarray:
        """Estimated effective resistance of every *coalesced* edge,
        clamped to the cut lower bound (an unsampled edge reports the
        bound instead of an impossible 0)."""
        floor = resistance_floor(
            self._weighted_degree, self._coalesced.heads, self._coalesced.tails
        )
        return np.maximum(self._edge_resistance, floor)

    def _edge_slots(
        self, ps: np.ndarray, qs: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Coalesced edge id for each pair, plus an is-an-edge mask."""
        keys = (
            np.minimum(ps, qs).astype(np.int64) * np.int64(self.n)
            + np.maximum(ps, qs).astype(np.int64)
        )
        positions = np.searchsorted(self._sorted_keys, keys)
        clipped = np.minimum(positions, self._sorted_keys.shape[0] - 1)
        valid = (positions < self._sorted_keys.shape[0]) & (
            self._sorted_keys[clipped] == keys
        )
        return self._key_order[clipped], valid

    def query_pairs(self, pairs: ArrayLike) -> np.ndarray:
        """Estimates for node pairs — beyond the trivial diagonal /
        cross-component cases, only *edges* are supported.

        Non-adjacent same-component pairs raise: tree sampling only
        observes edge indicators (this mirrors the scope of the methods
        in [2], [3]).  Routers wanting a graceful answer use
        :meth:`query_pairs_with_bounds`, which reports an infinite
        half-width instead so such pairs escalate.
        """
        ps, qs, values, _, active = split_trivial(self.component_labels, pairs)
        slots, valid = self._edge_slots(ps[active], qs[active])
        require(
            bool(np.all(valid)),
            "spanning-tree estimator only answers edge queries",
        )
        floor = resistance_floor(self._weighted_degree, ps[active], qs[active])
        values[active] = np.maximum(self._edge_resistance[slots], floor)
        return values

    def query_pairs_with_bounds(
        self, pairs: ArrayLike
    ) -> "tuple[np.ndarray, np.ndarray]":
        ps, qs, values, half_widths, active = split_trivial(
            self.component_labels, pairs
        )
        rows = np.flatnonzero(active)
        if rows.size == 0:
            return values, half_widths
        slots, valid = self._edge_slots(ps[rows], qs[rows])
        floor = resistance_floor(self._weighted_degree, ps[rows], qs[rows])
        estimates = np.maximum(self._edge_resistance[slots], floor)
        frequency = self.edge_frequency[slots]
        # binomial CI; keep p(1-p) off zero so a 0/num_trees or
        # num_trees/num_trees frequency still reports finite uncertainty
        spread = np.maximum(
            frequency * (1.0 - frequency), 1.0 / (4.0 * self.num_trees)
        )
        halves = (
            _Z_99
            * np.sqrt(spread / self.num_trees)
            / self._coalesced.weights[slots]
        )
        # non-edges: the only honest answer is "escalate"
        values[rows] = np.where(valid, estimates, floor)
        half_widths[rows] = np.where(valid, halves, np.inf)
        return values, half_widths

    def query(self, p: int, q: int) -> float:
        """Estimate for one adjacent pair."""
        return float(self.query_pairs([(p, q)])[0])

    def spanning_edge_centrality(self) -> np.ndarray:
        """Direct estimate of ``Pr[e ∈ T]`` (sums to ≈ n − c)."""
        return self.edge_frequency.copy()
