"""Benchmark harness regenerating every table and figure of the paper.

* :mod:`repro.bench.cases` — named workload definitions (Table I graph
  families, Table II power-grid cases) with paper-reference numbers;
* :mod:`repro.bench.table1` — the Table I protocol (all-edge effective
  resistances, Alg. 3 vs WWW'15, sampled Ea/Em, dpt, nnz ratios);
* :mod:`repro.bench.table2` — the Table II protocol (PG reduction +
  transient / DC incremental analysis under three ER backends);
* :mod:`repro.bench.fig1` — Fig. 1 transient waveforms (CSV + ASCII plot);
* :mod:`repro.bench.reporting` — fixed-width table rendering.

The pytest-benchmark entry points in ``benchmarks/`` are thin wrappers
around these functions, so the same rows can also be produced from a
Python shell or the examples.
"""

from repro.bench.cases import TABLE1_CASES, TABLE2_CASES, Table1Case, Table2Case
from repro.bench.fig1 import run_fig1
from repro.bench.reporting import format_table
from repro.bench.table1 import Table1Row, run_table1_case
from repro.bench.table2 import Table2Row, run_table2_incremental, run_table2_transient

__all__ = [
    "TABLE1_CASES",
    "TABLE2_CASES",
    "Table1Case",
    "Table2Case",
    "run_table1_case",
    "Table1Row",
    "run_table2_transient",
    "run_table2_incremental",
    "Table2Row",
    "run_fig1",
    "format_table",
]
