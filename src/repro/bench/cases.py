"""Benchmark case definitions with the paper's reference numbers.

Table I of the paper covers three graph families: social networks (SNAP),
finite-element meshes (UF collection) and power-grid / circuit matrices
(IBM / THU / UF).  None of those files can be downloaded in this offline
reproduction, so each case maps to the closest synthetic generator at a
pure-Python-friendly scale (see DESIGN.md §3 for the substitution
rationale).  The ``paper`` fields carry the published values for
side-by-side printing; the claims that must reproduce are *relative*
(speedup over the baseline, error orders of magnitude, nnz scaling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.engine import EngineConfig
from repro.graphs.generators import (
    barabasi_albert_graph,
    fe_mesh_2d,
    fe_mesh_3d,
    grid_2d,
    rmat_graph,
    watts_strogatz_graph,
)
from repro.graphs.graph import Graph
from repro.powergrid.generators import PGConfig


@dataclass(frozen=True)
class PaperTable1Reference:
    """One row of the paper's Table I (the published numbers)."""

    nodes: float
    edges: float
    dpt: int
    baseline_time: float
    baseline_ea: float
    baseline_em: float
    alg3_time: float
    alg3_ea: float
    alg3_em: float
    alg3_nnz_ratio: float


@dataclass(frozen=True)
class Table1Case:
    """A Table I workload: generator + the paper row it stands in for.

    ``engine`` is the base :class:`~repro.core.engine.EngineConfig` the
    runner derives the Alg. 3 and baseline configurations from (the
    paper's defaults); per-case overrides slot in here without touching
    the runner.
    """

    name: str
    family: str
    builder: "Callable[[], Graph]"
    stands_in_for: str
    paper: PaperTable1Reference
    engine: EngineConfig = EngineConfig()


TABLE1_CASES: "dict[str, Table1Case]" = {
    "ba-social": Table1Case(
        name="ba-social",
        family="social network",
        builder=lambda: barabasi_albert_graph(12000, 3, seed=11),
        stands_in_for="com-DBLP (3.2E5 nodes, 1.0E6 edges)",
        paper=PaperTable1Reference(3.2e5, 1.0e6, 464, 517, 2.6e-2, 1.4e-1, 4.14, 7.1e-5, 1.9e-3, 5.40),
    ),
    "ws-social": Table1Case(
        name="ws-social",
        family="social network",
        builder=lambda: watts_strogatz_graph(15000, 4, 0.1, seed=12),
        stands_in_for="com-Amazon (3.3E5 nodes, 9.3E5 edges)",
        paper=PaperTable1Reference(3.3e5, 9.3e5, 590, 719, 2.2e-2, 1.4e-1, 4.71, 8.0e-5, 3.9e-3, 7.47),
    ),
    "rmat-social": Table1Case(
        name="rmat-social",
        family="social network",
        builder=lambda: rmat_graph(13, 6, seed=13),
        stands_in_for="com-Youtube (1.1E6 nodes, 3.0E6 edges)",
        paper=PaperTable1Reference(1.1e6, 3.0e6, 1370, 926, 3.5e-2, 2.1e-1, 21.0, 1.5e-4, 2.1e-2, 1.63),
    ),
    "fe-mesh-2d": Table1Case(
        name="fe-mesh-2d",
        family="finite elements",
        builder=lambda: fe_mesh_2d(110, 110, seed=14),
        stands_in_for="fe_tooth (7.8E4 nodes, 4.5E5 edges)",
        paper=PaperTable1Reference(7.8e4, 4.5e5, 1892, 322, 1.8e-2, 7.4e-2, 1.73, 8.6e-4, 1.1e-2, 15.2),
    ),
    "fe-mesh-3d": Table1Case(
        name="fe-mesh-3d",
        family="finite elements",
        builder=lambda: fe_mesh_3d(24, 24, 20, seed=15),
        stands_in_for="fe_rotor (1.0E5 nodes, 7.6E5 edges)",
        paper=PaperTable1Reference(1.0e5, 7.6e5, 2448, 488, 1.7e-2, 7.0e-2, 2.84, 8.3e-4, 2.1e-2, 17.2),
    ),
    "pg-mesh": Table1Case(
        name="pg-mesh",
        family="power grid",
        builder=lambda: grid_2d(160, 100, jitter=0.3, seed=16),
        stands_in_for="ibmpg5 (1.1E6 nodes, 1.6E6 edges)",
        paper=PaperTable1Reference(1.1e6, 1.6e6, 513, 691, 2.2e-2, 1.2e-1, 3.16, 1.7e-3, 2.7e-2, 6.17),
    ),
    "circuit-grid": Table1Case(
        name="circuit-grid",
        family="circuit",
        builder=lambda: grid_2d(120, 120, jitter=0.5, seed=17),
        stands_in_for="G2_circuit (1.5E5 nodes, 2.9E5 edges)",
        paper=PaperTable1Reference(1.5e5, 2.9e5, 720, 214, 2.0e-2, 1.2e-1, 1.15, 1.3e-3, 4.4e-2, 8.30),
    ),
    "geom-mesh": Table1Case(
        name="geom-mesh",
        family="finite elements",
        builder=lambda: fe_mesh_2d(140, 70, seed=18, weight_low=0.2, weight_high=5.0),
        stands_in_for="NACA0015 (1.0E6 nodes, 3.1E6 edges)",
        paper=PaperTable1Reference(1.0e6, 3.1e6, 543, 2447, 2.2e-2, 7.5e-2, 12.1, 1.0e-3, 3.6e-3, 8.17),
    ),
}


@dataclass(frozen=True)
class PaperTable2Reference:
    """One row of the paper's Table II (both halves share ``tred``)."""

    tred_exact: float
    tred_alg3: float
    rel_exact_pct: float
    rel_rp_pct: float
    rel_alg3_pct: float


@dataclass(frozen=True)
class Table2Case:
    """A Table II workload: a synthetic ibmpg-like configuration."""

    name: str
    config: PGConfig
    seed: int
    stands_in_for: str
    transient_step: float = 1e-11
    transient_steps: int = 1000
    paper: "PaperTable2Reference | None" = None


TABLE2_CASES: "dict[str, Table2Case]" = {
    "pg2-like": Table2Case(
        name="pg2-like",
        config=PGConfig(nx=36, ny=36, pad_pitch=9, load_fraction=0.08),
        seed=21,
        stands_in_for="ibmpg2t (1.3E5 nodes, 2.08E5 resistors)",
        paper=PaperTable2Reference(6.55, 0.951, 1.52, 4.28, 1.51),
    ),
    "pg3-like": Table2Case(
        name="pg3-like",
        config=PGConfig(nx=48, ny=48, pad_pitch=8, load_fraction=0.08),
        seed=22,
        stands_in_for="ibmpg3t (8.5E5 nodes, 1.40E6 resistors)",
        paper=PaperTable2Reference(67.2, 7.70, 0.78, 1.29, 0.83),
    ),
    "pg4-like": Table2Case(
        name="pg4-like",
        config=PGConfig(nx=56, ny=56, pad_pitch=8, load_fraction=0.10),
        seed=23,
        stands_in_for="ibmpg4t (9.5E5 nodes, 1.55E6 resistors)",
        paper=PaperTable2Reference(81.9, 10.6, 0.93, 4.85, 0.93),
    ),
    "pg5-like": Table2Case(
        name="pg5-like",
        config=PGConfig(nx=64, ny=64, pad_pitch=10, load_fraction=0.06),
        seed=24,
        stands_in_for="ibmpg5t (1.1E6 nodes, 1.62E6 resistors)",
        paper=PaperTable2Reference(24.1, 5.59, 0.87, 0.96, 0.87),
    ),
    "pg6-like": Table2Case(
        name="pg6-like",
        config=PGConfig(nx=72, ny=72, pad_pitch=10, load_fraction=0.06),
        seed=25,
        stands_in_for="ibmpg6t (1.7E6 nodes, 2.48E6 resistors)",
        paper=PaperTable2Reference(39.4, 8.76, 1.02, 1.97, 1.02),
    ),
}


def quick_table1_names() -> "list[str]":
    """Subset of Table I cases small enough for CI-style bench runs."""
    return ["fe-mesh-2d", "pg-mesh", "circuit-grid"]


def quick_table2_names() -> "list[str]":
    """Subset of Table II cases for CI-style bench runs."""
    return ["pg2-like", "pg3-like"]
