"""Fig. 1 — transient waveforms of a VDD node and a GND node.

The paper plots the transient simulation of one VDD node and one GND node
of case "ibmpg3t", obtained from the original and the reduced power grid,
and shows the curves coincide.  This module reproduces that experiment on
the synthetic case: it picks the worst-IR-drop VDD port and the
worst-bounce GND port, runs both simulations, writes a CSV, and renders an
ASCII plot (the offline stand-in for the paper's matplotlib figure).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bench.cases import Table2Case
from repro.powergrid.dc import dc_analysis
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.powergrid.transient import transient_analysis
from repro.reduction.pipeline import PGReducer, ReductionConfig


@dataclass
class Fig1Result:
    """Waveform data of the Fig. 1 reproduction."""

    times: np.ndarray
    vdd_node_name: str
    gnd_node_name: str
    vdd_original: np.ndarray
    vdd_reduced: np.ndarray
    gnd_original: np.ndarray
    gnd_reduced: np.ndarray

    def max_divergence(self) -> float:
        """Largest |original − reduced| over both waveforms (volts)."""
        return float(
            max(
                np.abs(self.vdd_original - self.vdd_reduced).max(),
                np.abs(self.gnd_original - self.gnd_reduced).max(),
            )
        )

    def to_csv(self, path: "str | Path") -> None:
        """Dump the four waveforms to CSV for external plotting."""
        header = (
            f"time_s,vdd_original({self.vdd_node_name}),vdd_reduced,"
            f"gnd_original({self.gnd_node_name}),gnd_reduced"
        )
        data = np.column_stack(
            [self.times, self.vdd_original, self.vdd_reduced, self.gnd_original, self.gnd_reduced]
        )
        np.savetxt(str(path), data, delimiter=",", header=header, comments="")


def ascii_plot(
    times: np.ndarray,
    series: "dict[str, np.ndarray]",
    width: int = 72,
    height: int = 16,
    title: str = "",
) -> str:
    """Minimal ASCII line plot (offline stand-in for Fig. 1)."""
    all_values = np.concatenate(list(series.values()))
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi - lo < 1e-15:
        hi = lo + 1e-15
    canvas = [[" "] * width for _ in range(height)]
    markers = "ox+*"
    for (label, values), marker in zip(series.items(), markers):
        xs = np.linspace(0, width - 1, values.shape[0]).astype(int)
        ys = ((values - lo) / (hi - lo) * (height - 1)).astype(int)
        for x, y in zip(xs, ys):
            canvas[height - 1 - y][x] = marker
    lines = [title] if title else []
    lines.append(f"{hi:.4f} V")
    lines.extend("".join(row) for row in canvas)
    lines.append(f"{lo:.4f} V" + " " * max(0, width - 20) + f"t = {times[-1]:.2e} s")
    legend = "   ".join(f"{m} {label}" for (label, _), m in zip(series.items(), markers))
    lines.append(legend)
    return "\n".join(lines)


def run_fig1(
    case: Table2Case,
    num_steps: int = 1000,
    er_method: str = "cholinv",
    output_csv: "str | Path | None" = None,
) -> Fig1Result:
    """Reproduce Fig. 1 on a synthetic case (see module docstring)."""
    grid = synthetic_ibmpg_like(case.config, seed=case.seed, transient=True)
    ports = grid.port_nodes()

    # choose observation nodes: the ports with the worst DC drop per net
    dc = dc_analysis(grid)
    port_names = [grid.name_of(int(p)) for p in ports]
    vdd_ports = [p for p, nm in zip(ports, port_names) if "_vdd_" in nm]
    gnd_ports = [p for p, nm in zip(ports, port_names) if "_gnd_" in nm]
    vdd_node = int(max(vdd_ports, key=lambda p: 1.8 - dc.voltages[p]))
    gnd_node = int(max(gnd_ports, key=lambda p: dc.voltages[p]))
    observe = np.array([vdd_node, gnd_node])

    original = transient_analysis(
        grid, step=case.transient_step, num_steps=num_steps, observe=observe
    )

    reducer = PGReducer(grid, ReductionConfig(er_method=er_method, seed=case.seed))
    reduced = reducer.reduce()
    reduced_observe = reduced.reduced_index_of(observe)
    reduced_run = transient_analysis(
        reduced.grid, step=case.transient_step, num_steps=num_steps, observe=reduced_observe
    )

    result = Fig1Result(
        times=original.times,
        vdd_node_name=grid.name_of(vdd_node),
        gnd_node_name=grid.name_of(gnd_node),
        vdd_original=original.voltages[0],
        vdd_reduced=reduced_run.voltages[0],
        gnd_original=original.voltages[1],
        gnd_reduced=reduced_run.voltages[1],
    )
    if output_csv is not None:
        result.to_csv(output_csv)
    return result
