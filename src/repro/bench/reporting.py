"""Fixed-width table rendering for benchmark output.

The bench targets print rows shaped like the paper's tables next to the
paper's own numbers, so "does the shape hold?" is a visual one-liner.
"""

from __future__ import annotations


def format_value(value) -> str:
    """Render a cell: scientific for tiny/huge floats, compact otherwise."""
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude < 1e-3 or magnitude >= 1e5:
            return f"{value:.2e}"
        if magnitude < 10:
            return f"{value:.3f}"
        return f"{value:.1f}"
    return str(value)


def format_table(headers: "list[str]", rows: "list[list]", title: str = "") -> str:
    """Render a fixed-width ASCII table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def speedup(reference: float, candidate: float) -> float:
    """``reference / candidate`` guarded against zero division."""
    return reference / candidate if candidate > 0 else float("inf")
