"""Table I protocol — effective resistances for all edges of large graphs.

For each case:

* run Alg. 3 (incomplete Cholesky @ droptol 1e-3, Alg. 2 @ ε = 1e-3, then
  ``Q_r = E`` queries), timing the whole thing (``T``);
* run the WWW'15 random-projection baseline on the same query set;
* estimate ``Ea`` / ``Em`` for both by comparing 1000 random edges against
  exact values (the paper's estimation protocol);
* record ``dpt`` (maximum filled-graph depth) and the two sparsity ratios
  ``nnz(Q)/(n log n)`` and ``nnz(Z̃)/(n log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.cases import Table1Case
from repro.bench.reporting import format_table, speedup
from repro.core.engine import build_engine
from repro.core.error_bounds import estimate_query_errors
from repro.utils.timing import timed


@dataclass
class Table1Row:
    """Measured Table I row for one case."""

    case: str
    nodes: int
    edges: int
    dpt: int
    baseline_time: float
    baseline_ea: float
    baseline_em: float
    baseline_nnz_ratio: float
    alg3_time: float
    alg3_ea: float
    alg3_em: float
    alg3_nnz_ratio: float

    @property
    def measured_speedup(self) -> float:
        """Alg. 3 speedup over the baseline (paper average: 168X)."""
        return speedup(self.baseline_time, self.alg3_time)

    @property
    def error_improvement(self) -> float:
        """Baseline Ea / Alg. 3 Ea (paper: one to two orders of magnitude)."""
        return self.baseline_ea / self.alg3_ea if self.alg3_ea > 0 else float("inf")


def run_table1_case(
    case: Table1Case,
    epsilon: float = 1e-3,
    drop_tol: float = 1e-3,
    ordering: str = "amd",
    baseline_c_jl: float = 50.0,
    baseline_solver: str = "pcg",
    error_samples: int = 1000,
    seed: int = 0,
    run_baseline: bool = True,
    build_workers: int = 1,
) -> Table1Row:
    """Execute the full Table I protocol for one case.

    ``baseline_c_jl`` scales the baseline's JL dimension (``k = c·ln m``);
    the paper's reported ``nnz(Q)/(n log n)`` ratios imply ``c ≈ 100–340``,
    so the default 50 *favours the baseline* and measured speedups are
    conservative.  ``baseline_solver="pcg"`` is the faithful stand-in for
    the CMG iterative solver the WWW'15 code uses.  ``build_workers``
    parallelises the Alg. 3 engine build (bit-identical results, so the
    error columns cannot move — only ``T`` does).
    """
    graph = case.builder()
    exact = build_engine(graph, case.engine.replace(method="exact"))

    with timed() as elapsed:
        alg3 = build_engine(graph, case.engine.replace(
            method="cholinv", epsilon=epsilon, drop_tol=drop_tol,
            ordering=ordering, build_workers=build_workers,
        ))
        alg3.all_edge_resistances()
    alg3_time = elapsed()
    alg3_errors = estimate_query_errors(
        alg3, graph, num_samples=error_samples, seed=seed, exact=exact
    )

    if run_baseline:
        with timed() as elapsed:
            baseline = build_engine(graph, case.engine.replace(
                method="random_projection", c_jl=baseline_c_jl,
                solver=baseline_solver, seed=seed,
            ))
            baseline.all_edge_resistances()
        baseline_time = elapsed()
        baseline_errors = estimate_query_errors(
            baseline, graph, num_samples=error_samples, seed=seed, exact=exact
        )
        nlogn = graph.num_nodes * np.log(graph.num_nodes)
        baseline_ratio = baseline.projection_nnz / nlogn
    else:
        baseline_time = float("nan")
        baseline_errors = None
        baseline_ratio = float("nan")

    return Table1Row(
        case=case.name,
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        dpt=alg3.max_depth,
        baseline_time=baseline_time,
        baseline_ea=baseline_errors.average if baseline_errors else float("nan"),
        baseline_em=baseline_errors.maximum if baseline_errors else float("nan"),
        baseline_nnz_ratio=baseline_ratio,
        alg3_time=alg3_time,
        alg3_ea=alg3_errors.average,
        alg3_em=alg3_errors.maximum,
        alg3_nnz_ratio=alg3.stats.nnz_per_nlogn,
    )


def render_table1(rows: "list[Table1Row]", cases: "dict[str, Table1Case]") -> str:
    """Print measured rows next to the paper's published row."""
    headers = [
        "case", "|V|", "|E|", "dpt",
        "T_www15", "Ea_www15", "Em_www15", "nnzQ/nlogn",
        "T_alg3", "Ea_alg3", "Em_alg3", "nnzZ/nlogn",
        "speedup", "Ea_gain",
    ]
    body = []
    for row in rows:
        body.append([
            row.case, row.nodes, row.edges, row.dpt,
            row.baseline_time, row.baseline_ea, row.baseline_em, row.baseline_nnz_ratio,
            row.alg3_time, row.alg3_ea, row.alg3_em, row.alg3_nnz_ratio,
            row.measured_speedup, row.error_improvement,
        ])
        paper = cases[row.case].paper
        body.append([
            "  (paper)", paper.nodes, paper.edges, paper.dpt,
            paper.baseline_time, paper.baseline_ea, paper.baseline_em, float("nan"),
            paper.alg3_time, paper.alg3_ea, paper.alg3_em, paper.alg3_nnz_ratio,
            speedup(paper.baseline_time, paper.alg3_time),
            paper.baseline_ea / paper.alg3_ea,
        ])
    return format_table(headers, body, title="Table I — effective resistances on large graphs")
