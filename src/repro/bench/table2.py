"""Table II protocol — PG reduction for transient and DC incremental analysis.

For each case and each effective-resistance backend (accurate / WWW'15 /
Alg. 3), run the full application flow and collect the row the paper
prints: model sizes, reduction time, analysis time, Err (mV) and Rel (%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.incremental import run_incremental_flow
from repro.apps.transient_flow import run_transient_flow
from repro.bench.cases import Table2Case
from repro.bench.reporting import format_table, speedup
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.powergrid.dc import dc_analysis
from repro.powergrid.transient import transient_analysis
from repro.reduction.pipeline import PGReducer, ReductionConfig
from repro.utils.timing import timed

METHODS = ("exact", "random_projection", "cholinv")
_METHOD_LABEL = {
    "exact": "Acc. Eff. Res.",
    "random_projection": "App. Eff. Res. (WWW15)",
    "cholinv": "App. Eff. Res. (Alg. 3)",
}


@dataclass
class Table2Row:
    """One (case, method) cell of Table II."""

    case: str
    method: str
    original_nodes: int
    original_edges: int
    time_original_analysis: float
    reduced_nodes: int
    reduced_edges: int
    time_reduction: float
    time_reduced_analysis: float
    err_mv: float
    rel_pct: float

    @property
    def total_time(self) -> float:
        """Reduction plus reduced-model analysis."""
        return self.time_reduction + self.time_reduced_analysis


def _method_config(method: str, seed: int) -> ReductionConfig:
    er_kwargs: dict = {}
    if method == "random_projection":
        er_kwargs = {"c_jl": 25.0}
    return ReductionConfig(er_method=method, er_kwargs=er_kwargs, seed=seed)


def run_table2_transient(
    case: Table2Case, methods=METHODS, num_steps: "int | None" = None
) -> "list[Table2Row]":
    """Table II upper half for one case (all methods share the original run)."""
    grid = synthetic_ibmpg_like(case.config, seed=case.seed, transient=True)
    ports = grid.port_nodes()
    steps = num_steps if num_steps is not None else case.transient_steps

    with timed() as elapsed:
        original = transient_analysis(
            grid, step=case.transient_step, num_steps=steps, observe=ports
        )
    time_original = elapsed()

    rows = []
    for method in methods:
        outcome = run_transient_flow(
            grid,
            _method_config(method, case.seed),
            step=case.transient_step,
            num_steps=steps,
            original_result=original,
        )
        rows.append(
            Table2Row(
                case=case.name,
                method=method,
                original_nodes=grid.num_nodes,
                original_edges=grid.num_resistors,
                time_original_analysis=time_original,
                reduced_nodes=outcome.reduced.grid.num_nodes,
                reduced_edges=outcome.reduced.grid.num_resistors,
                time_reduction=outcome.time_reduction,
                time_reduced_analysis=outcome.time_transient_reduced,
                err_mv=outcome.err_mv,
                rel_pct=outcome.rel_pct,
            )
        )
    return rows


def run_table2_incremental(case: Table2Case, methods=METHODS) -> "list[Table2Row]":
    """Table II lower half for one case."""
    grid = synthetic_ibmpg_like(case.config, seed=case.seed, transient=False)

    rows = []
    for method in methods:
        config = _method_config(method, case.seed)
        base = PGReducer(grid, config)
        base.reduce()  # the pristine reduction exists before the design edit
        outcome = run_incremental_flow(
            grid, config, seed=case.seed + 1, base_reducer=base
        )
        rows.append(
            Table2Row(
                case=case.name,
                method=method,
                original_nodes=grid.num_nodes,
                original_edges=grid.num_resistors,
                time_original_analysis=outcome.time_original_solve,
                reduced_nodes=outcome.reduced.grid.num_nodes,
                reduced_edges=outcome.reduced.grid.num_resistors,
                time_reduction=outcome.time_incremental_reduction,
                time_reduced_analysis=outcome.time_reduced_solve,
                err_mv=outcome.err_mv,
                rel_pct=outcome.rel_pct,
            )
        )
    return rows


def render_table2(rows: "list[Table2Row]", analysis_label: str) -> str:
    """Render measured Table II rows (one line per case × method)."""
    headers = [
        "case", "method", "|V|", "|E|", f"T{analysis_label}_orig",
        "|V|red", "|E|red", "Tred", f"T{analysis_label}_red",
        "Err(mV)", "Rel(%)", "speedup_vs_exact",
    ]
    exact_tred = {row.case: row.time_reduction for row in rows if row.method == "exact"}
    body = []
    for row in rows:
        body.append([
            row.case,
            _METHOD_LABEL[row.method],
            row.original_nodes,
            row.original_edges,
            row.time_original_analysis,
            row.reduced_nodes,
            row.reduced_edges,
            row.time_reduction,
            row.time_reduced_analysis,
            row.err_mv,
            row.rel_pct,
            speedup(exact_tred.get(row.case, float("nan")), row.time_reduction),
        ])
    return format_table(
        headers, body, title=f"Table II — PG reduction for {analysis_label} analysis"
    )
