"""Sparse Cholesky substrate (replaces CHOLMOD for this reproduction).

The paper needs two factorisations of the grounded Laplacian:

* a **complete** Cholesky factorisation for exact effective resistances and
  for the Schur-complement power-grid reduction, and
* an **incomplete** Cholesky factorisation with threshold dropping
  (drop tolerance 1e-3 in the paper) feeding Alg. 2.

Neither scipy nor numpy provides a *sparse* Cholesky, so this package
implements the standard toolchain from Davis, "Direct Methods for Sparse
Linear Systems" (the paper's reference [19]): elimination trees, symbolic
analysis, an up-looking numeric factorisation, fill-reducing orderings, a
threshold incomplete factorisation, triangular solves, and the filled-graph
depth of Eq. (11).
"""

from repro.cholesky.depth import filled_graph_depth, max_depth
from repro.cholesky.etree import column_counts, elimination_tree, postorder, tree_depths
from repro.cholesky.incomplete import ICholResult, ichol
from repro.cholesky.numeric import CholeskyFactor, cholesky, cholesky_uplooking
from repro.cholesky.ordering import compute_ordering, minimum_degree_ordering, permute_symmetric
from repro.cholesky.symbolic import symbolic_factorization
from repro.cholesky.triangular import solve_lower, solve_lower_transpose, spd_solve

__all__ = [
    "elimination_tree",
    "postorder",
    "column_counts",
    "tree_depths",
    "symbolic_factorization",
    "cholesky",
    "cholesky_uplooking",
    "CholeskyFactor",
    "ichol",
    "ICholResult",
    "compute_ordering",
    "minimum_degree_ordering",
    "permute_symmetric",
    "filled_graph_depth",
    "max_depth",
    "solve_lower",
    "solve_lower_transpose",
    "spd_solve",
]
