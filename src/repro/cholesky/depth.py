"""Filled-graph node depth — Eq. (11) of the paper.

For the (possibly incomplete) Cholesky factor ``L``, the depth of node ``p``
is::

    depth(p) = 0                                   if L(p+1:n, p) = 0
             = 1 + max_{i>p, L(i,p) != 0} depth(i)  otherwise

Theorem 1 bounds the relative 1-norm error of Alg. 2's approximate inverse
columns by ``depth(p) · ε``; Table I reports the maximum depth (``dpt``) for
every test graph, and the bench harness reproduces that column.

Because the recurrence only references *larger* node indices, a single
backward sweep over the columns of ``L`` evaluates it exactly — this works
for incomplete factors too, whose pattern is not closed under elimination-
tree paths.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_square_sparse


def filled_graph_depth(lower: sp.spmatrix) -> np.ndarray:
    """Depth of every node in the filled graph of factor ``lower``.

    Parameters
    ----------
    lower:
        Lower-triangular factor (complete or incomplete), any sparse format.

    Returns
    -------
    numpy.ndarray
        Integer array ``depth`` with ``depth[p]`` per Eq. (11).
    """
    check_square_sparse(lower, "lower")
    csc = sp.csc_matrix(sp.tril(lower, k=-1))
    n = csc.shape[0]
    depth = np.zeros(n, dtype=np.int64)
    indptr, indices = csc.indptr, csc.indices
    for p in range(n - 1, -1, -1):
        start, end = indptr[p], indptr[p + 1]
        if end > start:
            depth[p] = 1 + int(depth[indices[start:end]].max())
    return depth


def max_depth(lower: sp.spmatrix) -> int:
    """Maximum filled-graph depth — the ``dpt`` column of Table I."""
    depths = filled_graph_depth(lower)
    return int(depths.max()) if depths.size else 0
