"""Filled-graph node depth — Eq. (11) of the paper.

For the (possibly incomplete) Cholesky factor ``L``, the depth of node ``p``
is::

    depth(p) = 0                                   if L(p+1:n, p) = 0
             = 1 + max_{i>p, L(i,p) != 0} depth(i)  otherwise

Theorem 1 bounds the relative 1-norm error of Alg. 2's approximate inverse
columns by ``depth(p) · ε``; Table I reports the maximum depth (``dpt``) for
every test graph, and the bench harness reproduces that column.

Because the recurrence only references *larger* node indices, a single
backward sweep over the columns of ``L`` evaluates it exactly — this works
for incomplete factors too, whose pattern is not closed under elimination-
tree paths.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_square_sparse


def filled_graph_depth(lower: sp.spmatrix) -> np.ndarray:
    """Depth of every node in the filled graph of factor ``lower``.

    Parameters
    ----------
    lower:
        Lower-triangular factor (complete or incomplete), any sparse format.

    Returns
    -------
    numpy.ndarray
        Integer array ``depth`` with ``depth[p]`` per Eq. (11).
    """
    check_square_sparse(lower, "lower")
    csc = sp.csc_matrix(sp.tril(lower, k=-1))
    n = csc.shape[0]
    # plain-list backward sweep: per-column numpy slicing costs ~µs each,
    # while list indexing over the O(nnz) entries keeps this linear-time in
    # practice (this feeds the level schedule of the blocked Alg. 2 kernel)
    indptr = csc.indptr.tolist()
    indices = csc.indices.tolist()
    depth = [0] * n
    for p in range(n - 1, -1, -1):
        best = -1
        for t in range(indptr[p], indptr[p + 1]):
            d = depth[indices[t]]
            if d > best:
                best = d
        if best >= 0:
            depth[p] = best + 1
    return np.asarray(depth, dtype=np.int64)


def max_depth(lower: sp.spmatrix) -> int:
    """Maximum filled-graph depth — the ``dpt`` column of Table I."""
    depths = filled_graph_depth(lower)
    return int(depths.max()) if depths.size else 0
