"""Elimination tree and related symbolic analysis (Davis, ch. 4).

The elimination tree ``parent[j]`` of an SPD matrix ``A`` is the transitive
reduction of the directed filled graph: ``parent[j]`` is the row index of the
first sub-diagonal nonzero of column ``j`` of the Cholesky factor ``L``.  It
drives the symbolic factorisation (row patterns of ``L`` are paths towards
the root) and gives cheap fill-in estimates (column counts).

The filled-graph *depth* of Eq. (11) in the paper is exactly the height of
each node in this tree when the factorisation is complete; the incomplete
case is handled separately in :mod:`repro.cholesky.depth` from the actual
``L`` structure.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_square_sparse


def elimination_tree(matrix: sp.spmatrix) -> np.ndarray:
    """Compute the elimination tree of a sparse symmetric matrix.

    Returns ``parent`` with ``parent[j] = -1`` for roots.  Uses the
    path-compression (ancestor) algorithm, O(nnz · α(n)).
    Only the lower triangle of ``matrix`` is referenced.
    """
    check_square_sparse(matrix, "matrix")
    csc = sp.csc_matrix(sp.tril(matrix, k=-1))
    n = csc.shape[0]
    parent = -np.ones(n, dtype=np.int64)
    ancestor = -np.ones(n, dtype=np.int64)
    indptr, indices = csc.indptr, csc.indices
    # iterate columns; for column k every row index i>k connects subtree of k
    # A is symmetric: process row k by scanning column entries of the upper
    # triangle, equivalently rows i<k of column k of the lower triangle of Aᵀ.
    csr = csc.tocsr()
    del indptr, indices
    for k in range(n):
        for idx in range(csr.indptr[k], csr.indptr[k + 1]):
            i = int(csr.indices[idx])  # i < k since we kept strict lower triangle
            # walk from i to the root of its current virtual tree
            while i != -1 and i < k:
                next_i = int(ancestor[i])
                ancestor[i] = k
                if next_i == -1:
                    parent[i] = k
                i = next_i
    return parent


def postorder(parent: np.ndarray) -> np.ndarray:
    """Postorder the forest given by ``parent`` (iterative DFS).

    Returns ``post`` such that ``post[k]`` is the node visited k-th; children
    always precede their parents, which later passes rely on.
    """
    n = parent.shape[0]
    first_child = -np.ones(n, dtype=np.int64)
    next_sibling = -np.ones(n, dtype=np.int64)
    for v in range(n - 1, -1, -1):
        p = int(parent[v])
        if p != -1:
            next_sibling[v] = first_child[p]
            first_child[p] = v
    post = np.empty(n, dtype=np.int64)
    count = 0
    stack: list[int] = []
    for root in range(n):
        if parent[root] != -1:
            continue
        stack.append(root)
        while stack:
            node = stack[-1]
            child = int(first_child[node])
            if child != -1:
                stack.append(child)
                first_child[node] = next_sibling[child]
            else:
                post[count] = node
                count += 1
                stack.pop()
    if count != n:
        raise ValueError("parent array does not describe a forest")
    return post


def tree_depths(parent: np.ndarray) -> np.ndarray:
    """Distance from each node to the root of its elimination tree.

    For a *complete* factorisation this equals the filled-graph depth of
    Eq. (11): a column with no sub-diagonal entries is an etree root
    (depth 0), and since every entry of column ``p`` lies on the path from
    ``parent[p]`` to the root — along which Eq. (11) depths are non-
    increasing — the recurrence collapses to ``depth[p] = 1 +
    depth[parent[p]]``.  Incomplete factors are handled from the actual
    ``L`` pattern by :func:`repro.cholesky.depth.filled_graph_depth`.
    """
    n = parent.shape[0]
    depth = np.zeros(n, dtype=np.int64)
    # parent[j] > j in an elimination tree, so a reverse sweep sees parents first
    for v in range(n - 1, -1, -1):
        p = int(parent[v])
        if p != -1:
            depth[v] = depth[p] + 1
    return depth


def column_counts(matrix: sp.spmatrix, parent: "np.ndarray | None" = None) -> np.ndarray:
    """Number of nonzeros in each column of the Cholesky factor ``L``.

    Straightforward O(fill) algorithm: walk each row's pattern up the
    elimination tree marking visited nodes.  Fast enough for the problem
    sizes of the test-suite and used for allocation in the numeric phase.
    """
    check_square_sparse(matrix, "matrix")
    lower = sp.csr_matrix(sp.tril(matrix, k=-1))
    n = lower.shape[0]
    if parent is None:
        parent = elimination_tree(matrix)
    counts = np.ones(n, dtype=np.int64)  # diagonal entries
    mark = -np.ones(n, dtype=np.int64)
    for i in range(n):
        mark[i] = i
        for idx in range(lower.indptr[i], lower.indptr[i + 1]):
            j = int(lower.indices[idx])
            while j != -1 and mark[j] != i:
                counts[j] += 1
                mark[j] = i
                j = int(parent[j])
    return counts
