"""Threshold incomplete Cholesky factorisation — ICT(τ).

Alg. 3 of the paper runs an *incomplete* Cholesky factorisation of the
grounded Laplacian with drop tolerance 1e-3 before computing the sparse
approximate inverse.  Dropping small fill-ins "corresponds to setting some
branches with large resistances to open and does not introduce large errors
to effective resistances" (Section III-C).

This module implements the column-wise (left-looking) threshold algorithm —
the same scheme as MATLAB's ``ichol(..., 'ict')``:

* column ``j`` gathers the original entries ``A(j:n, j)`` and subtracts the
  contributions ``L(j:n, k) · L(j, k)`` of every earlier column ``k`` with
  ``L(j, k) ≠ 0``;
* entries smaller in magnitude than ``drop_tol · ‖A(j:n, j)‖₁`` are dropped;
* the Jones–Plassmann linked-list device finds the contributing columns in
  O(1) per contribution: each finished column keeps a cursor to its next
  untouched row index and is filed under that row's to-do list (stored as
  flat FIFO-linked arrays, so the sweep allocates nothing per column).

The sweep is engineered as the serial front-end of the parallel
engine-build pipeline (it feeds the level-parallel Alg. 2 kernel, so its
wall-clock is on the build critical path):

* the computed factor grows in one flat row/value arena instead of one
  pair of arrays per column — no per-column ``np.concatenate``, and the
  final CSC assembly is a pair of slices;
* touched row indices merge through a boolean marker plus one sort of the
  *unique* indices, replacing the former ``np.concatenate`` +
  ``np.unique`` (sort of a multiset) per column;
* *dependency-free leaf columns* — nodes with no lower-numbered neighbour
  in ``A``, whose row of ``L`` is structurally empty, so no earlier column
  can ever update them — are factored for the whole matrix at once in a
  handful of vectorised calls and only stitched into the arena (and the
  work lists) when their turn comes.

For SDD M-matrices (grounded Laplacians) every off-diagonal stays
nonpositive — the structural property Lemma 1 needs.  Zero/negative pivots
(possible for *incomplete* factorisations even of definite matrices) are
handled by the standard Manteuffel diagonal-shift retry loop:
``A + α·diag(A)`` with doubling ``α``; the permuted ``tril`` structure is
extracted once and reused across every retry (a shift only bumps the
stored diagonal values, never the pattern).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.cholesky.ordering import compute_ordering, permute_symmetric
from repro.utils.validation import check_positive, check_square_sparse


class CholeskyBreakdownError(np.linalg.LinAlgError):
    """Raised when an incomplete factorisation hits a nonpositive pivot."""


@dataclass
class ICholResult:
    """Incomplete Cholesky factor ``L`` with ``P(A + αD)Pᵀ ≈ L Lᵀ``.

    Attributes
    ----------
    lower:
        CSC lower-triangular incomplete factor with sorted indices.
    perm:
        Fill-reducing permutation applied before factorisation.
    shift:
        Final Manteuffel diagonal shift ``α`` (0 when no retry was needed).
    drop_tol:
        Drop tolerance the factor was computed with.
    """

    lower: sp.csc_matrix
    perm: np.ndarray
    shift: float
    drop_tol: float

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.lower.shape[0]

    @property
    def nnz(self) -> int:
        """Stored nonzeros of ``L``."""
        return int(self.lower.nnz)

    def fill_ratio(self, matrix: sp.spmatrix) -> float:
        """nnz(L) relative to nnz(tril(A)) — a fill-in diagnostic."""
        base = sp.tril(matrix).nnz
        return float(self.nnz) / max(base, 1)


def _stored_diag_mask(a_lower: sp.csc_matrix) -> np.ndarray:
    """Columns of the (sorted) tril whose first stored entry is the diagonal.

    The Manteuffel retry bumps exactly these positions; a structurally
    missing diagonal cannot be shifted into existence, and such a matrix
    fails the factorisation's structural check regardless of the shift —
    matching the old dense ``A + α·diag(A)`` behaviour, where the added
    entry was an explicit zero that still broke down.
    """
    n = a_lower.shape[0]
    heads = a_lower.indptr[:-1]
    has_diag = np.diff(a_lower.indptr) > 0
    if a_lower.indices.shape[0]:
        safe_heads = np.where(has_diag, heads, 0)
        has_diag &= a_lower.indices[safe_heads] == np.arange(n)
    return has_diag


def _leaf_columns(
    lcols: np.ndarray,
    a_indptr: np.ndarray,
    a_indices: np.ndarray,
    a_data: np.ndarray,
    drop_tol: float,
    max_fill: "int | None",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Factor every dependency-free leaf column in one vectorised batch.

    A leaf column receives no updates, so ``L(:, j)`` is just ``A(j:n, j)``
    with the pivot square-rooted, the rest scaled by it, and the drop rule
    applied.  The arithmetic matches the scalar path operation for
    operation, except the column 1-norm is accumulated per column by
    ``np.add.reduceat`` (sequential) where the scalar path uses
    ``np.sum`` (pairwise) — the norm only positions the drop threshold,
    so the kept *values* are identical either way and the kept *pattern*
    can differ only for entries within a rounding error of the threshold.
    Returns ``(ptr, rows, vals, diags)`` where ``ptr`` delimits each
    leaf's kept below-diagonal entries.
    """
    starts = a_indptr[lcols]
    ends = a_indptr[lcols + 1]
    pivots = a_data[starts]
    nonpos = np.flatnonzero(pivots <= 0.0)
    if nonpos.size:
        raise CholeskyBreakdownError(
            f"nonpositive pivot {pivots[nonpos[0]]:g} at column {int(lcols[nonpos[0]])}"
        )
    diags = np.sqrt(pivots)

    counts = (ends - starts - 1).astype(np.int64)
    total = int(counts.sum())
    offsets = np.zeros(lcols.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    take = np.arange(total, dtype=np.int64) + np.repeat(starts + 1 - offsets, counts)
    rows_b = a_indices[take].astype(np.int64)
    vals_b = a_data[take]
    col_of = np.repeat(np.arange(lcols.shape[0]), counts)
    # per-column 1-norms (diagonal included): sum each compacted segment
    # independently, so one column's norm never depends on another's mass
    below_sums = np.zeros(lcols.shape[0])
    nonempty = counts > 0
    if total:
        # empty segments occupy no space in the compacted array, so the
        # nonempty starts are exactly the reduceat boundaries
        below_sums[nonempty] = np.add.reduceat(np.abs(vals_b), offsets[nonempty])
    col_norms = np.abs(pivots) + below_sums
    keep = np.abs(vals_b) > drop_tol * col_norms[col_of]
    kept_counts = np.bincount(col_of[keep], minlength=lcols.shape[0])
    rows_b = rows_b[keep]
    vals_b = vals_b[keep]          # unscaled until after the fill cap
    col_kept = col_of[keep]
    if max_fill is not None and kept_counts.size and int(kept_counts.max()) > max_fill:
        # rare: ILUT-style per-column cap — trim only the offending
        # columns, partitioning the *unscaled* magnitudes exactly like
        # the scalar path does
        ptr = np.zeros(lcols.shape[0] + 1, dtype=np.int64)
        np.cumsum(kept_counts, out=ptr[1:])
        keep_cap = np.ones(rows_b.shape[0], dtype=bool)
        for c in np.flatnonzero(kept_counts > max_fill):
            lo, hi = int(ptr[c]), int(ptr[c + 1])
            seg = np.abs(vals_b[lo:hi])
            drop = np.argpartition(seg, seg.shape[0] - max_fill)[:seg.shape[0] - max_fill]
            keep_cap[lo + drop] = False
        rows_b = rows_b[keep_cap]
        vals_b = vals_b[keep_cap]
        col_kept = col_kept[keep_cap]
        kept_counts = np.minimum(kept_counts, max_fill)
    vals_b = vals_b / diags[col_kept]
    ptr = np.zeros(lcols.shape[0] + 1, dtype=np.int64)
    np.cumsum(kept_counts, out=ptr[1:])
    return ptr, rows_b, vals_b, diags


def _ict_factor(
    n: int,
    a_indptr: np.ndarray,
    a_indices: np.ndarray,
    a_data: np.ndarray,
    drop_tol: float,
    max_fill: "int | None",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Core ICT sweep over already-permuted (and shifted) tril CSC arrays.

    Returns the factor as CSC ``(indptr, rows, vals)`` — every column
    stores its diagonal first, then the kept below-diagonal entries in
    ascending row order, so the arrays are a valid sorted CSC matrix as
    is.  Raises :class:`CholeskyBreakdownError` on a nonpositive pivot or
    a structurally missing diagonal.
    """
    column_nnz = np.diff(a_indptr)
    bad = np.flatnonzero(column_nnz == 0)
    if bad.size:
        raise CholeskyBreakdownError(
            f"structurally missing diagonal at column {int(bad[0])}"
        )
    bad = np.flatnonzero(a_indices[a_indptr[:-1]] != np.arange(n))
    if bad.size:
        raise CholeskyBreakdownError(
            f"structurally missing diagonal at column {int(bad[0])}"
        )

    # dependency-free leaves: a node with no lower-numbered neighbour in A
    # has a structurally empty row of L (row patterns are reachability sets
    # of the earlier neighbours), so no earlier column can ever update it —
    # the whole batch factors vectorised up front, whatever gets dropped
    is_diag = np.zeros(a_indices.shape[0], dtype=bool)
    is_diag[a_indptr[:-1]] = True
    has_earlier = np.zeros(n, dtype=bool)
    has_earlier[a_indices[~is_diag]] = True
    leaf = ~has_earlier
    lcols = np.flatnonzero(leaf)
    if lcols.size:
        leaf_slot = np.full(n, -1, dtype=np.int64)
        leaf_slot[lcols] = np.arange(lcols.shape[0])
        leaf_ptr, leaf_rows, leaf_vals, leaf_diag = _leaf_columns(
            lcols, a_indptr, a_indices, a_data, drop_tol, max_fill
        )

    # the computed factor lives in one growable arena (rows/vals plus a
    # start/end pair per column); columns are appended in order, so the
    # arena read front-to-back *is* the CSC layout of L.  The per-column
    # scalar state (starts, ends, cursors, FIFO chains) lives in plain
    # Python lists: scalar list access is several times cheaper than numpy
    # scalar indexing, and this loop is all scalar bookkeeping.
    capacity = max(2 * a_indices.shape[0], 64)
    out_rows = np.empty(capacity, dtype=np.int64)
    out_vals = np.empty(capacity)
    out_start = [0] * n
    out_end = [0] * n
    used = 0

    # Jones–Plassmann work lists as flat FIFO chains: head/tail anchor the
    # columns whose cursor row is r, link threads them.  FIFO preserves the
    # reference update order (and therefore its floating-point rounding).
    head = [-1] * n
    tail = [-1] * n
    link = [-1] * n
    cursor = [0] * n

    w = np.zeros(n)  # dense scratch column
    leaf_flags = leaf.tolist()

    for j in range(n):
        if leaf_flags[j]:
            slot = leaf_slot[j]
            lo, hi = leaf_ptr[slot], leaf_ptr[slot + 1]
            below = leaf_rows[lo:hi]
            vals_below = leaf_vals[lo:hi]
            diag = leaf_diag[slot]
        else:
            start, end = a_indptr[j], a_indptr[j + 1]
            rows_a = a_indices[start:end]
            vals_a = a_data[start:end]
            w[rows_a] = vals_a
            col_norm = float(np.abs(vals_a).sum())
            touched = [rows_a]

            k = head[j]
            head[j] = -1
            while k != -1:
                base = out_start[k] + cursor[k]
                stop = out_end[k]
                seg_rows = out_rows[base:stop]
                seg_vals = out_vals[base:stop]
                w[seg_rows] -= seg_vals[0] * seg_vals
                touched.append(seg_rows)
                nxt = link[k]
                if base + 1 < stop:
                    cursor[k] += 1
                    r = int(out_rows[base + 1])
                    link[k] = -1
                    if head[r] == -1:
                        head[r] = k
                    else:
                        link[tail[r]] = k
                    tail[r] = k
                k = nxt

            pivot = w[j]
            if pivot <= 0.0:
                raise CholeskyBreakdownError(
                    f"nonpositive pivot {pivot:g} at column {j}"
                )
            diag = np.sqrt(pivot)

            # candidate pattern: one sort of the gathered segment rows.  At
            # ~tens of sorted segments per column an elementwise in-place
            # merge costs more numpy dispatch than this single small sort.
            idx = np.unique(np.concatenate(touched)) if len(touched) > 1 else rows_a
            vals = w[idx]
            w[idx] = 0.0
            below_mask = idx > j
            below = idx[below_mask]
            vals_below = vals[below_mask]

            keep = np.abs(vals_below) > drop_tol * col_norm
            below = below[keep]
            vals_below = vals_below[keep]
            if max_fill is not None and below.shape[0] > max_fill:
                top = np.argpartition(np.abs(vals_below), -max_fill)[-max_fill:]
                order = np.sort(top)
                below = below[order]
                vals_below = vals_below[order]
            vals_below = vals_below / diag

        count = 1 + below.shape[0]
        if used + count > out_rows.shape[0]:
            grown = max(2 * out_rows.shape[0], used + count)
            out_rows = np.concatenate(
                [out_rows[:used], np.empty(grown - used, dtype=np.int64)]
            )
            out_vals = np.concatenate([out_vals[:used], np.empty(grown - used)])
        out_rows[used] = j
        out_vals[used] = diag
        out_rows[used + 1:used + count] = below
        out_vals[used + 1:used + count] = vals_below
        out_start[j] = used
        out_end[j] = used + count
        used += count
        if count > 1:
            cursor[j] = 1
            r = int(below[0])
            if head[r] == -1:
                head[r] = j
            else:
                link[tail[r]] = j
            tail[r] = j

    indptr = np.zeros(n + 1, dtype=np.int64)
    lengths = np.asarray(out_end, dtype=np.int64) - np.asarray(out_start, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    return indptr, out_rows[:used], out_vals[:used]


def ichol(
    matrix: sp.spmatrix,
    drop_tol: float = 1e-3,
    ordering: str = "natural",
    perm: "np.ndarray | None" = None,
    max_fill: "int | None" = None,
    initial_shift: float = 0.0,
    max_retries: int = 12,
) -> ICholResult:
    """Threshold incomplete Cholesky with diagonal-shift breakdown recovery.

    Parameters
    ----------
    matrix:
        Sparse symmetric positive-definite (or SDD) matrix.
    drop_tol:
        Relative drop tolerance τ; entries below ``τ·‖A(j:n,j)‖₁`` are
        discarded.  The paper uses ``1e-3``.  ``drop_tol=0`` yields the
        complete factor (no dropping).
    ordering:
        Fill-reducing ordering name (see :mod:`repro.cholesky.ordering`);
        ignored when ``perm`` is given.
    perm:
        Explicit permutation.
    max_fill:
        Optional cap on off-diagonal entries kept per column (ILUT-style
        ``p`` parameter); ``None`` keeps everything above the threshold.
    initial_shift:
        Starting Manteuffel shift ``α``; the retry loop doubles it on
        breakdown up to ``max_retries`` times.  The permuted ``tril``
        structure is extracted once and shared by every retry — a shift
        only bumps the stored diagonal values.
    """
    check_square_sparse(matrix, "matrix")
    if drop_tol < 0:
        raise ValueError(f"drop_tol must be >= 0, got {drop_tol}")
    if max_fill is not None:
        check_positive(max_fill, "max_fill")

    csc = sp.csc_matrix(matrix).astype(np.float64)
    n = csc.shape[0]
    if perm is None:
        perm = compute_ordering(csc, method=ordering)
    else:
        perm = np.asarray(perm, dtype=np.int64)
    permuted = permute_symmetric(csc, perm).tocsc()
    permuted.sort_indices()

    a_lower = sp.csc_matrix(sp.tril(permuted))
    a_lower.sort_indices()
    base_diag = permuted.diagonal()
    diag_mask = _stored_diag_mask(a_lower)
    shift = float(initial_shift)
    attempt = 0
    while True:
        if shift == 0.0:
            data = a_lower.data
        else:
            # the shift touches only stored diagonals (first entry of each
            # tril column) — pattern, indices and indptr are all reused
            data = a_lower.data.copy()
            data[a_lower.indptr[:-1][diag_mask]] += shift * base_diag[diag_mask]
        try:
            indptr, rows, vals = _ict_factor(
                n, a_lower.indptr, a_lower.indices, data, drop_tol, max_fill
            )
            break
        except CholeskyBreakdownError:
            attempt += 1
            if attempt > max_retries:
                raise
            shift = max(shift * 2.0, 1e-6)

    lower = sp.csc_matrix((vals, rows, indptr), shape=(n, n))
    # each column stores its diagonal first, then ascending below rows
    lower.has_sorted_indices = True
    return ICholResult(lower=lower, perm=perm, shift=shift, drop_tol=drop_tol)


def ic0(matrix: sp.spmatrix, ordering: str = "natural", perm: "np.ndarray | None" = None) -> ICholResult:
    """Zero-fill incomplete Cholesky IC(0): keep only A's own pattern.

    Implemented as ICT with an infinite drop threshold via ``max_fill`` on
    the original pattern — simple and adequate as a PCG preconditioner
    baseline in tests (ICT with the paper's τ is what Alg. 3 uses).
    """
    check_square_sparse(matrix, "matrix")
    csc = sp.csc_matrix(matrix).astype(np.float64)
    n = csc.shape[0]
    if perm is None:
        perm = compute_ordering(csc, method=ordering)
    else:
        perm = np.asarray(perm, dtype=np.int64)
    permuted = permute_symmetric(csc, perm).tocsc()

    a_lower = sp.csc_matrix(sp.tril(permuted))
    a_lower.sort_indices()
    base_diag = permuted.diagonal()
    diag_mask = _stored_diag_mask(a_lower)
    shift = 0.0
    attempt = 0
    while True:
        # the tril structure is shift-invariant: clone it and bump only
        # the stored diagonal values on a retry
        lower = a_lower.copy()
        if shift != 0.0:
            lower.data[lower.indptr[:-1][diag_mask]] += shift * base_diag[diag_mask]
        try:
            _ic0_factor(lower)
            break
        except CholeskyBreakdownError:
            attempt += 1
            if attempt > 12:
                raise
            shift = max(shift * 2.0, 1e-6)
    return ICholResult(lower=lower, perm=perm, shift=shift, drop_tol=float("inf"))


def _ic0_factor(lower: sp.csc_matrix) -> sp.csc_matrix:
    """IC(0) numeric sweep on A's own lower-triangular pattern (in place).

    ``lower`` must be the (sorted) lower triangle of the matrix to factor;
    its ``data`` is overwritten with the factor values.  The left-looking
    update of column ``k`` locates its target positions with one
    ``searchsorted`` over the column's sorted row indices per contributing
    entry, instead of probing a per-column ``dict`` row by row — the same
    subtractions in the same order, so the computed values match the
    scalar reference bit for bit, without the quadratic Python inner loop.
    """
    n = lower.shape[0]
    lp, li, lx = lower.indptr, lower.indices, lower.data
    for j in range(n):
        start, end = lp[j], lp[j + 1]
        if start == end or li[start] != j:
            raise CholeskyBreakdownError(f"missing diagonal at column {j}")
        pivot = lx[start]
        if pivot <= 0:
            raise CholeskyBreakdownError(f"nonpositive pivot {pivot:g} at column {j}")
        diag = np.sqrt(pivot)
        lx[start] = diag
        lx[start + 1:end] /= diag
        for t in range(start + 1, end):
            k = int(li[t])
            ljk = lx[t]
            rows_k = li[lp[k]:lp[k + 1]]
            if rows_k.shape[0] == 0:
                # structurally empty target column: nothing to update, and
                # column k's own turn raises the clean breakdown error
                continue
            seg_rows = li[t:end]  # rows >= k, the only candidate targets
            pos = np.minimum(
                np.searchsorted(rows_k, seg_rows), rows_k.shape[0] - 1
            )
            hit = rows_k[pos] == seg_rows
            lx[lp[k] + pos[hit]] -= ljk * lx[t:end][hit]
    return lower
