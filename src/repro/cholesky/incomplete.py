"""Threshold incomplete Cholesky factorisation — ICT(τ).

Alg. 3 of the paper runs an *incomplete* Cholesky factorisation of the
grounded Laplacian with drop tolerance 1e-3 before computing the sparse
approximate inverse.  Dropping small fill-ins "corresponds to setting some
branches with large resistances to open and does not introduce large errors
to effective resistances" (Section III-C).

This module implements the column-wise (left-looking) threshold algorithm —
the same scheme as MATLAB's ``ichol(..., 'ict')``:

* column ``j`` gathers the original entries ``A(j:n, j)`` and subtracts the
  contributions ``L(j:n, k) · L(j, k)`` of every earlier column ``k`` with
  ``L(j, k) ≠ 0``;
* entries smaller in magnitude than ``drop_tol · ‖A(j:n, j)‖₁`` are dropped;
* the Jones–Plassmann linked-list device finds the contributing columns in
  O(1) per contribution: each finished column keeps a cursor to its next
  untouched row index and is filed under that row's to-do list.

For SDD M-matrices (grounded Laplacians) every off-diagonal stays
nonpositive — the structural property Lemma 1 needs.  Zero/negative pivots
(possible for *incomplete* factorisations even of definite matrices) are
handled by the standard Manteuffel diagonal-shift retry loop:
``A + α·diag(A)`` with doubling ``α``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.cholesky.ordering import compute_ordering, permute_symmetric
from repro.utils.validation import check_positive, check_square_sparse


class CholeskyBreakdownError(np.linalg.LinAlgError):
    """Raised when an incomplete factorisation hits a nonpositive pivot."""


@dataclass
class ICholResult:
    """Incomplete Cholesky factor ``L`` with ``P(A + αD)Pᵀ ≈ L Lᵀ``.

    Attributes
    ----------
    lower:
        CSC lower-triangular incomplete factor with sorted indices.
    perm:
        Fill-reducing permutation applied before factorisation.
    shift:
        Final Manteuffel diagonal shift ``α`` (0 when no retry was needed).
    drop_tol:
        Drop tolerance the factor was computed with.
    """

    lower: sp.csc_matrix
    perm: np.ndarray
    shift: float
    drop_tol: float

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.lower.shape[0]

    @property
    def nnz(self) -> int:
        """Stored nonzeros of ``L``."""
        return int(self.lower.nnz)

    def fill_ratio(self, matrix: sp.spmatrix) -> float:
        """nnz(L) relative to nnz(tril(A)) — a fill-in diagnostic."""
        base = sp.tril(matrix).nnz
        return float(self.nnz) / max(base, 1)


def _ict_factor(
    csc: sp.csc_matrix, drop_tol: float, max_fill: "int | None"
) -> "tuple[list[np.ndarray], list[np.ndarray]]":
    """Core ICT sweep on an already-permuted CSC matrix.

    Returns per-column row-index and value arrays (diagonal entry first).
    Raises :class:`CholeskyBreakdownError` on a nonpositive pivot.
    """
    n = csc.shape[0]
    a_lower = sp.csc_matrix(sp.tril(csc))
    a_indptr, a_indices, a_data = a_lower.indptr, a_lower.indices, a_lower.data

    col_rows: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    col_vals: list[np.ndarray] = [np.empty(0)] * n
    # Jones–Plassmann work lists: todo[j] holds columns whose cursor row == j
    todo: list[list[int]] = [[] for _ in range(n)]
    cursor = np.zeros(n, dtype=np.int64)

    w = np.zeros(n)  # dense scratch column

    for j in range(n):
        a_start, a_end = a_indptr[j], a_indptr[j + 1]
        rows_a = a_indices[a_start:a_end]
        vals_a = a_data[a_start:a_end]
        if rows_a.size == 0 or rows_a[0] != j:
            raise CholeskyBreakdownError(f"structurally missing diagonal at column {j}")
        w[rows_a] = vals_a
        col_norm = float(np.abs(vals_a).sum())
        touched = [rows_a]

        for k in todo[j]:
            rows_k = col_rows[k]
            vals_k = col_vals[k]
            ptr = int(cursor[k])
            ljk = vals_k[ptr]
            segment_rows = rows_k[ptr:]
            w[segment_rows] -= ljk * vals_k[ptr:]
            touched.append(segment_rows)
            if ptr + 1 < rows_k.shape[0]:
                cursor[k] = ptr + 1
                todo[int(rows_k[ptr + 1])].append(k)
        todo[j] = []

        pivot = w[j]
        if pivot <= 0.0:
            # reset scratch before bailing so a retry can reuse it
            for arr in touched:
                w[arr] = 0.0
            raise CholeskyBreakdownError(f"nonpositive pivot {pivot:g} at column {j}")
        diag = np.sqrt(pivot)

        idx = np.unique(np.concatenate(touched)) if len(touched) > 1 else np.sort(rows_a)
        below = idx[idx > j]
        vals_below = w[below]
        w[idx] = 0.0

        keep = np.abs(vals_below) > drop_tol * col_norm
        below = below[keep]
        vals_below = vals_below[keep]
        if max_fill is not None and below.shape[0] > max_fill:
            top = np.argpartition(np.abs(vals_below), -max_fill)[-max_fill:]
            order = np.sort(top)
            below = below[order]
            vals_below = vals_below[order]

        col_rows[j] = np.concatenate([np.array([j], dtype=np.int64), below])
        col_vals[j] = np.concatenate([np.array([diag]), vals_below / diag])
        if below.shape[0]:
            cursor[j] = 1
            todo[int(below[0])].append(j)

    return col_rows, col_vals


def ichol(
    matrix: sp.spmatrix,
    drop_tol: float = 1e-3,
    ordering: str = "natural",
    perm: "np.ndarray | None" = None,
    max_fill: "int | None" = None,
    initial_shift: float = 0.0,
    max_retries: int = 12,
) -> ICholResult:
    """Threshold incomplete Cholesky with diagonal-shift breakdown recovery.

    Parameters
    ----------
    matrix:
        Sparse symmetric positive-definite (or SDD) matrix.
    drop_tol:
        Relative drop tolerance τ; entries below ``τ·‖A(j:n,j)‖₁`` are
        discarded.  The paper uses ``1e-3``.  ``drop_tol=0`` yields the
        complete factor (no dropping).
    ordering:
        Fill-reducing ordering name (see :mod:`repro.cholesky.ordering`);
        ignored when ``perm`` is given.
    perm:
        Explicit permutation.
    max_fill:
        Optional cap on off-diagonal entries kept per column (ILUT-style
        ``p`` parameter); ``None`` keeps everything above the threshold.
    initial_shift:
        Starting Manteuffel shift ``α``; the retry loop doubles it on
        breakdown up to ``max_retries`` times.
    """
    check_square_sparse(matrix, "matrix")
    if drop_tol < 0:
        raise ValueError(f"drop_tol must be >= 0, got {drop_tol}")
    if max_fill is not None:
        check_positive(max_fill, "max_fill")

    csc = sp.csc_matrix(matrix).astype(np.float64)
    n = csc.shape[0]
    if perm is None:
        perm = compute_ordering(csc, method=ordering)
    else:
        perm = np.asarray(perm, dtype=np.int64)
    permuted = permute_symmetric(csc, perm).tocsc()
    permuted.sort_indices()

    base_diag = permuted.diagonal()
    shift = float(initial_shift)
    attempt = 0
    while True:
        candidate = permuted if shift == 0.0 else (permuted + sp.diags(shift * base_diag)).tocsc()
        try:
            col_rows, col_vals = _ict_factor(candidate, drop_tol, max_fill)
            break
        except CholeskyBreakdownError:
            attempt += 1
            if attempt > max_retries:
                raise
            shift = max(shift * 2.0, 1e-6)

    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.cumsum([r.shape[0] for r in col_rows])
    indices = np.concatenate(col_rows) if n else np.empty(0, dtype=np.int64)
    data = np.concatenate(col_vals) if n else np.empty(0)
    lower = sp.csc_matrix((data, indices, indptr), shape=(n, n))
    lower.sort_indices()
    return ICholResult(lower=lower, perm=perm, shift=shift, drop_tol=drop_tol)


def ic0(matrix: sp.spmatrix, ordering: str = "natural", perm: "np.ndarray | None" = None) -> ICholResult:
    """Zero-fill incomplete Cholesky IC(0): keep only A's own pattern.

    Implemented as ICT with an infinite drop threshold via ``max_fill`` on
    the original pattern — simple and adequate as a PCG preconditioner
    baseline in tests (ICT with the paper's τ is what Alg. 3 uses).
    """
    check_square_sparse(matrix, "matrix")
    csc = sp.csc_matrix(matrix).astype(np.float64)
    n = csc.shape[0]
    if perm is None:
        perm = compute_ordering(csc, method=ordering)
    else:
        perm = np.asarray(perm, dtype=np.int64)
    permuted = permute_symmetric(csc, perm).tocsc()

    base_diag = permuted.diagonal()
    shift = 0.0
    attempt = 0
    while True:
        candidate = permuted if shift == 0.0 else (permuted + sp.diags(shift * base_diag)).tocsc()
        try:
            lower = _ic0_factor(candidate)
            break
        except CholeskyBreakdownError:
            attempt += 1
            if attempt > 12:
                raise
            shift = max(shift * 2.0, 1e-6)
    return ICholResult(lower=lower, perm=perm, shift=shift, drop_tol=float("inf"))


def _ic0_factor(csc: sp.csc_matrix) -> sp.csc_matrix:
    """IC(0) numeric sweep on A's own lower-triangular pattern."""
    n = csc.shape[0]
    lower = sp.csc_matrix(sp.tril(csc)).copy()
    lower.sort_indices()
    lp, li, lx = lower.indptr, lower.indices, lower.data

    # column-oriented IC(0): for each column j, divide by pivot then update
    # later columns restricted to their existing pattern
    col_positions = {}
    for j in range(n):
        col_positions[j] = {int(li[t]): t for t in range(lp[j], lp[j + 1])}
    for j in range(n):
        start, end = lp[j], lp[j + 1]
        if li[start] != j:
            raise CholeskyBreakdownError(f"missing diagonal at column {j}")
        pivot = lx[start]
        if pivot <= 0:
            raise CholeskyBreakdownError(f"nonpositive pivot {pivot:g} at column {j}")
        diag = np.sqrt(pivot)
        lx[start] = diag
        lx[start + 1:end] /= diag
        for t in range(start + 1, end):
            k = int(li[t])
            ljk = lx[t]
            positions = col_positions[k]
            for s in range(t, end):
                i = int(li[s])
                hit = positions.get(i)
                if hit is not None:
                    lx[hit] -= ljk * lx[s]
    return lower
