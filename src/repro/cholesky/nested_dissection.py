"""Nested-dissection ordering built on the multilevel partitioner.

METIS's ``ndmetis`` orders a matrix by recursively bisecting its graph and
numbering each vertex separator *after* the two halves — separators end up
at the bottom-right of the factor, which both limits fill and keeps the
elimination tree (and hence the Eq. 11 depth that drives Theorem 1's error
bound) shallow: O(log n) levels of separators.

This implementation reuses :func:`repro.partition.multilevel.multilevel_bisection`
to find balanced edge cuts, converts each cut into a vertex separator (the
smaller endpoint set of the cut edges), and recurses until blocks are small
enough for minimum degree to finish locally.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.cholesky.ordering import minimum_degree_ordering
from repro.graphs.graph import Graph
from repro.partition.multilevel import multilevel_bisection
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_square_sparse


def _graph_from_matrix(matrix: sp.spmatrix) -> Graph:
    """Structure-only graph of a symmetric sparse matrix."""
    coo = sp.coo_matrix(matrix)
    mask = coo.row < coo.col
    heads = coo.row[mask].astype(np.int64)
    tails = coo.col[mask].astype(np.int64)
    return Graph(matrix.shape[0], heads, tails, np.ones(heads.shape[0]))


def vertex_separator(graph: Graph, side: np.ndarray) -> np.ndarray:
    """Turn an edge cut into a vertex separator (smaller endpoint side).

    Public because the separator-sharded engine
    (:mod:`repro.core.partitioned`) reuses exactly this extraction when
    dissecting one large component into regions.
    """
    crossing = side[graph.heads] != side[graph.tails]
    left_ends = np.unique(
        np.concatenate(
            [graph.heads[crossing][side[graph.heads[crossing]]],
             graph.tails[crossing][side[graph.tails[crossing]]]]
        )
    ) if crossing.any() else np.empty(0, dtype=np.int64)
    right_ends = np.unique(
        np.concatenate(
            [graph.heads[crossing][~side[graph.heads[crossing]]],
             graph.tails[crossing][~side[graph.tails[crossing]]]]
        )
    ) if crossing.any() else np.empty(0, dtype=np.int64)
    return left_ends if left_ends.size <= right_ends.size else right_ends


def nested_dissection_ordering(
    matrix: sp.spmatrix,
    leaf_size: int = 64,
    seed: "int | np.random.Generator | None" = 0,
) -> np.ndarray:
    """Nested-dissection permutation of a symmetric sparse matrix.

    Parameters
    ----------
    matrix:
        Symmetric sparse matrix (structure only is used).
    leaf_size:
        Blocks at or below this size are ordered with minimum degree.
    seed:
        Seed for the partitioner's randomised coarsening.
    """
    check_square_sparse(matrix, "matrix")
    rng = ensure_rng(seed)
    graph = _graph_from_matrix(matrix)
    csc = sp.csc_matrix(matrix)
    order: list[int] = []

    def dissect(nodes: np.ndarray) -> None:
        if nodes.size <= leaf_size:
            if nodes.size:
                local = csc[nodes, :][:, nodes]
                local_perm = minimum_degree_ordering(local)
                order.extend(int(v) for v in nodes[local_perm])
            return
        sub, original = graph.subgraph(nodes)
        if sub.num_edges == 0:
            order.extend(int(v) for v in nodes)
            return
        side = multilevel_bisection(sub, seed=rng)
        if not side.any() or side.all():
            order.extend(int(v) for v in nodes)  # could not split further
            return
        separator_local = vertex_separator(sub, side)
        in_separator = np.zeros(sub.num_nodes, dtype=bool)
        in_separator[separator_local] = True
        left_local = np.flatnonzero(side & ~in_separator)
        right_local = np.flatnonzero(~side & ~in_separator)
        dissect(original[left_local])
        dissect(original[right_local])
        order.extend(int(v) for v in original[separator_local])

    dissect(np.arange(graph.num_nodes, dtype=np.int64))
    perm = np.asarray(order, dtype=np.int64)
    if perm.shape[0] != graph.num_nodes:
        raise AssertionError("nested dissection lost nodes — bug")
    return perm
