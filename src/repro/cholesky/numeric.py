"""Numeric sparse Cholesky factorisation.

Two interchangeable engines produce the same factor:

* :func:`cholesky_uplooking` — a pure-Python/numpy up-looking factorisation
  (Davis, ch. 4) driven by the symbolic pattern.  It is the *reference*
  implementation: transparent, exact, and independent of any third-party
  solver, but with a per-row Python loop.
* :func:`cholesky` with ``engine="superlu"`` (default) — a fast path that
  obtains ``L`` from SuperLU's unpivoted LDU factorisation of the permuted
  SPD matrix: for SPD ``A = L_u · U`` with unit-diagonal ``L_u`` and
  ``U = D·L_uᵀ``, the Cholesky factor is ``L = L_u · D^{1/2}``.

Both paths honour a caller-supplied fill-reducing permutation and return a
:class:`CholeskyFactor` carrying the factor, the permutation and solve
helpers.  Tests cross-check the two engines against each other and against
dense ``numpy.linalg.cholesky``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.cholesky.ordering import compute_ordering, permute_symmetric
from repro.cholesky.symbolic import symbolic_factorization
from repro.cholesky.triangular import solve_lower, solve_lower_transpose
from repro.utils.validation import check_square_sparse


@dataclass
class CholeskyFactor:
    """Result of a sparse Cholesky factorisation ``P A Pᵀ = L Lᵀ``.

    Attributes
    ----------
    lower:
        Sparse lower-triangular factor ``L`` (CSC, sorted indices).
    perm:
        Permutation vector: ``perm[k]`` is the original index eliminated at
        step ``k`` (i.e. ``(P A Pᵀ)[i, j] = A[perm[i], perm[j]]``).
    """

    lower: sp.csc_matrix
    perm: np.ndarray

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.lower.shape[0]

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros of ``L``."""
        return int(self.lower.nnz)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` using the factorisation (1-D or 2-D rhs)."""
        rhs = np.asarray(rhs, dtype=np.float64)
        permuted = rhs[self.perm]
        y = solve_lower(self.lower, permuted)
        z = solve_lower_transpose(self.lower, y)
        out = np.empty_like(z)
        out[self.perm] = z
        return out

    def half_solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``L y = (P rhs)`` only (used by effective-resistance formulas).

        With ``P A Pᵀ = L Lᵀ``, Eq. (7) of the paper becomes
        ``R(p,q) = ||L⁻¹ P (e_p − e_q)||²``, so callers often need just the
        forward solve against the permuted right-hand side.
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        return solve_lower(self.lower, rhs[self.perm])

    def logdet(self) -> float:
        """Log-determinant of ``A``: ``2 Σ log diag(L)``."""
        return float(2.0 * np.sum(np.log(self.lower.diagonal())))


def cholesky_uplooking(
    matrix: sp.spmatrix, perm: "np.ndarray | None" = None
) -> CholeskyFactor:
    """Reference up-looking sparse Cholesky of an SPD matrix.

    Row ``i`` of ``L`` solves ``L[0:i, 0:i] · L[i, 0:i]ᵀ = A[0:i, i]``
    restricted to the symbolic pattern; the diagonal entry absorbs the
    remaining mass.  Raises :class:`numpy.linalg.LinAlgError` when the
    matrix is not positive definite.
    """
    check_square_sparse(matrix, "matrix")
    csc = sp.csc_matrix(matrix).astype(np.float64)
    n = csc.shape[0]
    if perm is None:
        perm = np.arange(n, dtype=np.int64)
    else:
        perm = np.asarray(perm, dtype=np.int64)
        csc = permute_symmetric(csc, perm).tocsc()

    sym = symbolic_factorization(csc)
    indptr, indices = sym.indptr, sym.indices
    values = np.zeros(indices.shape[0])

    # CSR view of the symbolic pattern: row i lists its column pattern in
    # ascending order, which is a valid topological order for the row solve.
    pattern = sp.csc_matrix(
        (np.arange(indices.shape[0], dtype=np.int64), indices, indptr), shape=(n, n)
    )
    rows_csr = pattern.tocsr()

    a_upper = sp.csc_matrix(sp.triu(csc))  # column i holds A[0:i+1, i]
    fill = np.zeros(n, dtype=np.int64)  # stored entries per column of L
    x = np.zeros(n)  # dense scratch for the sparse row solve

    for i in range(n):
        a_start, a_end = a_upper.indptr[i], a_upper.indptr[i + 1]
        scatter_rows = a_upper.indices[a_start:a_end]
        x[scatter_rows] = a_upper.data[a_start:a_end]
        diag_val = x[i]
        x[i] = 0.0

        r_start, r_end = rows_csr.indptr[i], rows_csr.indptr[i + 1]
        cols_j = rows_csr.indices[r_start:r_end]  # ascending; last one is i itself
        sumsq = 0.0
        for j in cols_j[:-1]:
            col_start = indptr[j]
            lij = x[j] / values[col_start]  # diagonal of column j stored first
            x[j] = 0.0
            if lij != 0.0:
                upd_start = col_start + 1
                upd_end = col_start + fill[j]
                ks = indices[upd_start:upd_end]
                x[ks] -= values[upd_start:upd_end] * lij
            values[col_start + fill[j]] = lij  # symbolic slot for row i
            fill[j] += 1
            sumsq += lij * lij

        remaining = diag_val - sumsq
        if remaining <= 0.0:
            raise np.linalg.LinAlgError(
                f"matrix is not positive definite (pivot {remaining:g} at step {i})"
            )
        values[indptr[i]] = np.sqrt(remaining)
        fill[i] = 1

    lower = sp.csc_matrix((values, indices.copy(), indptr.copy()), shape=(n, n))
    lower.sort_indices()
    return CholeskyFactor(lower=lower, perm=perm)


def cholesky(
    matrix: sp.spmatrix,
    ordering: str = "amd",
    perm: "np.ndarray | None" = None,
    engine: str = "superlu",
) -> CholeskyFactor:
    """Sparse Cholesky factorisation with fill-reducing ordering.

    Parameters
    ----------
    matrix:
        Sparse SPD matrix.
    ordering:
        One of ``"natural"``, ``"rcm"``, ``"amd"`` (minimum-degree, the
        default) — ignored when an explicit ``perm`` is given.
    perm:
        Explicit permutation vector overriding ``ordering``.
    engine:
        ``"superlu"`` (fast path, default) or ``"uplooking"`` (pure-Python
        reference implementation).
    """
    check_square_sparse(matrix, "matrix")
    csc = sp.csc_matrix(matrix)
    if perm is None:
        perm = compute_ordering(csc, method=ordering)
    else:
        perm = np.asarray(perm, dtype=np.int64)
    if engine == "uplooking":
        return cholesky_uplooking(csc, perm=perm)
    if engine != "superlu":
        raise ValueError(f"unknown engine {engine!r}")
    permuted = permute_symmetric(csc, perm).tocsc()
    lu = spla.splu(
        permuted,
        permc_spec="NATURAL",
        diag_pivot_thresh=0.0,
        options={"SymmetricMode": True},
    )
    if not np.array_equal(lu.perm_r, np.arange(csc.shape[0])):
        raise np.linalg.LinAlgError(
            "SuperLU pivoted during SymmetricMode factorisation; "
            "matrix is likely not positive definite"
        )
    diag = lu.U.diagonal()
    if np.any(diag <= 0):
        raise np.linalg.LinAlgError("matrix is not positive definite")
    lower = (lu.L @ sp.diags(np.sqrt(diag))).tocsc()
    lower.sort_indices()
    return CholeskyFactor(lower=lower, perm=perm)
