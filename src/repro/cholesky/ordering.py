"""Fill-reducing orderings (AMD/METIS substitute).

The quality of the paper's whole pipeline rests on the Cholesky factor of
the (grounded) Laplacian staying sparse, so a fill-reducing ordering is
applied before every factorisation.  Three methods are provided:

* ``natural`` — identity permutation (useful for reproducibility tests and
  for matrices already ordered, e.g. grid generators emit row-major order
  which is banded);
* ``rcm`` — reverse Cuthill–McKee via scipy, a bandwidth reducer that works
  well on mesh-like power grids;
* ``amd`` — our own quotient-graph minimum-degree ordering with element
  absorption (the classic precursor of AMD).  It produces markedly less
  fill than RCM on irregular graphs, at a Python-loop cost that is fine for
  the problem sizes of this reproduction.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.utils.validation import check_square_sparse


def permute_symmetric(matrix: sp.spmatrix, perm: np.ndarray) -> sp.csc_matrix:
    """Symmetric permutation ``(P A Pᵀ)[i, j] = A[perm[i], perm[j]]``."""
    check_square_sparse(matrix, "matrix")
    perm = np.asarray(perm, dtype=np.int64)
    n = matrix.shape[0]
    if perm.shape != (n,):
        raise ValueError(f"permutation has wrong length {perm.shape}, expected ({n},)")
    csr = sp.csr_matrix(matrix)
    return csr[perm, :][:, perm].tocsc()


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Return ``inv`` with ``inv[perm[k]] = k``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return inv


def rcm_ordering(matrix: sp.spmatrix) -> np.ndarray:
    """Reverse Cuthill–McKee ordering of a symmetric sparse matrix."""
    return np.asarray(
        reverse_cuthill_mckee(sp.csr_matrix(matrix), symmetric_mode=True), dtype=np.int64
    )


def minimum_degree_ordering(matrix: sp.spmatrix, exact_degree_limit: int = 48) -> np.ndarray:
    """Quotient-graph minimum-degree ordering with element absorption.

    The classic minimum-degree algorithm (George & Liu) on the quotient
    graph: eliminating pivot ``p`` replaces ``p`` and the elements adjacent
    to it with a single new element whose variable list is the union of
    their variable lists.  A binary heap with lazy invalidation selects the
    pivot.

    Degree updates use the AMD idea of *approximate* external degrees: the
    cheap upper bound ``|A_i| + Σ_e |L_e|`` replaces the exact (set-union)
    degree whenever the bound exceeds ``exact_degree_limit``.  On mesh-like
    matrices nearly all updates stay exact; on social-network graphs the
    bound avoids the O(hub²) unions that make exact minimum degree
    intractable.

    Returns the permutation ``perm`` such that eliminating in the order
    ``perm[0], perm[1], ...`` greedily minimises fill-in.
    """
    check_square_sparse(matrix, "matrix")
    n = matrix.shape[0]
    csr = sp.csr_matrix(matrix)
    csr.setdiag(0)
    csr.eliminate_zeros()

    # adjacency between still-uneliminated variables
    adj: list[set[int]] = [set(csr.indices[csr.indptr[i]:csr.indptr[i + 1]].tolist()) for i in range(n)]
    # elements adjacent to each variable (ids index `element_vars`)
    var_elements: list[set[int]] = [set() for _ in range(n)]
    element_vars: dict[int, set[int]] = {}

    degree = np.array([len(a) for a in adj], dtype=np.int64)
    heap: list[tuple[int, int]] = [(int(degree[i]), i) for i in range(n)]
    heapq.heapify(heap)
    eliminated = np.zeros(n, dtype=bool)
    perm = np.empty(n, dtype=np.int64)
    next_element = 0

    def current_degree(i: int) -> int:
        """External degree of ``i``: exact when cheap, AMD bound otherwise."""
        bound = len(adj[i]) + sum(len(element_vars[e]) for e in var_elements[i])
        if bound > exact_degree_limit and len(var_elements[i]) > 1:
            return bound
        reach = set(adj[i])
        for e in var_elements[i]:
            reach |= element_vars[e]
        reach.discard(i)
        return len(reach)

    for k in range(n):
        # pop until a live, up-to-date entry appears
        while True:
            deg, p = heapq.heappop(heap)
            if not eliminated[p] and deg == degree[p]:
                break

        # dense-tail cutoff (CHOLMOD-style): once the minimum degree spans
        # most of what remains, the rest is a quasi-clique — no ordering
        # gains are left, so append the remaining nodes by current degree
        remaining = n - k
        if deg >= 0.6 * remaining and remaining > 2:
            tail = np.flatnonzero(~eliminated)
            order = np.argsort(degree[tail], kind="stable")
            perm[k:] = tail[order]
            return perm

        eliminated[p] = True
        perm[k] = p

        # variable list of the new element: direct neighbours plus the
        # variables of every absorbed element
        new_vars = set(adj[p])
        absorbed = var_elements[p]
        for e in absorbed:
            new_vars |= element_vars[e]
        new_vars.discard(p)

        element_id = next_element
        next_element += 1
        element_vars[element_id] = new_vars

        for v in new_vars:
            mine = adj[v]
            mine.discard(p)
            # edges inside the element are now represented through it;
            # pick the cheaper set-difference direction
            if len(mine) * 4 < len(new_vars):
                adj[v] = {u for u in mine if u not in new_vars}
            else:
                mine -= new_vars
            var_elements[v] -= absorbed
            var_elements[v].add(element_id)
        for e in absorbed:
            del element_vars[e]
        adj[p] = set()
        var_elements[p] = set()

        for v in new_vars:
            degree[v] = current_degree(v)
            heapq.heappush(heap, (int(degree[v]), v))

    return perm


def compute_ordering(matrix: sp.spmatrix, method: str = "amd") -> np.ndarray:
    """Dispatch on ordering ``method``:
    ``natural`` | ``rcm`` | ``amd`` | ``nested_dissection``."""
    check_square_sparse(matrix, "matrix")
    n = matrix.shape[0]
    if method == "natural":
        return np.arange(n, dtype=np.int64)
    if method == "rcm":
        return rcm_ordering(matrix)
    if method in ("amd", "mindeg", "minimum_degree"):
        return minimum_degree_ordering(matrix)
    if method in ("nd", "nested_dissection"):
        from repro.cholesky.nested_dissection import nested_dissection_ordering

        return nested_dissection_ordering(matrix)
    raise ValueError(f"unknown ordering method {method!r}")
