"""Symbolic Cholesky factorisation: compute the pattern of ``L``.

Given the lower triangle of a symmetric matrix and its elimination tree, the
row pattern of ``L`` for row ``i`` is the union of paths from the nonzero
columns of row ``i`` of ``A`` up the elimination tree towards ``i`` (Davis,
Theorem 4.2).  Collecting those paths column-wise yields the full pattern of
``L`` without any numeric work, which the up-looking numeric factorisation
then fills in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.cholesky.etree import elimination_tree
from repro.utils.validation import check_square_sparse


@dataclass(frozen=True)
class SymbolicFactor:
    """Pattern of the Cholesky factor in CSC layout.

    Attributes
    ----------
    indptr, indices:
        CSC structure of ``L`` (diagonal entry first in every column —
        the numeric phase relies on that invariant).
    parent:
        Elimination tree used to derive the pattern.
    """

    indptr: np.ndarray
    indices: np.ndarray
    parent: np.ndarray

    @property
    def nnz(self) -> int:
        """Total number of stored entries of ``L`` (diagonal included)."""
        return int(self.indices.shape[0])


def symbolic_factorization(matrix: sp.spmatrix) -> SymbolicFactor:
    """Compute the exact pattern of the Cholesky factor of ``matrix``.

    Only the lower triangle is referenced.  Runs in O(|L|) time using the
    row-subtree characterisation.
    """
    check_square_sparse(matrix, "matrix")
    lower = sp.csr_matrix(sp.tril(matrix, k=-1))
    n = lower.shape[0]
    parent = elimination_tree(matrix)

    # First pass: count entries per column (diagonal included).
    counts = np.ones(n, dtype=np.int64)
    mark = -np.ones(n, dtype=np.int64)
    for i in range(n):
        mark[i] = i
        for idx in range(lower.indptr[i], lower.indptr[i + 1]):
            j = int(lower.indices[idx])
            while j != -1 and mark[j] != i:
                counts[j] += 1
                mark[j] = i
                j = int(parent[j])

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=np.int64)

    # Second pass: fill row indices. Place diagonals first, then append rows.
    fill_pos = indptr[:-1].copy()
    indices[fill_pos] = np.arange(n)
    fill_pos += 1
    mark[:] = -1
    for i in range(n):
        mark[i] = i
        for idx in range(lower.indptr[i], lower.indptr[i + 1]):
            j = int(lower.indices[idx])
            while j != -1 and mark[j] != i:
                indices[fill_pos[j]] = i
                fill_pos[j] += 1
                mark[j] = i
                j = int(parent[j])

    # Rows within each column arrive in increasing i automatically because the
    # outer loop runs i = 0..n-1; assert the invariant cheaply in debug terms.
    return SymbolicFactor(indptr=indptr, indices=indices, parent=parent)
