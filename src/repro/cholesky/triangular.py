"""Sparse triangular solves for CSC lower factors.

Thin wrappers around :func:`scipy.sparse.linalg.spsolve_triangular` with the
conventions used throughout the library: factors are CSC lower-triangular
with the diagonal present, right-hand sides may be 1-D vectors or 2-D
column-stacked blocks.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla


def solve_lower(lower: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L y = rhs`` for lower-triangular ``L``."""
    return spla.spsolve_triangular(sp.csr_matrix(lower), np.asarray(rhs, dtype=np.float64), lower=True)


def solve_lower_transpose(lower: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve ``Lᵀ z = rhs`` for lower-triangular ``L``."""
    upper = sp.csr_matrix(lower.T)
    return spla.spsolve_triangular(upper, np.asarray(rhs, dtype=np.float64), lower=False)


def spd_solve(lower: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L Lᵀ x = rhs`` (both triangular sweeps)."""
    return solve_lower_transpose(lower, solve_lower(lower, rhs))


def unit_vector(n: int, index: int) -> np.ndarray:
    """Dense standard basis vector ``e_index`` of dimension ``n``."""
    e = np.zeros(n)
    e[index] = 1.0
    return e
