"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``er``          effective resistances of a graph (file or generator);
                ``--method`` accepts any registered engine, ``--sharded``
                builds one sub-engine per connected component, and
                ``--save-engine``/``--load-engine`` persist/warm-start
                built Alg. 3 engines
``service``     serve batched/centrality queries via ResistanceService
                (same engine/persistence options as ``er``);
                ``--workers`` fans sharded sub-batches out over threads,
                ``--batch-window`` micro-batches repeated requests through
                AsyncResistanceService, ``--mmap`` maps a loaded engine
``dc``          DC operating point of a SPICE power grid
``transient``   Backward-Euler transient analysis of a SPICE power grid
``reduce``      Alg. 1 power-grid reduction (SPICE in → SPICE out)
``table1``      run one Table I benchmark case
``fig1``        reproduce the Fig. 1 waveform experiment
``lint``        run the repro.analysis invariant checker (lock discipline,
                registry purity, config-persistence drift, determinism,
                boundary validation, mutable defaults)

The CLI wraps the same public API the examples use; it exists so the
reproduction can be driven from shell scripts without writing Python.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _load_graph(args):
    """Build the graph from --edgelist/--mtx/--generator options."""
    from repro.graphs.generators import barabasi_albert_graph, fe_mesh_2d, grid_2d
    from repro.graphs.io import read_edgelist, read_matrix_market

    if args.edgelist:
        return read_edgelist(args.edgelist)
    if args.mtx:
        return read_matrix_market(args.mtx)
    kind, _, spec = (args.generator or "grid2d:40x40").partition(":")
    if kind == "grid2d":
        rows, _, cols = spec.partition("x")
        return grid_2d(int(rows or 40), int(cols or 40), jitter=0.3, seed=args.seed)
    if kind == "mesh2d":
        rows, _, cols = spec.partition("x")
        return fe_mesh_2d(int(rows or 40), int(cols or 40), seed=args.seed)
    if kind == "ba":
        return barabasi_albert_graph(int(spec or 5000), 3, seed=args.seed)
    raise SystemExit(f"unknown generator {args.generator!r}")


def _engine_config(args):
    """Fold the shared engine options into one EngineConfig."""
    from repro.core.engine import EngineConfig

    return EngineConfig(
        method=args.method, epsilon=args.epsilon, drop_tol=args.drop_tol,
        ordering=args.ordering, mode=args.mode, seed=args.seed,
        sharded=args.sharded, lazy_shards=args.lazy_shards,
        build_workers=args.build_workers,
        shard_strategy=args.shard_strategy,
        max_shard_nodes=args.max_shard_nodes,
        separator=args.separator,
        num_landmarks=args.num_landmarks,
        landmark_strategy=args.landmark_strategy,
        num_walks=args.num_walks,
        walk_length=args.walk_length,
        num_trees=args.num_trees,
    )


def _parse_tiers(args) -> "tuple[str, ...]":
    """The SLA tier ladder from --engine-tiers (default: landmark only)."""
    return tuple(
        name.strip()
        for name in (args.engine_tiers or "landmark").split(",")
        if name.strip()
    )


def _sla_requested(args) -> bool:
    return (
        args.rel_tol is not None
        or args.latency_budget is not None
        or args.engine_tiers is not None
    )


def _print_tier_summary(report) -> None:
    if report is None or not report.tier_rows:
        return
    split = ", ".join(
        f"{tier}={rows}" for tier, rows in report.tier_rows.items()
    )
    print(f"tier split (distinct pairs): {split}", file=sys.stderr)


def _reject_graph_source_with_load(args) -> None:
    """A loaded engine brings its own graph and configuration."""
    if args.edgelist or args.mtx or args.generator:
        raise SystemExit(
            "--load-engine restores the saved graph and engine settings; "
            "remove --edgelist/--mtx/--generator (engine options are "
            "taken from the saved file too)"
        )


def _save_engine(engine, path) -> None:
    try:
        saved = engine.save(path)
    except NotImplementedError as exc:
        raise SystemExit(str(exc))
    print(f"engine saved to {saved}", file=sys.stderr)


def _print_partition_report(engine) -> None:
    """Pretty-print PartitionedEngine.partition_report() (er --partition-report)."""
    from repro.core.partitioned import PartitionedEngine

    if not isinstance(engine, PartitionedEngine):
        raise SystemExit(
            "--partition-report needs a sharded engine; add --sharded or "
            "--shard-strategy separator"
        )
    report = engine.partition_report()
    out = sys.stderr
    print(
        f"partition: strategy={report['strategy']} "
        f"shards={report['num_shards']} "
        f"components={report['num_components']} "
        f"split_components={report['split_components']} "
        f"separator_size={report['separator_size']}",
        file=out,
    )
    part = report["partition"]
    print(
        f"  blocks: sizes={report['shard_sizes']} "
        f"imbalance={part.imbalance:.3f} cut_weight={part.cut_weight:.4g}",
        file=out,
    )
    for sq in report["separators"]:
        print(
            f"  component {sq.component}: regions={sq.num_regions} "
            f"sizes={sq.region_sizes.tolist()} "
            f"separator={sq.separator_size} "
            f"({100.0 * sq.separator_fraction:.1f}% of component) "
            f"imbalance={sq.imbalance:.3f} "
            f"coupling_weight={sq.coupling_weight:.4g}",
            file=out,
        )


def cmd_er(args) -> int:
    """Compute effective resistances and print/save them."""
    from repro.core.engine import build_engine

    if args.load_engine:
        from repro.core.persistence import load_engine

        _reject_graph_source_with_load(args)
        engine = load_engine(args.load_engine)
        graph = engine.graph
        print(f"engine loaded from {args.load_engine}", file=sys.stderr)
    else:
        graph = _load_graph(args)
        engine = build_engine(graph, _engine_config(args))
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges", file=sys.stderr)
    if args.partition_report:
        _print_partition_report(engine)
    if args.save_engine:
        _save_engine(engine, args.save_engine)
    if args.pairs:
        pairs = np.asarray(
            [tuple(int(x) for x in pair.split(",")) for pair in args.pairs]
        )
    else:
        pairs = graph.edge_array()
    if _sla_requested(args):
        from repro.service import ResistanceService

        service = ResistanceService.from_engine(engine)
        service.enable_tiers(tiers=_parse_tiers(args))
        values, report = service.query_pairs_with_report(
            pairs, rel_tol=args.rel_tol, latency_budget=args.latency_budget
        )
        _print_tier_summary(report)
    else:
        values = engine.query_pairs(pairs)
    out = sys.stdout if args.output == "-" else open(args.output, "w")
    try:
        out.write("p,q,r_eff\n")
        for (p, q), r in zip(pairs, values):
            out.write(f"{int(p)},{int(q)},{r:.10g}\n")
    finally:
        if out is not sys.stdout:
            out.close()
    return 0


def cmd_service(args) -> int:
    """Serve pair queries / edge-centrality rankings from a ResistanceService."""
    import time

    from repro.service import AsyncResistanceService, ResistanceService, make_executor

    if not args.pairs and not args.top_k:
        print("nothing to do: pass --pairs and/or --top-k", file=sys.stderr)
        return 1
    with make_executor(args.workers) as executor:  # shut the pool down on exit
        t0 = time.perf_counter()
        if args.load_engine:
            _reject_graph_source_with_load(args)
            service = ResistanceService.from_saved(
                args.load_engine, mmap=args.mmap, executor=executor
            )
            graph = service.graph
            print(f"engine loaded from {args.load_engine}", file=sys.stderr)
        else:
            graph = _load_graph(args)
            service = ResistanceService(
                graph, config=_engine_config(args), executor=executor
            )
        print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges",
              file=sys.stderr)
        print(f"service ready in {time.perf_counter() - t0:.2f}s "
              f"({executor.workers} worker(s))", file=sys.stderr)
        if args.save_engine:
            _save_engine(service.engine, args.save_engine)

        if _sla_requested(args):
            from repro.service import CalibrationProfile

            # reuse a calibration sidecar saved next to a loaded engine;
            # otherwise calibrate now (and persist next to --save-engine)
            profile = None
            if args.load_engine:
                sidecar = CalibrationProfile.default_path(args.load_engine)
                if sidecar.exists():
                    profile = CalibrationProfile.load(sidecar)
                    print(f"calibration loaded from {sidecar}", file=sys.stderr)
            profile = service.enable_tiers(
                tiers=_parse_tiers(args), profile=profile
            )
            if args.save_engine:
                saved = profile.save(
                    CalibrationProfile.default_path(args.save_engine)
                )
                print(f"calibration saved to {saved}", file=sys.stderr)

        if args.pairs:
            pairs = np.asarray(
                [tuple(int(x) for x in pair.split(",")) for pair in args.pairs]
            )
            repeat = max(args.repeat, 1)
            t0 = time.perf_counter()
            if args.batch_window > 0.0:
                # each repeat is one concurrent request; the micro-batching
                # loop coalesces them into few planned engine batches
                with AsyncResistanceService(
                    service, batch_window=args.batch_window
                ) as front:
                    futures = [
                        front.submit(
                            pairs, rel_tol=args.rel_tol,
                            latency_budget=args.latency_budget,
                        )
                        for _ in range(repeat)
                    ]
                    values = futures[-1].result()
                    for future in futures:
                        future.result()
                    coalesced = front.stats.batches
            else:
                for _ in range(repeat):
                    values = service.query_pairs(
                        pairs, rel_tol=args.rel_tol,
                        latency_budget=args.latency_budget,
                    )
                coalesced = None
            elapsed = time.perf_counter() - t0
            _print_tier_summary(service.last_report)
            print("p,q,r_eff")
            for (p, q), r in zip(pairs, values):
                print(f"{int(p)},{int(q)},{r:.10g}")
            total = pairs.shape[0] * repeat
            print(
                f"{total} queries in {elapsed:.3f}s "
                f"({total / max(elapsed, 1e-12):.0f} q/s, "
                f"hit rate {service.stats.hit_rate:.1%})",
                file=sys.stderr,
            )
            if coalesced is not None:
                print(
                    f"micro-batching: {repeat} requests coalesced into "
                    f"{coalesced} engine batch(es) "
                    f"(window {args.batch_window:g}s)",
                    file=sys.stderr,
                )
        if args.top_k:
            edges, centrality = service.top_k_central_edges(args.top_k)
            print(f"top {len(edges)} central edges (w(e)·R(e)):")
            for e, c in zip(edges, centrality):
                u, v = int(graph.heads[e]), int(graph.tails[e])
                print(f"  ({u}, {v})  centrality={c:.6g}")
    return 0


def cmd_dc(args) -> int:
    """DC-solve a SPICE power grid and report IR-drop statistics."""
    from repro.powergrid.dc import dc_analysis
    from repro.powergrid.spice import read_spice

    grid = read_spice(args.netlist)
    result = dc_analysis(grid)
    print(f"grid: {grid}")
    print(f"max IR drop / bounce: {result.max_drop() * 1e3:.4f} mV")
    drops = result.drops()
    worst = np.argsort(drops)[-args.top:][::-1]
    print(f"worst {args.top} nodes:")
    for node in worst:
        print(f"  {grid.name_of(int(node))}: {drops[node] * 1e3:.4f} mV")
    return 0


def cmd_transient(args) -> int:
    """Transient-simulate a SPICE power grid; report worst excursions."""
    from repro.powergrid.spice import read_spice
    from repro.powergrid.transient import transient_analysis

    grid = read_spice(args.netlist)
    ports = grid.port_nodes()
    result = transient_analysis(
        grid, step=args.step, num_steps=args.steps, observe=ports
    )
    swing = result.voltages.max(axis=1) - result.voltages.min(axis=1)
    worst = np.argsort(swing)[-args.top:][::-1]
    print(f"grid: {grid}  ({args.steps} steps of {args.step:g}s)")
    print(f"worst {args.top} port swings:")
    for row in worst:
        node = int(result.observed[row])
        print(f"  {grid.name_of(node)}: {swing[row] * 1e3:.4f} mV")
    return 0


def cmd_reduce(args) -> int:
    """Reduce a SPICE power grid with Alg. 1 and write the reduced netlist."""
    from repro.powergrid.spice import read_spice, write_spice
    from repro.reduction.pipeline import PGReducer, ReductionConfig

    grid = read_spice(args.netlist)
    config = ReductionConfig(
        er_method=args.er_method,
        merge_resistance_fraction=args.merge_fraction,
        protect_all_ports=not args.merge_ports,
        seed=args.seed,
    )
    reducer = PGReducer(grid, config)
    reduced = reducer.reduce()
    print(f"original: {grid}")
    print(f"reduced:  {reduced.grid}")
    print(f"Tred: {reducer.timer.total:.2f}s ({reducer.num_blocks} blocks)")
    write_spice(reduced.grid, args.output, title=f"reduced from {args.netlist}")
    print(f"wrote {args.output}")
    return 0


def cmd_table1(args) -> int:
    """Run one Table I case and print the measured vs paper row."""
    from repro.bench.cases import TABLE1_CASES
    from repro.bench.table1 import render_table1, run_table1_case

    if args.case not in TABLE1_CASES:
        raise SystemExit(f"unknown case; choose from {', '.join(TABLE1_CASES)}")
    case = TABLE1_CASES[args.case]
    row = run_table1_case(
        case, seed=args.seed, run_baseline=not args.skip_baseline,
        build_workers=args.build_workers,
    )
    print(render_table1([row], TABLE1_CASES))
    return 0


def cmd_fig1(args) -> int:
    """Reproduce the Fig. 1 waveform experiment."""
    from repro.bench.cases import TABLE2_CASES
    from repro.bench.fig1 import ascii_plot, run_fig1

    case = TABLE2_CASES[args.case]
    result = run_fig1(case, num_steps=args.steps, output_csv=args.output)
    print(
        ascii_plot(
            result.times,
            {"original": result.vdd_original, "reduced": result.vdd_reduced},
            title=f"VDD node {result.vdd_node_name}",
        )
    )
    print()
    print(
        ascii_plot(
            result.times,
            {"original": result.gnd_original, "reduced": result.gnd_reduced},
            title=f"GND node {result.gnd_node_name}",
        )
    )
    if args.output:
        print(f"\nwaveforms written to {args.output}")
    return 0


def cmd_lint(args) -> int:
    """Run the static invariant checker (alias of ``python -m repro.analysis``)."""
    from repro.analysis.app import main as analysis_main

    argv = list(args.paths)
    argv += ["--format", args.format]
    for extra in args.extra_paths or ():
        argv += ["--paths", extra]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv += ["--write-baseline"]
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv += ["--list-rules"]
    if args.lock_graph_dot:
        argv += ["--lock-graph-dot", args.lock_graph_dot]
    if args.lock_graph_json:
        argv += ["--lock-graph-json", args.lock_graph_json]
    return analysis_main(argv)


def _add_graph_engine_arguments(parser) -> None:
    """Graph-source and engine options shared by ``er`` and ``service``."""
    from repro.core.engine import registered_engines

    methods = list(registered_engines())
    parser.add_argument("--edgelist", help="edge-list file (u v [w] per line)")
    parser.add_argument("--mtx", help="MatrixMarket adjacency/Laplacian file")
    parser.add_argument("--generator", help="grid2d:RxC | mesh2d:RxC | ba:N")
    parser.add_argument("--method", default="cholinv", choices=methods)
    parser.add_argument("--epsilon", type=float, default=1e-3)
    parser.add_argument("--drop-tol", dest="drop_tol", type=float, default=1e-3)
    parser.add_argument("--ordering", default="amd",
                        choices=["amd", "rcm", "natural", "nested_dissection"])
    parser.add_argument("--mode", default="blocked", choices=["blocked", "reference"],
                        help="Alg. 2 kernel (cholinv only)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sharded", action="store_true",
                        help="one sub-engine per connected component")
    parser.add_argument("--lazy-shards", dest="lazy_shards", action="store_true",
                        help="with --sharded, build each shard on first query")
    parser.add_argument("--shard-strategy", dest="shard_strategy",
                        default="component", choices=["component", "separator"],
                        help="how shards map to the graph: one per connected "
                             "component (default) or vertex-separator regions "
                             "within large components with Schur-complement "
                             "cross-region queries (implies sharding)")
    parser.add_argument("--max-shard-nodes", dest="max_shard_nodes",
                        type=int, default=None, metavar="N",
                        help="with --shard-strategy separator, split any "
                             "component above N nodes into regions of at "
                             "most N nodes (default: size/4 per component)")
    parser.add_argument("--separator", default="bisection",
                        choices=["bisection", "kway"],
                        help="separator construction for "
                             "--shard-strategy separator")
    parser.add_argument("--build-workers", dest="build_workers", type=int,
                        default=1, metavar="N",
                        help="threads used to build the engine: large Alg. 2 "
                             "levels split into parallel column chunks, and "
                             "with --sharded the per-component builds fan "
                             "out; results are bit-identical for any N")
    parser.add_argument("--save-engine", dest="save_engine", metavar="PATH",
                        help="persist the built engine to PATH (.npz)")
    parser.add_argument("--load-engine", dest="load_engine", metavar="PATH",
                        help="warm-start from a saved engine instead of building "
                             "(graph and engine options come from the file)")
    parser.add_argument("--num-landmarks", dest="num_landmarks", type=int,
                        default=32, metavar="K",
                        help="landmark count for the landmark estimator tier")
    parser.add_argument("--landmark-strategy", dest="landmark_strategy",
                        default="degree", choices=["degree", "random", "spread"],
                        help="how the landmark tier picks its landmarks")
    parser.add_argument("--num-walks", dest="num_walks", type=int, default=512,
                        help="walks per pair for the local_walk estimator")
    parser.add_argument("--walk-length", dest="walk_length", type=int,
                        default=32,
                        help="truncation length for the local_walk estimator")
    parser.add_argument("--num-trees", dest="num_trees", type=int, default=200,
                        help="Wilson samples for the spanning_tree estimator")
    parser.add_argument("--rel-tol", dest="rel_tol", type=float, default=None,
                        metavar="TOL",
                        help="serve with an SLA: accept answers from cheaper "
                             "calibrated tiers while the relative error stays "
                             "within TOL (pairs the tiers cannot certify "
                             "escalate to the exact engine)")
    parser.add_argument("--latency-budget", dest="latency_budget", type=float,
                        default=None, metavar="SECONDS",
                        help="SLA latency target for the whole batch; tiers "
                             "too slow to fit are skipped, and an exact "
                             "request that cannot fit downgrades to the most "
                             "accurate tier that does")
    parser.add_argument("--engine-tiers", dest="engine_tiers", metavar="T1,T2",
                        default=None,
                        help="comma-separated approximate tier ladder for "
                             "SLA routing, cheapest first "
                             "(default: landmark)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Effective resistances via approximate inverse of Cholesky factor"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    er = sub.add_parser("er", help="compute effective resistances")
    _add_graph_engine_arguments(er)
    er.add_argument("--pairs", nargs="*", help='queries like "12,97" (default: all edges)')
    er.add_argument("--partition-report", dest="partition_report",
                    action="store_true",
                    help="print shard/separator quality diagnostics "
                         "(needs --sharded or --shard-strategy separator)")
    er.add_argument("--output", default="-", help="CSV path or - for stdout")
    er.set_defaults(func=cmd_er)

    sv = sub.add_parser("service", help="serve cached pair/centrality queries")
    _add_graph_engine_arguments(sv)
    sv.add_argument("--pairs", nargs="*", help='queries like "12,97"')
    sv.add_argument("--repeat", type=int, default=1,
                    help="repeat the pair batch (exercises the result cache)")
    sv.add_argument("--top-k", dest="top_k", type=int, default=0,
                    help="print the k most central edges (w(e)·R(e))")
    sv.add_argument("--workers", type=int, default=1,
                    help="executor threads fanning per-shard sub-batches "
                         "out in parallel (pairs well with --sharded)")
    sv.add_argument("--batch-window", dest="batch_window", type=float,
                    default=0.0, metavar="SECONDS",
                    help="micro-batching window; > 0 serves the repeated "
                         "pair batches through AsyncResistanceService, "
                         "coalescing concurrent requests")
    sv.add_argument("--mmap", action="store_true",
                    help="with --load-engine, memory-map the saved arrays "
                         "so co-located workers share pages")
    sv.set_defaults(func=cmd_service)

    dc = sub.add_parser("dc", help="DC analysis of a SPICE power grid")
    dc.add_argument("netlist")
    dc.add_argument("--top", type=int, default=5)
    dc.set_defaults(func=cmd_dc)

    tr = sub.add_parser("transient", help="transient analysis of a SPICE power grid")
    tr.add_argument("netlist")
    tr.add_argument("--step", type=float, default=1e-11)
    tr.add_argument("--steps", type=int, default=1000)
    tr.add_argument("--top", type=int, default=5)
    tr.set_defaults(func=cmd_transient)

    red = sub.add_parser("reduce", help="Alg. 1 power-grid reduction")
    red.add_argument("netlist")
    red.add_argument("--output", default="reduced.sp")
    from repro.core.engine import registered_engines

    red.add_argument("--er-method", dest="er_method", default="cholinv",
                     choices=list(registered_engines()))
    red.add_argument("--merge-fraction", dest="merge_fraction", type=float, default=0.05)
    red.add_argument("--merge-ports", dest="merge_ports", action="store_true",
                     help="allow merging current-source ports (original [8] behaviour)")
    red.add_argument("--seed", type=int, default=0)
    red.set_defaults(func=cmd_reduce)

    t1 = sub.add_parser("table1", help="run one Table I benchmark case")
    t1.add_argument("--case", default="fe-mesh-2d")
    t1.add_argument("--seed", type=int, default=0)
    t1.add_argument("--skip-baseline", action="store_true")
    t1.add_argument("--build-workers", dest="build_workers", type=int,
                    default=1, metavar="N",
                    help="threads for the Alg. 3 engine build (bit-identical "
                         "results for any N; T shrinks, errors do not move)")
    t1.set_defaults(func=cmd_table1)

    f1 = sub.add_parser("fig1", help="reproduce the Fig. 1 waveforms")
    f1.add_argument("--case", default="pg3-like")
    f1.add_argument("--steps", type=int, default=300)
    f1.add_argument("--output", help="CSV output path")
    f1.set_defaults(func=cmd_fig1)

    lint = sub.add_parser(
        "lint", help="run the repro.analysis structural invariant checker"
    )
    lint.add_argument("paths", nargs="*",
                      help="files/directories to analyse (default: src/repro)")
    lint.add_argument("--paths", action="append", dest="extra_paths",
                      metavar="PATH",
                      help="additional file/directory to analyse (repeatable)")
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--baseline", metavar="PATH",
                      help="baseline file of accepted findings "
                           "(default: analysis-baseline.json when present)")
    lint.add_argument("--write-baseline", dest="write_baseline",
                      action="store_true",
                      help="accept every current finding into the baseline")
    lint.add_argument("--select", metavar="RULE[,RULE...]",
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--list-rules", dest="list_rules", action="store_true",
                      help="list registered rules and exit")
    lint.add_argument("--lock-graph-dot", metavar="PATH",
                      help="export the lock acquisition graph as DOT")
    lint.add_argument("--lock-graph-json", metavar="PATH",
                      help="export the lock acquisition graph as JSON")
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
