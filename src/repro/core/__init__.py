"""The paper's core contribution.

* :mod:`repro.core.truncation` — the relative 1-norm pruning rule (Eq. 10);
* :mod:`repro.core.approx_inverse` — Alg. 2, the sparse approximate inverse
  of a Cholesky factor;
* :mod:`repro.core.engine` — the ``ResistanceEngine`` protocol, typed
  ``EngineConfig``, and the registry/factory every layer dispatches
  through;
* :mod:`repro.core.effective_resistance` — Alg. 3 plus exact effective
  resistances and the high-level query API;
* :mod:`repro.core.partitioned` — the partitioned composite engine:
  :class:`~repro.core.partitioned.ShardPlan` shard plans (per-component or
  within-component vertex-separator regions) and the Schur-complement
  cross-region query path;
* :mod:`repro.core.sharded` — the classic component-sharded engine, now a
  thin alias over the partitioned layer;
* :mod:`repro.core.persistence` — save/load built Alg. 3 engines (warm
  starts);
* :mod:`repro.core.error_bounds` — Theorem 1 / Eq. (25)–(26) machinery and
  the sampled error estimation used in Table I.
"""

from repro.core.approx_inverse import ApproxInverseStats, approximate_inverse
from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
    effective_resistances,
    spanning_edge_centrality,
)
from repro.core.engine import (
    EngineConfig,
    ResistanceEngine,
    build_engine,
    register_engine,
    registered_engines,
)
from repro.core.error_bounds import (
    alpha_coefficient,
    column_error_report,
    estimate_query_errors,
    theorem1_bound,
)
from repro.core.partitioned import PartitionedEngine, ShardPlan, make_plan
from repro.core.persistence import load_engine, save_engine
from repro.core.sharded import ShardedEngine
from repro.core.truncation import truncate_relative_1norm

__all__ = [
    "approximate_inverse",
    "ApproxInverseStats",
    "truncate_relative_1norm",
    "ResistanceEngine",
    "EngineConfig",
    "register_engine",
    "registered_engines",
    "build_engine",
    "ShardedEngine",
    "PartitionedEngine",
    "ShardPlan",
    "make_plan",
    "save_engine",
    "load_engine",
    "CholInvEffectiveResistance",
    "ExactEffectiveResistance",
    "effective_resistances",
    "spanning_edge_centrality",
    "theorem1_bound",
    "column_error_report",
    "alpha_coefficient",
    "estimate_query_errors",
]
