"""Alg. 2 — sparse approximate inverse of a Cholesky factor.

Let ``Z = L⁻¹`` where ``L`` is the (complete or incomplete) Cholesky factor
of a grounded Laplacian.  Lemma 1 of the paper shows ``Z ≥ 0`` and that its
columns obey the back-substitution recurrence (Eq. 8)::

    z_j = e_j / L_jj  +  Σ_{i>j, L_ij ≠ 0} (−L_ij / L_jj) · z_i

Alg. 2 evaluates the recurrence from column ``n−1`` down to ``0`` using the
already-*truncated* columns ``z̃_i`` on the right-hand side (Eq. 9), then
prunes each new column with the relative 1-norm rule of Eq. (10) — unless it
is already trivially sparse (``nnz ≤ log n``).  Theorem 1 bounds the column
error by ``depth(p)·ε``.

Kernels (the ``mode=`` knob)
----------------------------
``mode="blocked"`` (default)
    Level-scheduled batched kernel.  Column ``j`` depends exactly on the
    columns ``i > j`` with ``L_ij ≠ 0``, whose filled-graph depth (Eq. 11,
    :func:`repro.cholesky.depth.filled_graph_depth`) is strictly smaller
    than ``depth(j)`` — so all columns sharing a depth value are mutually
    independent.  The kernel walks the levels from the etree roots
    (depth 0) upward; each level computes every column at once as one
    sparse matrix product ``Z[:, deps] @ W`` (``W`` holds the
    ``−L_ij/L_jj`` coefficients), adds the ``e_j/L_jj`` terms, and applies
    the Eq. (10) truncation to the whole block with one vectorised
    sort/scan.  The per-level work is a handful of numpy/scipy C calls, so
    the Python overhead is O(#levels) instead of O(n).

``mode="blocked"`` + ``build_workers > 1``
    Level-parallel variant of the blocked kernel.  Every large level is
    split into contiguous *column chunks* whose boundaries depend only on
    the level itself (target ``_CHUNK_TARGET_NNZ`` accumulated entries per
    chunk, never on the worker count), and the chunks run on a thread pool
    — scipy's sparsetools matmul releases the GIL, so chunks of one level
    genuinely overlap.  Because serial and parallel runs execute the *same*
    chunk list through the *same* floating-point code and commit chunks
    into the :class:`_ColumnPool` in ascending column order, the result is
    **bit-identical** for every worker count.

``mode="reference"``
    The original column-at-a-time loop, kept as the executable
    specification.  The regression suite cross-checks that both kernels
    produce the same ``Z̃`` (same pattern, values to rounding) on complete
    and incomplete factors.  ``build_workers`` is ignored here.

Both kernels produce the same truncation decisions: the blocked path sorts
magnitudes within each column with a stable key, exactly like
:func:`repro.core.truncation.truncation_keep_mask` does per column.

Cost model of the parallel path
-------------------------------
Three regimes, chosen per level: (1) tiny near-root levels run the scalar
recurrence (the batched path's ~1 ms fixed cost dwarfs the work); (2)
mid-size levels run as one batched chunk (chunking below
``_CHUNK_TARGET_NNZ`` accumulated entries would pay the per-chunk matmul /
truncation dispatch, ~0.3 ms, without enough work to amortise it); (3)
levels whose dependency entry bound exceeds ``2 × _CHUNK_TARGET_NNZ``
split into ``bound // _CHUNK_TARGET_NNZ`` chunks that a pool of
``build_workers`` threads drains.  Only regime (3) fans out, so
single-worker builds pay at most the (sub-percent) chunking overhead on
the very largest levels and nothing anywhere else.

Implementation notes
--------------------
The reference accumulation uses a dense scratch vector with explicit
touched-index tracking, so each column costs O(Σ nnz(z̃_i) + t log t) where
``t`` is the number of touched rows — the same complexity the paper reports
(O(n log n · log log n) overall when nnz per column is O(log n)).  The
blocked kernel performs the identical floating-point work inside scipy's
sparse matmul, and is what lets :class:`repro.service.ResistanceService`
rebuild engines fast enough for online traffic.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.cholesky.depth import filled_graph_depth
from repro.core.truncation import truncation_keep_mask
from repro.utils.validation import check_square_sparse

_MODES = ("blocked", "reference")


@dataclass
class ApproxInverseStats:
    """Diagnostics of an Alg. 2 run (feeds the Table I ``nnz/n·log n`` column)."""

    nnz: int
    n: int
    columns_truncated: int
    columns_kept_whole: int

    @property
    def nnz_per_nlogn(self) -> float:
        """``nnz(Z̃) / (n · log n)`` — the paper's sparsity metric."""
        denom = self.n * max(np.log(self.n), 1.0)
        return float(self.nnz) / denom

    @property
    def average_column_nnz(self) -> float:
        """Mean stored entries per column."""
        return float(self.nnz) / max(self.n, 1)


def _validate_factor(csc: sp.csc_matrix) -> np.ndarray:
    """Check diagonal-first storage and positive pivots; return the diagonal.

    An empty column is reported explicitly: indexing ``indices[indptr[j]]``
    for an empty column ``j`` would silently read the *next* column's first
    entry (or fall off the end of ``indices`` for a trailing empty column).
    """
    n = csc.shape[0]
    indptr, indices, data = csc.indptr, csc.indices, csc.data
    column_nnz = np.diff(indptr)
    if bool(np.any(column_nnz == 0)):
        j = int(np.argmax(column_nnz == 0))
        raise ValueError(
            f"factor has an empty column {j}: every column must store its diagonal entry"
        )
    diag_first = indices[indptr[:-1]] == np.arange(n)
    if not bool(np.all(diag_first)):
        raise ValueError("factor must store the diagonal as first entry of each column")
    diag = data[indptr[:-1]]
    if bool(np.any(diag <= 0)):
        j = int(np.argmax(diag <= 0))
        raise ValueError(f"factor has nonpositive diagonal {diag[j]:g} at column {j}")
    return diag


def approximate_inverse(
    lower: sp.spmatrix,
    epsilon: float = 1e-3,
    small_column_threshold: "float | None" = None,
    mode: str = "blocked",
    build_workers: "int | None" = None,
) -> "tuple[sp.csc_matrix, ApproxInverseStats]":
    """Run Alg. 2 on the lower-triangular factor ``lower``.

    Parameters
    ----------
    lower:
        Sparse lower-triangular Cholesky factor (positive diagonal;
        nonpositive off-diagonals for Laplacian inputs, though the code does
        not require the sign structure).
    epsilon:
        Per-column relative 1-norm truncation budget ``ε`` (paper: 1e-3).
        ``ε = 0`` keeps every computed entry: ``Z̃`` is then the exact
        ``L⁻¹`` (up to floating-point rounding).
    small_column_threshold:
        Columns with at most this many nonzeros skip truncation
        (Alg. 2 line 3 uses ``log n``, the default).
    mode:
        ``"blocked"`` (default) for the level-scheduled batched kernel,
        ``"reference"`` for the original column-at-a-time loop (see module
        docstring).
    build_workers:
        Threads for the level-parallel blocked kernel (``None``/``1`` =
        serial).  Chunk boundaries never depend on the worker count, so
        every value produces a bit-identical ``Z̃``.  Ignored by
        ``mode="reference"``.

    Returns
    -------
    (Z̃, stats):
        The sparse approximate inverse (CSC, lower triangular, nonnegative
        for M-matrix inputs) and run statistics.
    """
    check_square_sparse(lower, "lower")
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    workers = 1 if build_workers is None else int(build_workers)
    if workers < 1:
        raise ValueError(f"build_workers must be >= 1, got {build_workers}")
    csc = sp.csc_matrix(lower)
    csc.sort_indices()
    n = csc.shape[0]
    keep_whole_nnz = float(np.log(max(n, 2))) if small_column_threshold is None else float(small_column_threshold)
    diag = _validate_factor(csc)
    if mode == "blocked":
        return _blocked_kernel(csc, diag, epsilon, keep_whole_nnz, workers=workers)
    return _reference_kernel(csc, diag, epsilon, keep_whole_nnz)


# ----------------------------------------------------------------------
# reference kernel — column-at-a-time executable specification
# ----------------------------------------------------------------------
def _reference_kernel(
    csc: sp.csc_matrix, diag: np.ndarray, epsilon: float, keep_whole_nnz: float
) -> "tuple[sp.csc_matrix, ApproxInverseStats]":
    n = csc.shape[0]
    indptr, indices, data = csc.indptr, csc.indices, csc.data

    col_rows: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    col_vals: list[np.ndarray] = [np.empty(0)] * n
    scratch = np.zeros(n)
    truncated_count = 0
    kept_whole = 0

    for j in range(n - 1, -1, -1):
        start, end = indptr[j], indptr[j + 1]
        below_rows = indices[start + 1:end]
        below_vals = data[start + 1:end]

        scratch[j] += 1.0 / diag[j]
        touched = [np.array([j], dtype=np.int64)]
        for i, lij in zip(below_rows, below_vals):
            coeff = -lij / diag[j]
            if coeff == 0.0:
                continue
            zi_rows = col_rows[i]
            scratch[zi_rows] += coeff * col_vals[i]
            touched.append(zi_rows)

        idx = np.unique(np.concatenate(touched)) if len(touched) > 1 else touched[0]
        vals = scratch[idx]
        scratch[idx] = 0.0
        nonzero = vals != 0.0
        idx, vals = idx[nonzero], vals[nonzero]

        if idx.shape[0] <= keep_whole_nnz:
            kept_whole += 1
        else:
            mask = truncation_keep_mask(vals, epsilon)
            idx, vals = idx[mask], vals[mask]
            truncated_count += 1

        col_rows[j] = idx
        col_vals[j] = vals

    return _assemble(n, col_rows, col_vals, truncated_count, kept_whole)


# ----------------------------------------------------------------------
# blocked kernel — level-scheduled batched evaluation
# ----------------------------------------------------------------------
class _ColumnPool:
    """Growable flat storage for the computed ``z̃`` columns.

    Columns are appended level by level, which makes the pool — read in
    append order — a valid CSC matrix at every moment: ``indptr[p]`` bounds
    the entries of the ``p``-th appended column and ``position[j]`` maps a
    graph column to its append slot.  The batched matmul therefore reads the
    pool *in place* (zero-copy) with pool-position column indices, and only
    the final assembly performs a gather back into natural column order.
    """

    def __init__(self, n: int, capacity: int):
        self.rows = np.empty(capacity, dtype=np.int32)
        self.vals = np.empty(capacity)
        self.start = np.zeros(n, dtype=np.int64)
        self.length = np.zeros(n, dtype=np.int64)
        self.indptr = np.zeros(n + 1, dtype=np.int32)
        self.position = np.zeros(n, dtype=np.int32)
        self.filled = 0
        self.used = 0

    def reserve(self, count: int) -> "tuple[np.ndarray, np.ndarray]":
        """Views over the next ``count`` uncommitted slots (for in-place fill)."""
        if self.used + count > self.rows.shape[0]:
            capacity = max(2 * self.rows.shape[0], self.used + count)
            self.rows = np.concatenate([self.rows[:self.used], np.empty(capacity - self.used, dtype=np.int32)])
            self.vals = np.concatenate([self.vals[:self.used], np.empty(capacity - self.used)])
        return (
            self.rows[self.used:self.used + count],
            self.vals[self.used:self.used + count],
        )

    def commit_level(self, cols: np.ndarray, ptr: np.ndarray) -> None:
        """Commit reserved slots as the columns ``cols`` (CSC layout ``ptr``)."""
        self.start[cols] = self.used + ptr[:-1]
        self.length[cols] = np.diff(ptr)
        k = cols.shape[0]
        self.indptr[self.filled + 1:self.filled + k + 1] = self.used + ptr[1:]
        self.position[cols] = self.filled + np.arange(k, dtype=np.int32)
        self.filled += k
        self.used += int(ptr[-1])

    def append_level(self, cols: np.ndarray, ptr: np.ndarray, rows: np.ndarray, vals: np.ndarray) -> None:
        """Store the kept entries of a level (columns ``cols``, CSC layout)."""
        count = rows.shape[0]
        out_rows, out_vals = self.reserve(count)
        out_rows[:] = rows
        out_vals[:] = vals
        self.commit_level(cols, ptr)

    def csr_of_transpose(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """The computed columns as CSR-of-transpose views (pool order)."""
        return (
            self.indptr[:self.filled + 1],
            self.rows[:self.used],
            self.vals[:self.used],
        )

    def gather(self, columns: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Concatenated (indptr, rows, vals) of ``columns``, in order."""
        lens = self.length[columns]
        indptr = np.zeros(columns.shape[0] + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        positions = np.arange(indptr[-1], dtype=np.int64)
        positions += np.repeat(self.start[columns] - indptr[:-1], lens)
        return indptr, self.rows[positions], self.vals[positions]


# cost model for choosing the per-level execution path: the scalar
# recurrence pays ~tens of µs per column and ~100 ns per accumulated entry
# (numpy fancy indexing), the batched path a ~1 ms fixed level cost (a few
# dozen numpy/scipy calls) plus ~15 ns per entry inside sparsetools.  Tiny
# near-root levels therefore run scalar, everything else batched.
_SCALAR_COLUMN_COST = 25e-6
_SCALAR_ENTRY_COST = 60e-9
_BATCH_LEVEL_COST = 1.2e-3
_BATCH_ENTRY_COST = 15e-9

# target accumulated-entry bound per column chunk of a batched level.  The
# boundaries are a pure function of the level (NOT of build_workers), so a
# serial run executes the exact chunk list a parallel run fans out — which
# is what makes the parallel kernel bit-identical to the serial one.  The
# per-chunk dispatch (one matmat + one truncation call, ~0.3 ms) is <1% of
# the work a chunk of this size carries.
_CHUNK_TARGET_NNZ = 1 << 20

# binade buckets used by the blocked truncation's crossing-binade search
_BINADES = 64


def _level_chunks(k: int, col_bound_prefix: np.ndarray) -> "list[tuple[int, int]]":
    """Contiguous column ranges of a level, ≈``_CHUNK_TARGET_NNZ`` bound each.

    ``col_bound_prefix`` holds the running dependency-entry bound per
    column (length ``k + 1``).  Levels below twice the target stay whole;
    larger levels split at bound-balanced column boundaries.  Boundaries
    depend only on the level data, never on the worker count.
    """
    total = int(col_bound_prefix[-1])
    pieces = min(total // _CHUNK_TARGET_NNZ, k)
    if pieces < 2:
        return [(0, k)]
    targets = np.arange(1, pieces) * (total / pieces)
    cuts = np.searchsorted(col_bound_prefix[1:], targets, side="left") + 1
    cuts = np.unique(np.concatenate([[0], cuts, [k]]))
    return list(zip(cuts[:-1].tolist(), cuts[1:].tolist()))


def _scalar_level(
    pool: "_ColumnPool",
    scratch: np.ndarray,
    cols: np.ndarray,
    rows_g: np.ndarray,
    cols_g: np.ndarray,
    coeffs_g: np.ndarray,
    inv_diag: np.ndarray,
    epsilon: float,
    keep_whole_nnz: float,
) -> "tuple[int, int]":
    """Reference recurrence for one (small) level, reading/writing the pool.

    Performs exactly the same floating-point operations as the reference
    kernel, so hybrid runs stay entry-for-entry identical to it.
    """
    truncated_count = 0
    kept_whole = 0
    level_rows: list[np.ndarray] = []
    level_vals: list[np.ndarray] = []
    ptr = np.zeros(cols.shape[0] + 1, dtype=np.int64)
    bounds = np.searchsorted(cols_g, cols, side="left")
    for c, j in enumerate(cols):
        j = int(j)
        lo = bounds[c]
        hi = bounds[c + 1] if c + 1 < cols.shape[0] else cols_g.shape[0]
        scratch[j] += inv_diag[j]
        touched = [np.array([j], dtype=np.int64)]
        for e in range(lo, hi):
            i = int(rows_g[e])
            start = pool.start[i]
            zi_rows = pool.rows[start:start + pool.length[i]]
            scratch[zi_rows] += coeffs_g[e] * pool.vals[start:start + pool.length[i]]
            touched.append(zi_rows)
        idx = np.unique(np.concatenate(touched)) if len(touched) > 1 else touched[0]
        vals = scratch[idx]
        scratch[idx] = 0.0
        nonzero = vals != 0.0
        idx, vals = idx[nonzero], vals[nonzero]
        if idx.shape[0] <= keep_whole_nnz:
            kept_whole += 1
        else:
            mask = truncation_keep_mask(vals, epsilon)
            idx, vals = idx[mask], vals[mask]
            truncated_count += 1
        level_rows.append(idx)
        level_vals.append(vals)
        ptr[c + 1] = ptr[c] + idx.shape[0]
    pool.append_level(
        cols,
        ptr,
        np.concatenate(level_rows) if level_rows else np.empty(0, dtype=np.int32),
        np.concatenate(level_vals) if level_vals else np.empty(0),
    )
    return truncated_count, kept_whole


def _blocked_kernel(
    csc: sp.csc_matrix,
    diag: np.ndarray,
    epsilon: float,
    keep_whole_nnz: float,
    workers: int = 1,
) -> "tuple[sp.csc_matrix, ApproxInverseStats]":
    n = csc.shape[0]
    indptr, indices, data = csc.indptr, csc.indices, csc.data

    # level schedule: depth(j) per Eq. (11); dependencies of a column all
    # live at strictly smaller depth, so levels run 0, 1, ... max_depth
    levels = filled_graph_depth(csc)
    num_levels = int(levels.max()) + 1 if n else 0
    order = np.argsort(levels, kind="stable")
    level_ptr = np.searchsorted(levels[order], np.arange(num_levels + 1))

    # flatten the off-diagonal coefficients −L_ij/L_jj once, grouped by the
    # level of their *column* so each level slices its W entries in O(1)
    column_of_entry = np.repeat(np.arange(n), np.diff(indptr))
    offdiag = np.ones(indices.shape[0], dtype=bool)
    offdiag[indptr[:-1]] = False
    dep_rows = indices[offdiag]
    dep_cols = column_of_entry[offdiag]
    dep_coeffs = -data[offdiag] / diag[dep_cols]
    nonzero_coeff = dep_coeffs != 0.0
    dep_rows, dep_cols, dep_coeffs = (
        dep_rows[nonzero_coeff], dep_cols[nonzero_coeff], dep_coeffs[nonzero_coeff]
    )
    entry_order = np.argsort(levels[dep_cols], kind="stable")
    dep_rows, dep_cols, dep_coeffs = (
        dep_rows[entry_order], dep_cols[entry_order], dep_coeffs[entry_order]
    )
    entry_ptr = np.searchsorted(levels[dep_cols], np.arange(num_levels + 1))
    deps_per_col = np.bincount(dep_cols, minlength=n)

    # nnz(Z̃) is typically O(n log n); oversize the pool so level commits
    # rarely trigger a reallocation-and-copy of everything stored so far
    pool = _ColumnPool(n, capacity=max(16 * indices.shape[0], 64))
    truncated_count = 0
    kept_whole = 0
    inv_diag = 1.0 / diag
    scratch = np.zeros(n)
    executor: "concurrent.futures.ThreadPoolExecutor | None" = None

    try:
        for level in range(num_levels):
            cols = order[level_ptr[level]:level_ptr[level + 1]]  # ascending
            k = cols.shape[0]
            lo, hi = entry_ptr[level], entry_ptr[level + 1]

            # each output column is at most the sum of its dependencies'
            # sizes — an allocation bound and a flop estimate for the path
            # choice (the per-column prefix the chunker needs is only
            # built once a level actually takes the batched path)
            entry_bound = pool.length[dep_rows[lo:hi]]
            nnz_bound = int(entry_bound.sum())
            scalar_cost = _SCALAR_COLUMN_COST * k + _SCALAR_ENTRY_COST * nnz_bound
            if scalar_cost < _BATCH_LEVEL_COST + _BATCH_ENTRY_COST * nnz_bound:
                # tiny level (near the etree roots): the fixed cost of the
                # batched path dwarfs the work — run the scalar recurrence
                truncated, whole = _scalar_level(
                    pool, scratch, cols, dep_rows[lo:hi], dep_cols[lo:hi],
                    dep_coeffs[lo:hi], inv_diag, epsilon, keep_whole_nnz,
                )
                truncated_count += truncated
                kept_whole += whole
                continue

            # W holds the −L_ij/L_jj coefficients with columns = level
            # columns (entries arrive grouped by column, rows ascending —
            # CSC order) and row indices remapped to pool positions, so the
            # per-chunk matmul blockᵀ = Wᵀ @ Z_poolᵀ reads the pool in
            # place with no gather; calling the sparsetools kernel scipy's
            # `@` dispatches to directly skips the per-level matrix-object,
            # validation, and symbolic passes
            w_indptr = np.zeros(k + 1, dtype=np.int32)
            np.cumsum(deps_per_col[cols], out=w_indptr[1:])
            w_indices = pool.position[dep_rows[lo:hi]]
            w_data = dep_coeffs[lo:hi]
            b_ptr, b_idx, b_val = pool.csr_of_transpose()
            if entry_bound.shape[0]:
                entry_cum = np.concatenate([[0], np.cumsum(entry_bound)])
            else:
                entry_cum = np.zeros(1, dtype=np.int64)
            col_bound_prefix = entry_cum[w_indptr]
            level_cols = cols
            level_inv_diag = inv_diag[cols]

            def run_chunk(a: int, b: int):
                # matmul + Eq. (10) truncation of the columns [a, b) of the
                # level; pure function of the (frozen) pool snapshot, so
                # chunks are safe to run on pool threads
                ptr = w_indptr[a:b + 1] - w_indptr[a]
                sl = slice(int(w_indptr[a]), int(w_indptr[b]))
                bound = int(col_bound_prefix[b] - col_bound_prefix[a])
                block_ptr, block_rows, block_data = _raw_matmat(
                    b - a, n, ptr, w_indices[sl], w_data[sl],
                    b_ptr, b_idx, b_val, bound,
                )
                # the e_j/L_jj unit term lands on row j, a smaller row
                # index than every dependency entry — truncation accounts
                # for it and prepends it to the surviving chunk
                return _truncate_block(
                    level_cols[a:b], block_ptr, block_rows, block_data,
                    level_inv_diag[a:b], epsilon, keep_whole_nnz,
                )

            chunks = _level_chunks(k, col_bound_prefix)
            if workers > 1 and len(chunks) > 1:
                if executor is None:
                    executor = concurrent.futures.ThreadPoolExecutor(
                        max_workers=workers, thread_name_prefix="alg2-build"
                    )
                futures = [executor.submit(run_chunk, a, b) for a, b in chunks]
                results = [future.result() for future in futures]
            else:
                results = [run_chunk(a, b) for a, b in chunks]

            # commit in ascending column order — identical pool layout (and
            # therefore identical downstream levels) for every worker count
            for (a, b), (out_ptr, out_rows, out_vals, num_truncated) in zip(
                chunks, results
            ):
                pool.append_level(level_cols[a:b], out_ptr, out_rows, out_vals)
                truncated_count += num_truncated
                kept_whole += (b - a) - num_truncated
    finally:
        if executor is not None:
            executor.shutdown(wait=True)

    all_ptr, all_rows, all_vals = pool.gather(np.arange(n, dtype=np.int64))
    z_tilde = sp.csc_matrix((all_vals, all_rows, all_ptr), shape=(n, n))
    # every stored column keeps the ascending-row order of its level block
    z_tilde.has_sorted_indices = True
    stats = ApproxInverseStats(
        nnz=int(z_tilde.nnz),
        n=n,
        columns_truncated=truncated_count,
        columns_kept_whole=kept_whole,
    )
    return z_tilde, stats


try:  # same kernels scipy's `@` dispatches to; fall back if ever renamed
    from scipy.sparse import _sparsetools as _st

    _CSR_MATMAT = (_st.csr_matmat_maxnnz, _st.csr_matmat, _st.csr_sort_indices)
except (ImportError, AttributeError):  # pragma: no cover - scipy internals moved
    _CSR_MATMAT = None


def _raw_matmat(
    k: int,
    n: int,
    a_ptr: np.ndarray,
    a_idx: np.ndarray,
    a_val: np.ndarray,
    b_ptr: np.ndarray,
    b_idx: np.ndarray,
    b_val: np.ndarray,
    nnz_bound: int,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """``(A @ B)`` for CSR-major operands ``A (k×·)`` and ``B (·×n)``.

    Returns the product's ``(indptr, indices, data)`` with indices sorted
    within each major slice.  Interpreting the operands as CSC transposes,
    this evaluates a CSC ``Z_sub @ W`` product column-major.  ``nnz_bound``
    must upper-bound the product's nnz; passing it skips the symbolic pass.
    """
    if _CSR_MATMAT is None:  # pragma: no cover - scipy internals moved
        a = sp.csr_matrix((a_val, a_idx, a_ptr), shape=(k, b_ptr.shape[0] - 1))
        b = sp.csr_matrix((b_val, b_idx, b_ptr), shape=(b_ptr.shape[0] - 1, n))
        out = (a @ b).tocsr()
        out.sort_indices()
        return out.indptr, out.indices, out.data
    _, matmat_fn, sort_fn = _CSR_MATMAT
    out_ptr = np.empty(k + 1, dtype=np.int32)
    out_idx = np.empty(nnz_bound, dtype=np.int32)
    out_val = np.empty(nnz_bound)
    matmat_fn(k, n, a_ptr, a_idx, a_val, b_ptr, b_idx, b_val, out_ptr, out_idx, out_val)
    nnz = int(out_ptr[-1])
    out_idx, out_val = out_idx[:nnz], out_val[:nnz]
    sort_fn(k, out_ptr, out_idx, out_val)
    return out_ptr, out_idx, out_val


def _prepend_diag(
    k: int,
    counts: np.ndarray,
    rows: np.ndarray,
    vals: np.ndarray,
    diag_rows: np.ndarray,
    diag_vals: np.ndarray,
) -> "tuple[tuple[np.ndarray, np.ndarray], np.ndarray]":
    """Insert one diagonal entry at the head of each CSC column."""
    out_ptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(counts + 1, out=out_ptr[1:])
    total = int(out_ptr[-1])
    out_rows = np.empty(total, dtype=np.int32)
    out_vals = np.empty(total)
    heads = out_ptr[:-1]
    out_rows[heads] = diag_rows
    out_vals[heads] = diag_vals
    body = np.ones(total, dtype=bool)
    body[heads] = False
    out_rows[body] = rows
    out_vals[body] = vals
    return (out_rows, out_vals), out_ptr


def _truncate_block(
    cols: np.ndarray,
    bindptr: np.ndarray,
    bindices: np.ndarray,
    bdata: np.ndarray,
    diag_vals: np.ndarray,
    epsilon: float,
    keep_whole_nnz: float,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, int]":
    """Vectorised Eq. (10) over every column of a level block (or chunk).

    ``(bindptr, bindices, bdata)`` hold the dependency contributions of the
    level in CSC layout; the ``e_j/L_jj`` diagonal term of column ``c``
    (value ``diag_vals[c]``, row ``cols[c]``) is accounted for separately and
    prepended to the output — its row index is strictly smaller than every
    dependency row, so it always sorts first.

    Mirrors :func:`repro.core.truncation.truncation_keep_mask` column by
    column: exact zeros are discarded, entries are stably sorted by magnitude
    within their column, the within-column prefix masses are compared against
    ``ε·‖column‖₁``, and columns at or below the ``log n`` nnz threshold are
    kept whole.

    Pure function of its arguments (no shared state), so the level-parallel
    kernel runs one call per chunk on pool threads.  Returns the surviving
    entries as ``(out_ptr, out_rows, out_vals, num_truncated)`` with rows
    ascending per column, ready for :meth:`_ColumnPool.append_level`.
    """
    k = cols.shape[0]
    column_nnz = np.diff(bindptr).astype(np.int64)
    if bdata.shape[0] and np.count_nonzero(bdata) != bdata.shape[0]:
        # rare: explicit zeros (possible only with cancellation, i.e. for
        # non-M-matrix factors) — compact first, like the reference kernel
        nonzero = bdata != 0.0
        column_nnz -= np.bincount(
            np.repeat(np.arange(k, dtype=np.int64), column_nnz)[~nonzero], minlength=k
        )
        bindices, bdata = bindices[nonzero], bdata[nonzero]
        bindptr = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(column_nnz, out=bindptr[1:])
    big = column_nnz + 1 > keep_whole_nnz
    num_truncated = int(np.count_nonzero(big))
    keep = None
    kept_counts = column_nnz
    if num_truncated and epsilon > 0 and bdata.shape[0]:
        # M-matrix factors give nonnegative blocks — skip the abs pass then
        magnitudes = bdata if float(bdata.min()) >= 0.0 else np.abs(bdata)
        # column 1-norms via global prefix sums (one cumsum, no scatter-add)
        running = np.cumsum(magnitudes)
        starts, ends = bindptr[:-1], bindptr[1:]
        base = np.where(starts > 0, running[np.maximum(starts, 1) - 1], 0.0)
        dep_totals = np.where(ends > starts, running[np.maximum(ends, 1) - 1], 0.0) - base
        budget = np.where(big, epsilon * (dep_totals + diag_vals), -1.0)
        if bool(np.any(diag_vals <= budget)):
            # a diagonal entry is itself truncation-eligible (tiny 1/L_jj
            # against a heavy column) — merge it in and run the generic scan
            merged, merged_ptr = _prepend_diag(
                k, column_nnz, bindices, bdata, cols, diag_vals
            )
            kept, kept_ptr, num_truncated = _truncate_merged(
                k, merged_ptr, merged[0], merged[1], epsilon, keep_whole_nnz
            )
            return kept_ptr, kept[0], kept[1], num_truncated
        # only entries with |v| ≤ ε·‖col‖₁ can belong to the dropped prefix
        # (any larger entry's inclusive prefix mass already exceeds the
        # budget), so all further work runs on this subset only
        cand_idx = np.flatnonzero(magnitudes <= np.repeat(budget, column_nnz))
        if cand_idx.shape[0]:
            cand_col = np.searchsorted(bindptr, cand_idx, side="right") - 1
            cand_mags = magnitudes[cand_idx]
            # binade bucketing: bucket b holds candidates ~2^b below the
            # budget (IEEE exponent distance, clipped).  Buckets respect
            # magnitude order, so accumulating bucket masses small-to-large
            # finds the one *crossing* binade per column — buckets below it
            # are dropped wholesale, above it kept wholesale, and only the
            # crossing binade's entries need the exact magnitude sort.
            mag_exp = (cand_mags.view(np.int64) >> 52).astype(np.int64)
            budget_exp = (budget.view(np.int64) >> 52).astype(np.int64)
            bucket = np.minimum(budget_exp[cand_col] - mag_exp, _BINADES - 1)
            key = cand_col * _BINADES + bucket
            hist_mass = np.bincount(key, weights=cand_mags, minlength=k * _BINADES)
            hist_mass = hist_mass.reshape(k, _BINADES)[:, ::-1]
            cum_rev = np.cumsum(hist_mass, axis=1)
            # first (smallest-magnitude-first) position whose mass exceeds
            # the budget; 63 - that position is the crossing binade
            first_exceed = (cum_rev <= budget[:, None]).sum(axis=1)
            crossing = _BINADES - 1 - first_exceed  # -1 → everything drops
            below_mass = np.where(
                first_exceed > 0,
                cum_rev[np.arange(k), np.maximum(first_exceed, 1) - 1],
                0.0,
            )
            entry_crossing = crossing[cand_col]
            sure = bucket > entry_crossing
            band = np.flatnonzero(bucket == entry_crossing)
            band_col = cand_col[band]
            band_mags = cand_mags[band]
            # stable two-key sort keeps within-column ties in ascending-row
            # order, matching truncation_keep_mask's kind="stable" argsort
            perm = np.lexsort((band_mags, band_col))
            band_counts = np.bincount(band_col, minlength=k)
            prefix = np.cumsum(band_mags[perm])
            band_starts = np.zeros(k, dtype=np.int64)
            np.cumsum(band_counts[:-1], out=band_starts[1:])
            band_base = np.where(band_starts > 0, prefix[np.maximum(band_starts, 1) - 1], 0.0)
            within = prefix - np.repeat(band_base - below_mass, band_counts)
            dropped = within <= np.repeat(budget, band_counts)
            # within-column prefix masses are increasing, so the dropped
            # entries form a prefix of each column's band
            dcum = np.concatenate([[0], np.cumsum(dropped)])
            dropped_counts = (
                np.bincount(cand_col[sure], minlength=k)
                + dcum[np.cumsum(band_counts)]
                - dcum[band_starts]
            )
            kept_counts = column_nnz - dropped_counts
            keep = np.ones(bdata.shape[0], dtype=bool)
            keep[cand_idx[sure]] = False
            keep[cand_idx[band[perm[dropped]]]] = False
    if keep is not None:
        bindices, bdata = bindices[keep], bdata[keep]
    out, out_ptr = _prepend_diag(k, kept_counts, bindices, bdata, cols, diag_vals)
    return out_ptr, out[0], out[1], num_truncated


def _truncate_merged(
    k: int,
    bindptr: np.ndarray,
    bindices: np.ndarray,
    bdata: np.ndarray,
    epsilon: float,
    keep_whole_nnz: float,
) -> "tuple[tuple[np.ndarray, np.ndarray], np.ndarray, int]":
    """Generic Eq. (10) scan over full columns (diagonal already merged).

    Slow path reached only when some diagonal entry is truncation-eligible;
    identical decision procedure to :func:`_truncate_block`, without the
    diagonal shortcut.
    """
    column_nnz = np.diff(bindptr).astype(np.int64)
    big = column_nnz > keep_whole_nnz
    num_truncated = int(np.count_nonzero(big))
    keep = None
    kept_counts = column_nnz
    if num_truncated and epsilon > 0 and bdata.shape[0]:
        magnitudes = np.abs(bdata)
        running = np.cumsum(magnitudes)
        starts, ends = bindptr[:-1], bindptr[1:]
        base = np.where(starts > 0, running[np.maximum(starts, 1) - 1], 0.0)
        totals = np.where(ends > starts, running[np.maximum(ends, 1) - 1], 0.0) - base
        budget = np.where(big, epsilon * totals, -1.0)
        cand_idx = np.flatnonzero(magnitudes <= np.repeat(budget, column_nnz))
        if cand_idx.shape[0]:
            cand_col = np.searchsorted(bindptr, cand_idx, side="right") - 1
            cand_mags = magnitudes[cand_idx]
            perm = np.lexsort((cand_mags, cand_col))
            cand_counts = np.bincount(cand_col, minlength=k)
            prefix = np.cumsum(cand_mags[perm])
            cand_starts = np.zeros(k, dtype=np.int64)
            np.cumsum(cand_counts[:-1], out=cand_starts[1:])
            cand_base = np.where(cand_starts > 0, prefix[np.maximum(cand_starts, 1) - 1], 0.0)
            within = prefix - np.repeat(cand_base, cand_counts)
            dropped = within <= np.repeat(budget, cand_counts)
            if bool(dropped.any()):
                dcum = np.concatenate([[0], np.cumsum(dropped)])
                dropped_counts = dcum[np.cumsum(cand_counts)] - dcum[cand_starts]
                kept_counts = column_nnz - dropped_counts
                keep = np.ones(bdata.shape[0], dtype=bool)
                keep[cand_idx[perm[dropped]]] = False
    if keep is not None:
        bindices, bdata = bindices[keep], bdata[keep]
    kept_ptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(kept_counts, out=kept_ptr[1:])
    return (bindices, bdata), kept_ptr, num_truncated


def _assemble(
    n: int,
    col_rows: "list[np.ndarray]",
    col_vals: "list[np.ndarray]",
    truncated_count: int,
    kept_whole: int,
) -> "tuple[sp.csc_matrix, ApproxInverseStats]":
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    out_indptr[1:] = np.cumsum([r.shape[0] for r in col_rows])
    out_indices = np.concatenate(col_rows) if n else np.empty(0, dtype=np.int64)
    out_data = np.concatenate(col_vals) if n else np.empty(0)
    z_tilde = sp.csc_matrix((out_data, out_indices, out_indptr), shape=(n, n))
    z_tilde.sort_indices()
    stats = ApproxInverseStats(
        nnz=int(z_tilde.nnz),
        n=n,
        columns_truncated=truncated_count,
        columns_kept_whole=kept_whole,
    )
    return z_tilde, stats
