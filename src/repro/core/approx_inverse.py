"""Alg. 2 — sparse approximate inverse of a Cholesky factor.

Let ``Z = L⁻¹`` where ``L`` is the (complete or incomplete) Cholesky factor
of a grounded Laplacian.  Lemma 1 of the paper shows ``Z ≥ 0`` and that its
columns obey the back-substitution recurrence (Eq. 8)::

    z_j = e_j / L_jj  +  Σ_{i>j, L_ij ≠ 0} (−L_ij / L_jj) · z_i

Alg. 2 evaluates the recurrence from column ``n−1`` down to ``0`` using the
already-*truncated* columns ``z̃_i`` on the right-hand side (Eq. 9), then
prunes each new column with the relative 1-norm rule of Eq. (10) — unless it
is already trivially sparse (``nnz ≤ log n``).  Theorem 1 bounds the column
error by ``depth(p)·ε``.

Implementation notes
--------------------
The accumulation uses a dense scratch vector with explicit touched-index
tracking, so each column costs O(Σ nnz(z̃_i) + t log t) where ``t`` is the
number of touched rows — the same complexity the paper reports
(O(n log n · log log n) overall when nnz per column is O(log n)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.truncation import truncation_keep_mask
from repro.utils.validation import check_square_sparse


@dataclass
class ApproxInverseStats:
    """Diagnostics of an Alg. 2 run (feeds the Table I ``nnz/n·log n`` column)."""

    nnz: int
    n: int
    columns_truncated: int
    columns_kept_whole: int

    @property
    def nnz_per_nlogn(self) -> float:
        """``nnz(Z̃) / (n · log n)`` — the paper's sparsity metric."""
        denom = self.n * max(np.log(self.n), 1.0)
        return float(self.nnz) / denom

    @property
    def average_column_nnz(self) -> float:
        """Mean stored entries per column."""
        return float(self.nnz) / max(self.n, 1)


def approximate_inverse(
    lower: sp.spmatrix,
    epsilon: float = 1e-3,
    small_column_threshold: "float | None" = None,
) -> "tuple[sp.csc_matrix, ApproxInverseStats]":
    """Run Alg. 2 on the lower-triangular factor ``lower``.

    Parameters
    ----------
    lower:
        Sparse lower-triangular Cholesky factor (positive diagonal;
        nonpositive off-diagonals for Laplacian inputs, though the code does
        not require the sign structure).
    epsilon:
        Per-column relative 1-norm truncation budget ``ε`` (paper: 1e-3).
        ``ε = 0`` keeps every computed entry: ``Z̃`` is then the exact
        ``L⁻¹`` (up to floating-point rounding).
    small_column_threshold:
        Columns with at most this many nonzeros skip truncation
        (Alg. 2 line 3 uses ``log n``, the default).

    Returns
    -------
    (Z̃, stats):
        The sparse approximate inverse (CSC, lower triangular, nonnegative
        for M-matrix inputs) and run statistics.
    """
    check_square_sparse(lower, "lower")
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    csc = sp.csc_matrix(lower)
    csc.sort_indices()
    n = csc.shape[0]
    keep_whole_nnz = float(np.log(max(n, 2))) if small_column_threshold is None else float(small_column_threshold)

    indptr, indices, data = csc.indptr, csc.indices, csc.data
    diag_first = indices[indptr[:-1]] == np.arange(n)
    if not bool(np.all(diag_first)):
        raise ValueError("factor must store the diagonal as first entry of each column")

    col_rows: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    col_vals: list[np.ndarray] = [np.empty(0)] * n
    scratch = np.zeros(n)
    truncated_count = 0
    kept_whole = 0
    total_nnz = 0

    for j in range(n - 1, -1, -1):
        start, end = indptr[j], indptr[j + 1]
        diag = data[start]
        if diag <= 0:
            raise ValueError(f"factor has nonpositive diagonal {diag:g} at column {j}")
        below_rows = indices[start + 1:end]
        below_vals = data[start + 1:end]

        scratch[j] += 1.0 / diag
        touched = [np.array([j], dtype=np.int64)]
        for i, lij in zip(below_rows, below_vals):
            coeff = -lij / diag
            if coeff == 0.0:
                continue
            zi_rows = col_rows[i]
            scratch[zi_rows] += coeff * col_vals[i]
            touched.append(zi_rows)

        idx = np.unique(np.concatenate(touched)) if len(touched) > 1 else touched[0]
        vals = scratch[idx]
        scratch[idx] = 0.0
        nonzero = vals != 0.0
        idx, vals = idx[nonzero], vals[nonzero]

        if idx.shape[0] <= keep_whole_nnz:
            kept_whole += 1
        else:
            mask = truncation_keep_mask(vals, epsilon)
            idx, vals = idx[mask], vals[mask]
            truncated_count += 1

        col_rows[j] = idx
        col_vals[j] = vals
        total_nnz += idx.shape[0]

    out_indptr = np.zeros(n + 1, dtype=np.int64)
    out_indptr[1:] = np.cumsum([r.shape[0] for r in col_rows])
    out_indices = np.concatenate(col_rows) if n else np.empty(0, dtype=np.int64)
    out_data = np.concatenate(col_vals) if n else np.empty(0)
    z_tilde = sp.csc_matrix((out_data, out_indices, out_indptr), shape=(n, n))
    z_tilde.sort_indices()
    stats = ApproxInverseStats(
        nnz=int(z_tilde.nnz),
        n=n,
        columns_truncated=truncated_count,
        columns_kept_whole=kept_whole,
    )
    return z_tilde, stats
