"""Effective-resistance engines — Alg. 3 and the exact reference.

The public entry points are:

* :class:`CholInvEffectiveResistance` — the paper's Alg. 3: incomplete
  Cholesky of the grounded Laplacian, Alg. 2 approximate inverse, then each
  query answered as ``R(p,q) ≈ ‖z̃_p − z̃_q‖²`` (Eq. 22);
* :class:`ExactEffectiveResistance` — factor once (SuperLU), then each query
  solved directly: ``R(p,q) = (e_p − e_q)ᵀ L_G⁻¹ (e_p − e_q)`` (Eq. 3) —
  exact for the grounded SDD matrix, which equals the pseudo-inverse value
  within connected components;
* :func:`effective_resistances` — one-shot convenience dispatcher;
* :func:`spanning_edge_centrality` — the WWW'15 application: the centrality
  of edge ``e`` is ``w(e)·R(e)``, the probability that ``e`` appears in a
  random spanning tree.

Both engines implement the :class:`~repro.core.engine.ResistanceEngine`
protocol and are registered with the engine registry
(:mod:`repro.core.engine`), share the grounding logic, and return ``inf``
for queries that span different connected components (the physical answer:
no current path).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.cholesky.depth import filled_graph_depth
from repro.cholesky.incomplete import ichol
from repro.core.approx_inverse import ApproxInverseStats, approximate_inverse
from repro.core.engine import (
    EngineConfig,
    ResistanceEngine,
    as_pair_columns,
    build_engine,
    config_from_kwargs,
    register_engine,
)
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.graphs.laplacian import grounded_laplacian
from repro.utils.timing import Timer
from repro.utils.validation import require

_PAIR_CHUNK = 65536
_SOLVE_CHUNK = 64

# Back-compat alias: older code (and the baselines) imported the pair
# normaliser from this module before it moved to repro.core.engine.
_as_pair_arrays = as_pair_columns


@register_engine("exact", params=("ground_value",))
class ExactEffectiveResistance(ResistanceEngine):
    """Exact effective resistances via one sparse factorisation (Eq. 3).

    Parameters
    ----------
    graph:
        Weighted undirected graph.
    ground_value:
        Diagonal grounding conductance; defaults to the mean edge weight.
        Any positive value gives the same (exact) within-component answers.
    """

    def __init__(self, graph: Graph, ground_value: "float | None" = None):
        self.graph = graph
        self.timer = Timer()
        if ground_value is None:
            ground_value = float(graph.weights.mean()) if graph.num_edges else 1.0
        self.ground_value = ground_value
        self.component_labels, _ = connected_components(graph)
        with self.timer.section("factorize"):
            matrix, self.ground_nodes = grounded_laplacian(graph, ground_value)
            self._solver = spla.splu(matrix.tocsc())
        self.n = graph.num_nodes

    def query_pairs(self, pairs) -> np.ndarray:
        """Effective resistances for an ``(m, 2)`` array of node pairs."""
        ps, qs = as_pair_columns(pairs)
        out = np.empty(ps.shape[0])
        with self.timer.section("queries"):
            for start in range(0, ps.shape[0], _SOLVE_CHUNK):
                stop = min(start + _SOLVE_CHUNK, ps.shape[0])
                block_p = ps[start:stop]
                block_q = qs[start:stop]
                rhs = np.zeros((self.n, stop - start))
                cols = np.arange(stop - start)
                rhs[block_p, cols] += 1.0
                rhs[block_q, cols] -= 1.0
                x = self._solver.solve(rhs)
                out[start:stop] = x[block_p, cols] - x[block_q, cols]
        same = self.component_labels[ps] == self.component_labels[qs]
        out[~same] = np.inf
        out[ps == qs] = 0.0
        return out


@register_engine(
    "cholinv",
    params=("epsilon", "drop_tol", "ordering", "ground_value",
            "small_column_threshold", "mode", "build_workers"),
)
class CholInvEffectiveResistance(ResistanceEngine):
    """Alg. 3 — effective resistances from the approximate inverse factor.

    Parameters
    ----------
    graph:
        Weighted undirected graph ``G``.
    epsilon:
        Alg. 2 truncation budget ``ε`` (paper default 1e-3).
    drop_tol:
        Incomplete-Cholesky drop tolerance (paper default 1e-3).
        ``drop_tol = 0`` uses the complete factor.
    ordering:
        Fill-reducing ordering: ``"amd"`` (default, matches the quality the
        paper's CHOLMOD setup implies), ``"rcm"`` or ``"natural"``.
    ground_value:
        Diagonal grounding conductance (default: mean edge weight).
    small_column_threshold:
        Alg. 2 line 3 threshold (default ``log n``).
    mode:
        Alg. 2 kernel: ``"blocked"`` (default, level-scheduled batched
        kernel) or ``"reference"`` (the original column-at-a-time loop).
        Both produce the same ``Z̃``; see
        :mod:`repro.core.approx_inverse`.
    build_workers:
        Threads for the level-parallel blocked kernel (default 1).  The
        resulting ``Z̃`` is bit-identical for every worker count; the knob
        only trades build wall-clock.

    Attributes
    ----------
    z_tilde:
        The sparse approximate inverse ``Z̃ ≈ L⁻¹`` (in permuted order).
    stats:
        :class:`~repro.core.approx_inverse.ApproxInverseStats` of the run.
    timer:
        Stage timings (``factorize`` / ``approx_inverse`` / ``queries``).
    """

    def __init__(
        self,
        graph: Graph,
        epsilon: float = 1e-3,
        drop_tol: float = 1e-3,
        ordering: str = "amd",
        ground_value: "float | None" = None,
        small_column_threshold: "float | None" = None,
        mode: str = "blocked",
        build_workers: int = 1,
    ):
        self.graph = graph
        self.epsilon = epsilon
        self.drop_tol = drop_tol
        self.ordering = ordering
        self.small_column_threshold = small_column_threshold
        self.mode = mode
        self.build_workers = build_workers
        self.timer = Timer()
        # keep the caller's setting (None = recompute from the graph) apart
        # from the resolved value: persistence must round-trip the former so
        # a warm-started service regrounds on refresh exactly like a cold one
        self.requested_ground_value = ground_value
        if ground_value is None:
            ground_value = float(graph.weights.mean()) if graph.num_edges else 1.0
        self.ground_value = ground_value
        self.component_labels, _ = connected_components(graph)

        with self.timer.section("factorize"):
            matrix, self.ground_nodes = grounded_laplacian(graph, ground_value)
            self.ichol_result = ichol(matrix, drop_tol=drop_tol, ordering=ordering)
        with self.timer.section("approx_inverse"):
            self.z_tilde, self.stats = approximate_inverse(
                self.ichol_result.lower,
                epsilon=epsilon,
                small_column_threshold=small_column_threshold,
                mode=mode,
                build_workers=build_workers,
            )
        self.perm = self.ichol_result.perm
        self._position = np.empty_like(self.perm)
        self._position[self.perm] = np.arange(self.perm.shape[0])
        squared = self.z_tilde.multiply(self.z_tilde)
        self._column_sq_norms = np.asarray(squared.sum(axis=0)).ravel()
        self.n = graph.num_nodes

    # ------------------------------------------------------------------
    @classmethod
    def from_state(
        cls,
        graph: Graph,
        config: EngineConfig,
        z_tilde: sp.csc_matrix,
        perm: np.ndarray,
        column_sq_norms: np.ndarray,
        component_labels: np.ndarray,
        stats: ApproxInverseStats,
        ground_value: float,
    ) -> "CholInvEffectiveResistance":
        """Rehydrate an engine from persisted state, skipping every solve.

        Used by :func:`repro.core.persistence.load_engine`: the restored
        engine answers queries bit-identically to the one that was saved.
        The incomplete-Cholesky factor itself is *not* persisted, so
        :attr:`depths` / :attr:`max_depth` are unavailable on the result.
        """
        engine = cls.__new__(cls)
        engine.graph = graph
        engine.epsilon = config.epsilon
        engine.drop_tol = config.drop_tol
        engine.ordering = config.ordering
        engine.small_column_threshold = config.small_column_threshold
        engine.mode = config.mode
        engine.build_workers = config.build_workers
        engine.timer = Timer()
        engine.requested_ground_value = config.ground_value
        engine.ground_value = ground_value
        engine.component_labels = component_labels
        engine.ground_nodes = None
        engine.ichol_result = None
        engine.z_tilde = z_tilde
        engine.stats = stats
        engine.perm = perm
        engine._position = np.empty_like(perm)
        engine._position[perm] = np.arange(perm.shape[0])
        engine._column_sq_norms = column_sq_norms
        engine.n = graph.num_nodes
        engine.config = config
        return engine

    def save(self, path):
        """Serialise ``Z̃``, permutation, norms, labels and config to .npz."""
        from repro.core.persistence import save_engine

        return save_engine(self, path)

    # ------------------------------------------------------------------
    @property
    def depths(self) -> np.ndarray:
        """Filled-graph depth (Eq. 11) of every permuted node."""
        require(
            self.ichol_result is not None,
            "depth statistics need the Cholesky factor, which is not "
            "persisted — unavailable on an engine restored from disk",
        )
        return filled_graph_depth(self.ichol_result.lower)

    @property
    def max_depth(self) -> int:
        """The ``dpt`` statistic of Table I."""
        depths = self.depths
        return int(depths.max()) if depths.size else 0

    # ------------------------------------------------------------------
    def query_pairs(self, pairs) -> np.ndarray:
        """Approximate effective resistances for ``(m, 2)`` node pairs.

        Evaluates ``‖z̃_p − z̃_q‖² = ‖z̃_p‖² + ‖z̃_q‖² − 2·z̃_pᵀz̃_q`` in
        chunks; the cross terms come from an element-wise product of column
        slices, so the cost is linear in the touched nonzeros.
        """
        ps, qs = as_pair_columns(pairs)
        cols_p = self._position[ps]
        cols_q = self._position[qs]
        out = np.empty(ps.shape[0])
        # bound the materialised column-slice size: dense Z̃ columns (social
        # graphs) get small chunks, sparse ones (meshes) get large chunks
        average_nnz = max(1.0, self.z_tilde.nnz / max(self.n, 1))
        chunk = int(min(_PAIR_CHUNK, max(1024, 2e7 / average_nnz)))
        with self.timer.section("queries"):
            for start in range(0, ps.shape[0], chunk):
                stop = min(start + chunk, ps.shape[0])
                a = self.z_tilde[:, cols_p[start:stop]]
                b = self.z_tilde[:, cols_q[start:stop]]
                dots = np.asarray(a.multiply(b).sum(axis=0)).ravel()
                out[start:stop] = (
                    self._column_sq_norms[cols_p[start:stop]]
                    + self._column_sq_norms[cols_q[start:stop]]
                    - 2.0 * dots
                )
        np.maximum(out, 0.0, out=out)
        same = self.component_labels[ps] == self.component_labels[qs]
        out[~same] = np.inf
        out[ps == qs] = 0.0
        return out


def effective_resistances(
    graph: Graph,
    pairs=None,
    method: str = "cholinv",
    config: "EngineConfig | None" = None,
    **kwargs,
) -> np.ndarray:
    """One-shot convenience API (dispatches through the engine registry).

    Parameters
    ----------
    graph:
        Weighted undirected graph.
    pairs:
        ``(m, 2)`` query pairs; default: every edge of the graph.
    method:
        Any registered engine name — ``"cholinv"`` (Alg. 3, default),
        ``"exact"``, ``"random_projection"`` or ``"naive"``; see
        :func:`repro.core.engine.registered_engines`.
    config:
        Full :class:`~repro.core.engine.EngineConfig`; overrides
        ``method``/``kwargs`` when given.
    kwargs:
        Legacy engine parameters, folded into an ``EngineConfig``.
    """
    if pairs is None:
        pairs = graph.edge_array()
    if config is None:
        config = config_from_kwargs(method, **kwargs)
    elif kwargs:
        raise ValueError("pass config or engine kwargs, not both")
    elif method != "cholinv" and method != config.method:
        raise ValueError(
            f"method {method!r} conflicts with config.method {config.method!r}"
        )
    return build_engine(graph, config).query_pairs(pairs)


def spanning_edge_centrality(
    graph: Graph, method: str = "cholinv", **kwargs
) -> np.ndarray:
    """Spanning-edge centrality ``c(e) = w(e)·R(e)`` for every edge.

    This is the quantity the WWW'15 baseline paper computes: the probability
    that edge ``e`` belongs to a uniformly random spanning tree.  For a
    connected graph the exact values sum to ``n − 1`` (a property test
    exploits this invariant).
    """
    resistances = effective_resistances(graph, method=method, **kwargs)
    return graph.weights * resistances


def dense_pinv_resistance(graph: Graph, pairs) -> np.ndarray:
    """Reference values through the dense pseudo-inverse (tests only).

    Computes Eq. (3) literally: ``R(p,q) = e_pqᵀ L_G† e_pq``.  O(n³) — keep
    ``n`` small.
    """
    from repro.graphs.laplacian import laplacian

    lap = laplacian(graph).toarray()
    pinv = np.linalg.pinv(lap)
    ps, qs = as_pair_columns(pairs)
    diffs = pinv[ps, ps] + pinv[qs, qs] - pinv[ps, qs] - pinv[qs, ps]
    labels, _ = connected_components(graph)
    diffs = np.asarray(diffs, dtype=np.float64)
    diffs[labels[ps] != labels[qs]] = np.inf
    diffs[ps == qs] = 0.0
    return diffs
