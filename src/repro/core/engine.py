"""The ``ResistanceEngine`` protocol, engine registry and configuration.

Every effective-resistance solver in the repository — the paper's Alg. 3
(:class:`~repro.core.effective_resistance.CholInvEffectiveResistance`), the
exact direct-factorisation engine, the WWW'15 random-projection baseline,
the naive per-query strawman and the component-sharded composite — speaks
the same small interface defined here:

``query(p, q)``
    effective resistance between two nodes (``inf`` across components);
``query_pairs(pairs)``
    vectorised batch of ``(m, 2)`` queries (an empty batch returns an
    empty float array);
``all_edge_resistances()``
    ``query_pairs`` over every edge of the served graph;
``n`` / ``component_labels`` / ``timer`` / ``graph``
    the served node count, connected-component labels, stage timings and
    the graph itself.

Engines register under a short name with :func:`register_engine`, declaring
which :class:`EngineConfig` fields they consume; :func:`build_engine` is the
single dispatch point the convenience API
(:func:`~repro.core.effective_resistance.effective_resistances`), the
serving layer (:class:`~repro.service.ResistanceService`), the reduction
pipeline, the bench harness and the CLI all go through.  ``EngineConfig``
replaces the untyped kwargs soup those layers used to forward blindly: one
frozen dataclass carries every tunable, each engine picks out its own
fields, and the whole thing serialises to/from a plain dict for engine
persistence (:mod:`repro.core.persistence`).

Example
-------
>>> from repro.core.engine import EngineConfig, build_engine
>>> from repro.graphs.generators import grid_2d
>>> engine = build_engine(grid_2d(8, 8), EngineConfig(epsilon=1e-4))
>>> engine.query(0, 63) > 0
True
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np
from numpy.typing import ArrayLike

from repro.graphs.graph import Graph
from repro.utils.timing import Timer
from repro.utils.validation import require


def as_pair_array(pairs: ArrayLike) -> np.ndarray:
    """Normalise a pair list / tuple / array into an ``(m, 2)`` int array.

    Empty inputs (``[]``, ``np.empty((0, 2))``, …) normalise to a
    ``(0, 2)`` array so batch code paths degrade to empty results instead
    of raising.
    """
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim == 1 and arr.shape[0] == 2:
        arr = arr.reshape(1, 2)
    require(arr.ndim == 2 and arr.shape[1] == 2, "pairs must be an (m, 2) array")
    return arr


def as_pair_columns(pairs: ArrayLike) -> "tuple[np.ndarray, np.ndarray]":
    """:func:`as_pair_array` split into ``(ps, qs)`` index arrays."""
    arr = as_pair_array(pairs)
    return arr[:, 0], arr[:, 1]


def validate_node_ids(ids: ArrayLike, num_nodes: int) -> None:
    """Raise ``ValueError`` naming the first id outside ``0 .. num_nodes-1``.

    The serving layer calls this at its boundary so a bad request fails
    with a clear message instead of an ``IndexError`` (or, worse, a
    silently wrapped negative index) deep inside an engine.
    """
    arr = np.asarray(ids, dtype=np.int64).ravel()
    if arr.size == 0:
        return
    bad = (arr < 0) | (arr >= num_nodes)
    if bad.any():
        first = int(arr[np.argmax(bad)])
        raise ValueError(
            f"node id {first} is out of range for a graph with "
            f"{num_nodes} nodes (valid ids: 0..{num_nodes - 1})"
        )


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineConfig:
    """Typed, frozen bundle of every engine tunable.

    One config type serves all engines: each registered engine declares the
    subset of fields it consumes (see :func:`register_engine`) and the
    factory forwards exactly those, so e.g. ``epsilon`` is simply inactive
    when ``method="exact"``.  Defaults match the individual engine
    constructors (which in turn follow the paper).

    Fields
    ------
    method:
        Registered engine name — ``"cholinv"`` (Alg. 3, default),
        ``"exact"``, ``"random_projection"`` or ``"naive"``.
    epsilon, drop_tol, ordering, mode, small_column_threshold:
        Alg. 3 knobs (see
        :class:`~repro.core.effective_resistance.CholInvEffectiveResistance`).
    ground_value:
        Grounding conductance used by every engine (default: mean edge
        weight of the served graph).
    num_projections, c_jl, solver, pcg_rtol:
        WWW'15 random-projection knobs.
    rtol:
        Per-query solve tolerance of the naive engine.
    seed:
        RNG seed for randomised engines.
    sharded:
        Build one sub-engine per shard
        (:class:`~repro.core.sharded.ShardedEngine`) instead of factoring
        the whole graph at once; what a shard *is* comes from
        ``shard_strategy``.
    shard_strategy:
        ``"component"`` (default: one shard per connected component) or
        ``"separator"`` (components larger than ``max_shard_nodes`` are
        additionally split into separator-bounded regions, with exact
        Schur-complement cross-region queries — see
        :mod:`repro.core.partitioned`).  Any non-default strategy implies
        ``sharded``.
    max_shard_nodes:
        With ``shard_strategy="separator"``, the target region size; a
        component at or below it stays one whole shard.  ``None`` picks
        ``max(512, ceil(component_size / 4))`` per component.
    separator:
        Separator construction method — ``"bisection"`` (recursive
        bisection + vertex separators, nested-dissection shape, default)
        or ``"kway"`` (k-way partition + greedy cover of crossing edges).
    lazy_shards:
        With ``sharded``, defer each shard's build to its first query.
    build_workers:
        Threads used to *build* the engine (default 1 = serial).  For the
        Alg. 3 engine the level-parallel blocked kernel splits large
        levels into column chunks run concurrently; for a sharded engine
        eager component builds (and :meth:`ShardedEngine.warm_up`) fan
        out over this many threads.  Every worker count produces
        bit-identical engines — the knob trades build wall-clock only.
    num_landmarks, landmark_strategy:
        Tiered-estimator knobs of the ``"landmark"`` engine
        (:class:`~repro.estimators.landmark.LandmarkEffectiveResistance`):
        how many landmark nodes to index and how to pick them
        (``"degree"`` — top weighted degree, default; ``"spread"`` — BFS
        farthest-point; ``"random"`` — seeded uniform sample).
    num_walks, walk_length:
        Tiered-estimator knobs of the ``"local_walk"`` engine: Monte-Carlo
        walks per endpoint and the (lazy) walk truncation length.
    num_trees:
        Wilson samples of the ``"spanning_tree"`` coarse tier.
    tiers:
        Escalation ladder of the ``"adaptive"`` engine, cheapest first
        (default ``None`` = ``("landmark", "cholinv")``).  Lists normalise
        to tuples so configs stay hashable and JSON round-trips exactly.
    tier_rel_tol:
        Relative error tolerance the ``"adaptive"`` engine enforces before
        escalating a pair to the next tier.
    """

    method: str = "cholinv"
    epsilon: float = 1e-3
    drop_tol: float = 1e-3
    ordering: str = "amd"
    mode: str = "blocked"
    small_column_threshold: "float | None" = None
    ground_value: "float | None" = None
    num_projections: "int | None" = None
    c_jl: float = 100.0
    solver: str = "pcg"
    pcg_rtol: float = 1e-6
    rtol: float = 1e-10
    seed: "int | None" = None
    sharded: bool = False
    shard_strategy: str = "component"
    max_shard_nodes: "int | None" = None
    separator: str = "bisection"
    lazy_shards: bool = False
    build_workers: int = 1
    num_landmarks: int = 32
    landmark_strategy: str = "degree"
    num_walks: int = 512
    walk_length: int = 32
    num_trees: int = 200
    tiers: "tuple[str, ...] | None" = None
    tier_rel_tol: float = 0.05

    def __post_init__(self) -> None:
        require(
            self.build_workers >= 1,
            f"build_workers must be >= 1, got {self.build_workers}",
        )
        require(
            self.num_landmarks >= 1,
            f"num_landmarks must be >= 1, got {self.num_landmarks}",
        )
        require(
            self.landmark_strategy in ("degree", "spread", "random"),
            f"landmark_strategy must be 'degree', 'spread' or 'random', "
            f"got {self.landmark_strategy!r}",
        )
        require(
            self.num_walks >= 1, f"num_walks must be >= 1, got {self.num_walks}"
        )
        require(
            self.walk_length >= 1,
            f"walk_length must be >= 1, got {self.walk_length}",
        )
        require(
            self.num_trees >= 1, f"num_trees must be >= 1, got {self.num_trees}"
        )
        require(
            self.tier_rel_tol > 0.0,
            f"tier_rel_tol must be > 0, got {self.tier_rel_tol}",
        )
        if self.tiers is not None:
            # JSON persistence round-trips tuples through lists; normalise
            # back so configs stay hashable and compare equal after reload
            tiers = tuple(self.tiers)
            require(
                len(tiers) >= 1 and all(isinstance(t, str) for t in tiers),
                f"tiers must be a non-empty sequence of engine names, "
                f"got {self.tiers!r}",
            )
            object.__setattr__(self, "tiers", tiers)
        require(
            self.shard_strategy in ("component", "separator"),
            f"shard_strategy must be 'component' or 'separator', "
            f"got {self.shard_strategy!r}",
        )
        require(
            self.separator in ("bisection", "kway"),
            f"separator must be 'bisection' or 'kway', got {self.separator!r}",
        )
        require(
            self.max_shard_nodes is None or self.max_shard_nodes >= 2,
            f"max_shard_nodes must be None or >= 2, got {self.max_shard_nodes}",
        )

    def replace(self, **changes: Any) -> "EngineConfig":
        """Copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> "dict[str, Any]":
        """Plain-dict form (JSON-friendly) for persistence."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: "dict[str, Any]") -> "EngineConfig":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so configs
        saved by newer versions still load."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def config_from_kwargs(method: str = "cholinv", **kwargs: Any) -> EngineConfig:
    """Build an :class:`EngineConfig` from legacy ``method=`` + kwargs calls.

    This is the shim that keeps every pre-registry call signature working:
    unknown parameter names raise a ``ValueError`` listing the valid ones.
    """
    valid = {f.name for f in dataclasses.fields(EngineConfig)} - {"method"}
    unknown = sorted(set(kwargs) - valid)
    if unknown:
        raise ValueError(
            f"unknown engine parameter(s) {unknown}; valid: {sorted(valid)}"
        )
    return EngineConfig(method=method, **kwargs)


# ----------------------------------------------------------------------
# the protocol
# ----------------------------------------------------------------------
class ResistanceEngine(abc.ABC):
    """Abstract base class every effective-resistance engine implements.

    Subclasses must set ``graph``, ``n``, ``component_labels`` and
    ``timer`` during construction and implement :meth:`query_pairs`; the
    scalar :meth:`query` and :meth:`all_edge_resistances` have default
    implementations on top of it.  ``config`` is attached by
    :func:`build_engine` (``None`` on engines constructed directly).
    """

    graph: Graph
    n: int
    component_labels: np.ndarray
    timer: Timer
    config: "EngineConfig | None" = None

    @abc.abstractmethod
    def query_pairs(self, pairs: ArrayLike) -> np.ndarray:
        """Effective resistances for an ``(m, 2)`` array of node pairs."""

    def query(self, p: int, q: int) -> float:
        """Effective resistance between nodes ``p`` and ``q``."""
        return float(self.query_pairs([(int(p), int(q))])[0])

    def all_edge_resistances(self) -> np.ndarray:
        """Effective resistance of every edge of the served graph."""
        return self.query_pairs(self.graph.edge_array())

    def save(self, path: "str | Path") -> Path:
        """Serialise the built engine to ``path`` (``.npz``).

        Only engines whose state is plain arrays support this — currently
        the Alg. 3 engine; see :mod:`repro.core.persistence`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support persistence; only the "
            f'"cholinv" (Alg. 3) engine serialises its factor to disk'
        )


# ----------------------------------------------------------------------
# registry + factory
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _EngineSpec:
    cls: type
    params: "tuple[str, ...]"


_REGISTRY: "dict[str, _EngineSpec]" = {}
_registered_builtins = False


def register_engine(
    name: str, *, params: "tuple[str, ...]" = ()
) -> "Callable[[type], type]":
    """Class decorator registering an engine under ``name``.

    ``params`` names the :class:`EngineConfig` fields the engine's
    constructor accepts (beyond the graph); :func:`build_engine` forwards
    exactly those.  Re-registering a name overwrites it, so downstream
    code can swap in experimental engines.
    """
    config_fields = {f.name for f in dataclasses.fields(EngineConfig)}
    bad = sorted(set(params) - config_fields)
    require(not bad, f"params {bad} are not EngineConfig fields")

    def decorate(cls: type) -> type:
        _REGISTRY[name] = _EngineSpec(cls, tuple(params))
        cls.engine_name = name
        return cls

    return decorate


def _ensure_builtins_registered() -> None:
    """Import the modules whose classes self-register (idempotent)."""
    global _registered_builtins
    if _registered_builtins:
        return
    import repro.baselines.naive  # noqa: F401
    import repro.baselines.random_projection  # noqa: F401
    import repro.baselines.spanning_tree  # noqa: F401
    import repro.core.effective_resistance  # noqa: F401
    import repro.estimators  # noqa: F401

    _registered_builtins = True


def registered_engines() -> "tuple[str, ...]":
    """Sorted names of every registered engine."""
    _ensure_builtins_registered()
    return tuple(sorted(_REGISTRY))


def engine_params(name: str) -> "tuple[str, ...]":
    """The :class:`EngineConfig` fields the engine ``name`` consumes.

    This is the declared persistence/forwarding surface of an engine: the
    factory forwards exactly these fields, and for ``"cholinv"`` the
    persistence layer must save and restore every one of them (the
    ``config-persistence-drift`` lint rule and the round-trip regression
    test both key off this list).
    """
    _ensure_builtins_registered()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return spec.params


def build_engine(
    graph: Graph,
    config: "EngineConfig | str | None" = None,
    **kwargs: Any,
) -> ResistanceEngine:
    """Build the engine a config describes — the registry's single factory.

    ``config`` may be a full :class:`EngineConfig`, a bare method name
    (kwargs then fill the remaining fields), or ``None`` (pure kwargs /
    all defaults).  ``config.sharded`` — or any ``shard_strategy`` other
    than ``"component"`` — wraps the chosen method in a
    :class:`~repro.core.sharded.ShardedEngine` (the partitioned layer).
    """
    if config is None or isinstance(config, str):
        config = config_from_kwargs(config or "cholinv", **kwargs)
    elif kwargs:
        raise ValueError("pass an EngineConfig or keyword parameters, not both")
    _ensure_builtins_registered()
    spec = _REGISTRY.get(config.method)
    if spec is None:
        raise ValueError(
            f"unknown method {config.method!r}; registered engines: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    if config.sharded or config.shard_strategy != "component":
        from repro.core.sharded import ShardedEngine

        engine: ResistanceEngine = ShardedEngine(graph, config)
    else:
        engine = spec.cls(graph, **{p: getattr(config, p) for p in spec.params})
    engine.config = config
    return engine
