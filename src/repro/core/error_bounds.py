"""Theorem 1 / Eq. (25)–(26) error machinery and sampled error estimation.

Three layers of analysis, mirroring the paper:

* **Theorem 1** — a priori column bound ``‖z_p − z̃_p‖₁ / ‖z_p‖₁ ≤
  depth(p)·ε``;
* **Eq. (25)–(26)** — first-order relative error of an effective-resistance
  query, ``|R̃/R − 1| ≲ α_pq · ε`` with the coefficient ``α_pq`` computable
  from exact columns on small instances;
* **Sampled Ea/Em** — Table I estimates errors by drawing 1000 random edges,
  computing exact resistances for them and averaging relative errors; the
  same estimator is implemented in :func:`estimate_query_errors`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.cholesky.depth import filled_graph_depth
from repro.cholesky.triangular import solve_lower, unit_vector
from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
)
from repro.core.engine import build_engine
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng


def theorem1_bound(lower: sp.spmatrix, epsilon: float) -> np.ndarray:
    """Per-node a priori relative 1-norm bound ``depth(p)·ε`` of Theorem 1."""
    return filled_graph_depth(lower).astype(np.float64) * float(epsilon)


@dataclass
class ColumnErrorReport:
    """Measured vs. bounded column errors for a sample of nodes."""

    nodes: np.ndarray
    measured: np.ndarray
    bound: np.ndarray

    @property
    def max_violation(self) -> float:
        """Largest ``measured − bound``; ``<= 0`` when Theorem 1 holds."""
        return float(np.max(self.measured - self.bound))

    @property
    def tightness(self) -> np.ndarray:
        """``measured / bound`` (NaN where the bound is zero)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.measured / self.bound


def column_error_report(
    lower: sp.spmatrix,
    z_tilde: sp.spmatrix,
    epsilon: float,
    sample_nodes=None,
    seed=None,
    max_samples: int = 50,
) -> ColumnErrorReport:
    """Measure ``‖z_p − z̃_p‖₁/‖z_p‖₁`` against the Theorem 1 bound.

    Exact columns ``z_p = L⁻¹e_p`` come from sparse triangular solves, so the
    check stays affordable on mid-size factors.
    """
    n = lower.shape[0]
    if sample_nodes is None:
        rng = ensure_rng(seed)
        count = min(max_samples, n)
        sample_nodes = rng.choice(n, size=count, replace=False)
    sample_nodes = np.asarray(sample_nodes, dtype=np.int64)

    depths = filled_graph_depth(lower)
    z_csc = sp.csc_matrix(z_tilde)
    measured = np.empty(sample_nodes.shape[0])
    for out_idx, p in enumerate(sample_nodes):
        exact = solve_lower(sp.csc_matrix(lower), unit_vector(n, int(p)))
        approx = np.asarray(z_csc[:, int(p)].todense()).ravel()
        denom = np.abs(exact).sum() or 1.0
        measured[out_idx] = np.abs(exact - approx).sum() / denom
    bound = depths[sample_nodes].astype(np.float64) * float(epsilon)
    return ColumnErrorReport(nodes=sample_nodes, measured=measured, bound=bound)


def alpha_coefficient(
    lower: sp.spmatrix, p: int, q: int, depths: "np.ndarray | None" = None
) -> float:
    """The Eq. (25) coefficient ``α_pq`` from exact inverse columns.

    ``α_pq = 2‖z_pq‖₁(‖z_p‖₁·depth(p) + ‖z_q‖₁·depth(q)) / ‖z_pq‖₂²`` —
    the first-order sensitivity of the relative query error to ``ε``.
    """
    csc = sp.csc_matrix(lower)
    n = csc.shape[0]
    if depths is None:
        depths = filled_graph_depth(csc)
    z_p = solve_lower(csc, unit_vector(n, p))
    z_q = solve_lower(csc, unit_vector(n, q))
    z_pq = z_p - z_q
    norm1_pq = np.abs(z_pq).sum()
    norm2_sq = float(z_pq @ z_pq)
    if norm2_sq == 0.0:
        return 0.0
    weighted = np.abs(z_p).sum() * depths[p] + np.abs(z_q).sum() * depths[q]
    return float(2.0 * norm1_pq * weighted / norm2_sq)


@dataclass
class QueryErrorEstimate:
    """Sampled relative-error statistics (the Ea / Em columns of Table I)."""

    average: float
    maximum: float
    sample_size: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ea={self.average:.3e} Em={self.maximum:.3e} (k={self.sample_size})"


def estimate_query_errors(
    estimator,
    graph: Graph,
    num_samples: int = 1000,
    seed=None,
    exact: "ExactEffectiveResistance | None" = None,
) -> QueryErrorEstimate:
    """Estimate Ea (mean) and Em (max) relative errors on random edges.

    Follows the paper's protocol: draw up to ``num_samples`` edges uniformly
    at random, compute exact effective resistances for them with the direct
    method, and compare.

    Parameters
    ----------
    estimator:
        Any object with ``query_pairs`` (Alg. 3, the baseline, ...).
    graph:
        The graph the estimator was built on.
    num_samples:
        Sample size (paper: 1000).
    exact:
        Optional pre-built exact engine to amortise its factorisation.
    """
    rng = ensure_rng(seed)
    m = graph.num_edges
    count = min(num_samples, m)
    chosen = rng.choice(m, size=count, replace=False)
    pairs = np.column_stack([graph.heads[chosen], graph.tails[chosen]])
    if exact is None:
        exact = build_engine(graph, "exact")
    truth = exact.query_pairs(pairs)
    approx = estimator.query_pairs(pairs)
    rel = np.abs(approx - truth) / np.maximum(np.abs(truth), 1e-300)
    return QueryErrorEstimate(
        average=float(rel.mean()), maximum=float(rel.max()), sample_size=count
    )


def cholinv_error_budget(estimator: CholInvEffectiveResistance) -> dict:
    """Summarise the a priori error budget of an Alg. 3 estimator.

    Returns the maximum depth, ε, and the Theorem 1 worst-case column bound
    ``dpt·ε`` — the quantities the paper's discussion (Section III-B/C)
    relates to observed accuracy.
    """
    dpt = estimator.max_depth
    return {
        "epsilon": estimator.epsilon,
        "drop_tol": estimator.drop_tol,
        "max_depth": dpt,
        "worst_case_column_bound": dpt * estimator.epsilon,
    }
