"""Partitioned engines — shards from components *or* vertex separators.

PR 3's component sharding scaled out multi-component graphs, but a
social-network-shaped input — one giant connected component — still built
and served as a single monolithic factor.  This module generalises the
sharding layer so a shard is no longer synonymous with a connected
component: a :class:`ShardPlan` assigns every node either to a *region*
(shard) or to a *vertex separator*, and :class:`PartitionedEngine` factors
each region independently through the ordinary engine registry while
answering cross-region pairs **exactly** through a small dense Schur
complement on the separator (PEERS-style parallel exact solve; see
PAPERS.md).

Two strategies produce plans:

* ``"component"`` — one region per connected component, empty separator.
  This is exactly the old :class:`~repro.core.sharded.ShardedEngine`
  behaviour (which is now a thin subclass of this engine).
* ``"separator"`` — components larger than ``max_shard_nodes`` are split
  into separator-bounded regions, either by recursive bisection +
  vertex-separator extraction (``separator="bisection"``, the
  nested-dissection shape of :mod:`repro.cholesky.nested_dissection`) or
  by a k-way partition whose crossing edges are covered greedily
  (``separator="kway"`` via :func:`repro.partition.interface.partition_graph`).

The math (block-arrow decomposition)
------------------------------------
Order a split component as regions ``R_1 .. R_k`` followed by the
separator ``S`` and ground one separator node; the grounded Laplacian
becomes a block-arrow matrix ``A`` with block-diagonal region part
``A_ii`` (pure region Laplacians plus the diagonal coupling mass — no
region–region blocks, because every region–region path crosses ``S``).
With ``m_pq = e_pᵀ A_ii⁻¹ e_q``, ``u_p = B_iᵀ A_ii⁻¹ e_p`` (``B_i =
A[R_i, S]``) and the Schur complement ``S_c = A_SS − Σ_i B_iᵀ A_ii⁻¹
B_i``, the block-inverse identities give one uniform formula for every
same-component pair::

    R(p, q) = base(p, q) + (u_p − u_q)ᵀ S_c⁻¹ (u_p − u_q)

where ``base = m_pp + m_qq − 2·m_pq·[same region]`` and separator
endpoints contribute ``u_s = −e_s``, ``m_ss = 0``.

The rim-node gadget makes the region factors reusable engines: region
``i`` is served by the *halo graph* ``H_i`` — the induced subgraph plus
one auxiliary rim node ``a`` tied to every boundary node ``v`` with the
node's total separator coupling ``c_v``.  Then ``A_ii`` equals the
Laplacian of ``H_i`` with row/column ``a`` deleted, so the deleted-node
inverse identity turns every ``m`` term into plain effective-resistance
queries against the *unmodified* registered engine::

    m_pq = (R_H(p, a) + R_H(q, a) − R_H(p, q)) / 2

In particular ``base`` for a same-region pair collapses to exactly
``R_H(p, q)`` — one engine query — and the correction term needs only
resistances from batch endpoints to the rim and to the boundary nodes.
With an exact region engine the whole construction is exact; with the
Alg. 3 engine the error stays at the region engines' configured level.

``S_c`` itself is assembled per region from
:func:`repro.reduction.schur.schur_reduce` on ``[[A_ii, B_i], [B_iᵀ,
0]]`` (the zero kept block makes the reduction return ``−B_iᵀ A_ii⁻¹
B_i`` directly), which parallelises over regions exactly like shard
builds; accumulation into ``S_c`` is serialised in shard order so every
worker count yields bit-identical engines.

The serving stack needs no changes: :meth:`PartitionedEngine.shard_subbatches`
returns region groups with shard-local pairs (ids ``< num_shards``) plus
one *cross group* per split component under a pseudo shard id ``>=
num_shards`` carrying global pairs, and :meth:`PartitionedEngine.query_shard`
dispatches on the id — so the planner/executor/async layers fan separator
traffic out exactly like any other shard.
"""

from __future__ import annotations

import concurrent.futures
import threading
from dataclasses import dataclass, field

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.cholesky.nested_dissection import vertex_separator
from repro.core.engine import (
    EngineConfig,
    ResistanceEngine,
    as_pair_array,
    as_pair_columns,
    build_engine,
)
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.graphs.laplacian import grounded_laplacian
from repro.partition.interface import partition_graph
from repro.partition.multilevel import multilevel_bisection
from repro.reduction.schur import schur_reduce
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import require


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class ShardPlan:
    """Node-to-shard assignment with an optional vertex separator.

    Attributes
    ----------
    strategy:
        ``"component"`` or ``"separator"`` — how the plan was produced.
    num_shards:
        Number of regions.  Cross-region query groups use pseudo shard ids
        ``num_shards + j`` (one per split component, in
        :attr:`split_components` order).
    shard_of:
        Region id per node; ``-1`` marks separator nodes.
    component_labels:
        Connected-component label per node (separator nodes keep their
        component's label — a separator never changes reachability).
    num_components:
        Number of connected components.
    separator:
        Sorted global ids of all separator nodes (empty for the component
        strategy).
    """

    strategy: str
    num_shards: int
    shard_of: np.ndarray
    component_labels: np.ndarray
    num_components: int
    separator: np.ndarray

    @property
    def split_components(self) -> np.ndarray:
        """Sorted components that were split (i.e. own separator nodes)."""
        if self.separator.size == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.component_labels[self.separator])

    def members(self, shard: int) -> np.ndarray:
        """Sorted global node ids of one region."""
        return np.flatnonzero(self.shard_of == shard)

    def validate(self, graph: Graph) -> None:
        """Structural sanity: every node is a region node xor separator."""
        require(
            self.shard_of.shape[0] == graph.num_nodes,
            "plan does not cover the graph",
        )
        in_sep = np.zeros(graph.num_nodes, dtype=bool)
        in_sep[self.separator] = True
        require(
            bool(np.all((self.shard_of >= 0) != in_sep)),
            "plan nodes must be exactly one of region node / separator node",
        )
        if self.num_shards:
            sizes = np.bincount(
                self.shard_of[self.shard_of >= 0], minlength=self.num_shards
            )
            require(bool(sizes.min() > 0), "plan contains an empty region")


def component_plan(graph: Graph) -> ShardPlan:
    """One region per connected component — the classic sharding plan."""
    labels, num_components = connected_components(graph)
    return ShardPlan(
        strategy="component",
        num_shards=num_components,
        shard_of=labels.astype(np.int64, copy=True),
        component_labels=labels,
        num_components=num_components,
        separator=np.empty(0, dtype=np.int64),
    )


def _bisection_regions(
    sub: Graph, cap: int, rng: np.random.Generator
) -> "tuple[list[np.ndarray], np.ndarray]":
    """Recursive bisection + vertex separators until regions fit ``cap``.

    Returns ``(regions, separator)`` in ``sub``-local ids.  Sides emptied
    by their separator simply vanish (the "fold an empty region away"
    edge case), and blocks that cannot be split further become regions
    as-is.
    """
    sep_flags = np.zeros(sub.num_nodes, dtype=bool)
    regions: "list[np.ndarray]" = []

    def dissect(nodes: np.ndarray) -> None:
        if nodes.size == 0:
            return
        if nodes.size <= cap:
            regions.append(nodes)
            return
        block, original = sub.subgraph(nodes)
        if block.num_edges == 0:
            regions.append(nodes)
            return
        side = multilevel_bisection(block, seed=rng)
        if not side.any() or side.all():
            regions.append(nodes)  # could not split further
            return
        sep_local = vertex_separator(block, side)
        in_sep = np.zeros(block.num_nodes, dtype=bool)
        in_sep[sep_local] = True
        sep_flags[original[sep_local]] = True
        dissect(original[np.flatnonzero(side & ~in_sep)])
        dissect(original[np.flatnonzero(~side & ~in_sep)])

    dissect(np.arange(sub.num_nodes, dtype=np.int64))
    return regions, np.flatnonzero(sep_flags)


def _kway_regions(
    sub: Graph, cap: int, rng: np.random.Generator
) -> "tuple[list[np.ndarray], np.ndarray]":
    """K-way partition + greedy vertex cover of the crossing edges.

    For every crossing edge not yet covered, the endpoint incident to
    more crossing edges joins the separator (ties break to the smaller
    id) — a deterministic matching-style cover.  Blocks fully swallowed
    by the separator contribute no region (they fold into whatever
    neighbouring regions remain).
    """
    k = max(2, -(-sub.num_nodes // cap))
    labels = partition_graph(sub, min(k, sub.num_nodes), seed=rng)
    crossing = np.flatnonzero(labels[sub.heads] != labels[sub.tails])
    sep_flags = np.zeros(sub.num_nodes, dtype=bool)
    if crossing.size:
        heads, tails = sub.heads[crossing], sub.tails[crossing]
        degree = np.bincount(
            np.concatenate([heads, tails]), minlength=sub.num_nodes
        )
        for h, t in zip(heads.tolist(), tails.tolist()):
            if sep_flags[h] or sep_flags[t]:
                continue
            if (degree[h], -h) >= (degree[t], -t):
                sep_flags[h] = True
            else:
                sep_flags[t] = True
    regions = []
    for b in range(int(labels.max()) + 1 if labels.size else 0):
        members = np.flatnonzero((labels == b) & ~sep_flags)
        if members.size:  # empty / separator-only blocks fold away
            regions.append(members)
    return regions, np.flatnonzero(sep_flags)


def separator_plan(
    graph: Graph,
    max_shard_nodes: "int | None" = None,
    method: str = "bisection",
    seed: "int | np.random.Generator | None" = 0,
) -> ShardPlan:
    """Split oversized components into separator-bounded regions.

    Parameters
    ----------
    max_shard_nodes:
        Target region size; components at or below it stay whole regions
        (and need no separator machinery at all).  ``None`` picks, per
        component, ``max(512, ceil(size / 4))`` — roughly four regions
        for anything big enough to be worth splitting.
    method:
        ``"bisection"`` (recursive bisection + vertex separators, the
        nested-dissection shape) or ``"kway"`` (k-way partition + greedy
        cover of the crossing edges).
    seed:
        Seed for the randomised coarsening inside the partitioner.
    """
    require(
        method in ("bisection", "kway"),
        f"unknown separator method {method!r} (use 'bisection' or 'kway')",
    )
    require(
        max_shard_nodes is None or max_shard_nodes >= 2,
        f"max_shard_nodes must be >= 2, got {max_shard_nodes}",
    )
    rng = ensure_rng(seed)
    labels, num_components = connected_components(graph)
    shard_of = np.full(graph.num_nodes, -1, dtype=np.int64)
    sep_flags = np.zeros(graph.num_nodes, dtype=bool)
    next_shard = 0
    for comp in range(num_components):
        members = np.flatnonzero(labels == comp)
        cap = (
            max(512, -(-members.size // 4))
            if max_shard_nodes is None
            else int(max_shard_nodes)
        )
        if members.size <= cap:
            shard_of[members] = next_shard
            next_shard += 1
            continue
        sub, original = graph.subgraph(members)
        if method == "bisection":
            regions, sep_local = _bisection_regions(sub, cap, rng)
        else:
            regions, sep_local = _kway_regions(sub, cap, rng)
        if len(regions) <= 1:
            # nothing was gained: fold the separator back and keep the
            # component as one ordinary region
            shard_of[members] = next_shard
            next_shard += 1
            continue
        sep_flags[original[sep_local]] = True
        for region in regions:
            shard_of[original[region]] = next_shard
            next_shard += 1
    plan = ShardPlan(
        strategy="separator",
        num_shards=next_shard,
        shard_of=shard_of,
        component_labels=labels,
        num_components=num_components,
        separator=np.flatnonzero(sep_flags),
    )
    plan.validate(graph)
    return plan


def make_plan(graph: Graph, config: EngineConfig) -> ShardPlan:
    """Dispatch on ``config.shard_strategy``."""
    if config.shard_strategy == "separator":
        return separator_plan(
            graph,
            max_shard_nodes=config.max_shard_nodes,
            method=config.separator,
            seed=0 if config.seed is None else config.seed,
        )
    return component_plan(graph)


# ----------------------------------------------------------------------
# the separator (Schur) system of one split component
# ----------------------------------------------------------------------
@dataclass(eq=False)
class SeparatorSystem:
    """Dense Schur complement on one split component's separator.

    ``schur`` is ``S_c = A_SS − Σ_i B_iᵀ A_ii⁻¹ B_i`` over the
    component's separator nodes (sorted global ids in ``sep_nodes``),
    SPD because it is the Schur complement of the grounded component
    Laplacian; ``cho`` is its Cholesky factorisation ready for
    :func:`scipy.linalg.cho_solve`.
    """

    component: int
    sep_nodes: np.ndarray
    schur: np.ndarray
    cho: "tuple[np.ndarray, bool]" = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.cho is None:
            self.cho = scipy.linalg.cho_factor(self.schur)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class PartitionedEngine(ResistanceEngine):
    """Composite engine serving a :class:`ShardPlan` behind the protocol.

    Parameters
    ----------
    graph:
        Weighted undirected graph (any number of components).
    config:
        Config of the *base* engine each region builds (``method`` plus
        its tunables) and of the plan (``shard_strategy`` /
        ``max_shard_nodes`` / ``separator``).  ``config.lazy_shards``
        defers region builds to first use.
    lazy:
        Overrides ``config.lazy_shards`` when given.
    plan:
        Pre-computed plan (persistence restore path); by default the plan
        comes from :func:`make_plan`.

    Notes
    -----
    Queries are grouped by region and translated through global↔local id
    maps; pairs crossing regions (or touching the separator) of a split
    component are answered through that component's
    :class:`SeparatorSystem` — exactly, per the module docstring.  Pairs
    crossing *components* remain ``inf`` without touching any factor,
    and singleton regions without coupling never build an engine.
    """

    def __init__(
        self,
        graph: Graph,
        config: "EngineConfig | str | None" = None,
        lazy: "bool | None" = None,
        plan: "ShardPlan | None" = None,
    ):
        if config is None:
            config = EngineConfig()
        elif isinstance(config, str):
            config = EngineConfig(method=config)
        self.graph = graph
        self.n = graph.num_nodes
        self.timer = Timer()
        self.config = config if config.sharded else config.replace(sharded=True)
        self._shard_config = config.replace(
            sharded=False, lazy_shards=False, shard_strategy="component"
        )
        self.lazy = bool(config.lazy_shards if lazy is None else lazy)

        with self.timer.section("plan"):
            if plan is None:
                plan = make_plan(graph, self.config)
            self.plan = plan
            self.component_labels = plan.component_labels
            self.num_shards = plan.num_shards
            self._index_plan()
        self._engines: "list[ResistanceEngine | None]" = [None] * self.num_shards
        self._systems: "dict[int, SeparatorSystem]" = {}
        self._rim_cache: "dict[int, np.ndarray]" = {}
        # lazy builds under concurrency: one lock per in-flight shard build
        # (created on demand), so distinct shards build in parallel while a
        # given shard is never built twice
        self._build_locks: "dict[int, threading.Lock]" = {}
        self._system_locks: "dict[int, threading.Lock]" = {}
        self._locks_guard = threading.Lock()
        self._systems_lock = threading.Lock()
        self._rim_lock = threading.Lock()
        if not self.lazy:
            for comp in self._split_components.tolist():
                self._system(int(comp))
            eager = [
                s for s in range(self.num_shards) if self._shard_graph_size(s) > 1
            ]
            self._build_shards(eager, self.config.build_workers)

    # ------------------------------------------------------------------
    # plan indexing (pure derivation from the plan — no factorisation)
    # ------------------------------------------------------------------
    def _index_plan(self) -> None:
        plan = self.plan
        shard_of = plan.shard_of
        # members of each region, in ascending global id order; _local maps
        # a global id to its rank inside its region (or inside its
        # component's separator list, for separator nodes)
        order = np.argsort(shard_of, kind="stable")
        order = order[shard_of[order] >= 0]
        counts = np.bincount(shard_of[shard_of >= 0], minlength=self.num_shards)
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        self._local = np.empty(self.n, dtype=np.int64)
        self._local[order] = np.arange(order.size) - np.repeat(starts, counts)
        self._members = np.split(order, np.cumsum(counts)[:-1])
        # separator nodes rank within their component's sorted separator
        self._split_components = plan.split_components
        self._cross_of_component = {
            int(c): self.num_shards + j
            for j, c in enumerate(self._split_components.tolist())
        }
        self._sep_nodes_of = {}
        for comp in self._split_components.tolist():
            sep = plan.separator[
                self.component_labels[plan.separator] == comp
            ]
            self._sep_nodes_of[int(comp)] = sep
            self._local[sep] = np.arange(sep.size)
        # per-region coupling to the separator: W[v_local, t_local] is the
        # total conductance between region node v and separator node t
        self._coupling: "dict[int, sp.csr_matrix]" = {}
        self._boundary: "dict[int, np.ndarray]" = {}
        heads, tails = self.graph.heads, self.graph.tails
        sep_side = shard_of[heads] < 0
        one_sep = sep_side != (shard_of[tails] < 0)
        if one_sep.any():
            region_end = np.where(sep_side, tails, heads)[one_sep]
            sep_end = np.where(sep_side, heads, tails)[one_sep]
            weights = self.graph.weights[one_sep]
            shards = shard_of[region_end]
            for s in np.unique(shards).tolist():
                rows = np.flatnonzero(shards == s)
                comp = int(self.component_labels[region_end[rows[0]]])
                width = self._sep_nodes_of[comp].size
                coupling = sp.coo_matrix(
                    (
                        weights[rows],
                        (
                            self._local[region_end[rows]],
                            self._local[sep_end[rows]],
                        ),
                    ),
                    shape=(self._members[s].size, width),
                ).tocsr()
                coupling.sum_duplicates()
                self._coupling[int(s)] = coupling
                self._boundary[int(s)] = np.flatnonzero(
                    np.diff(coupling.indptr) > 0
                )

    def _shard_graph_size(self, shard: int) -> int:
        return self._members[shard].size + (1 if shard in self._coupling else 0)

    def _shard_graph(self, shard: int) -> Graph:
        """The graph region ``shard``'s engine serves.

        Plain induced subgraph for component shards and unsplit-component
        regions; for a region of a split component, the *halo graph*: the
        subgraph plus one rim node (id ``len(members)``) tied to every
        boundary node with its total separator coupling (the module
        docstring's gadget).
        """
        members = self._members[shard]
        sub, _ = self.graph.subgraph(members)
        coupling = self._coupling.get(shard)
        if coupling is None:
            return sub
        strengths = np.asarray(coupling.sum(axis=1)).ravel()
        boundary = self._boundary[shard]
        rim = members.size
        return Graph(
            rim + 1,
            np.concatenate([sub.heads, boundary]),
            np.concatenate([sub.tails, np.full(boundary.size, rim)]),
            np.concatenate([sub.weights, strengths[boundary]]),
        )

    # ------------------------------------------------------------------
    # region engine builds (lazy / eager / parallel — as component shards)
    # ------------------------------------------------------------------
    @property
    def shards_built(self) -> int:
        """How many region engines exist right now (grows lazily)."""
        return sum(engine is not None for engine in self._engines)  # repro: ignore[atomicity] — monitoring snapshot; list cells flip None→engine monotonically

    def shard_sizes(self) -> np.ndarray:
        """Node count of every region (rim nodes not counted)."""
        return np.array([m.size for m in self._members], dtype=np.int64)

    def _shard(
        self, shard: int, config: "EngineConfig | None" = None
    ) -> ResistanceEngine:
        engine = self._engines[shard]  # repro: ignore[atomicity] — double-checked fast path; cells flip None→engine exactly once, under the shard's build lock
        if engine is not None:
            return engine
        with self._locks_guard:
            lock = self._build_locks.setdefault(shard, threading.Lock())
        with lock:
            engine = self._engines[shard]
            if engine is None:
                with self.timer.section("shard_build"):
                    sub = self._shard_graph(shard)
                    engine = build_engine(  # repro: ignore[blocking-under-lock] — the per-shard build lock exists to serialise exactly this build; queries on built shards never take it
                        sub, self._shard_config if config is None else config
                    )
                self._engines[shard] = engine
        return engine

    def _build_shards(self, shards: "list[int]", workers: int) -> None:
        """Build the given shards, fanning out over ``workers`` threads.

        The shards are the primary parallel unit; any whole-number worker
        surplus beyond the shard count is divided among the sub-builds as
        Alg. 2 level parallelism (``workers // len(shards)`` each), so
        the pool is never oversubscribed.  Either way the resulting
        engines are bit-identical — worker counts never change engine
        math.
        """
        if workers > 1 and len(shards) > 1:
            per_shard = self._shard_config.replace(
                build_workers=max(1, workers // len(shards))
            )
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(workers, len(shards)),
                thread_name_prefix="shard-build",
            ) as pool:
                # list() drains the iterator so worker exceptions propagate
                list(pool.map(lambda c: self._shard(c, per_shard), shards))
        elif workers > 1:
            # a single pending shard gets the whole budget as Alg. 2
            # level parallelism
            per_shard = self._shard_config.replace(build_workers=workers)
            for c in shards:
                self._shard(c, per_shard)
        else:
            for c in shards:
                self._shard(c)

    def warm_up(self, workers: "int | None" = None) -> int:
        """Build every not-yet-built region engine (and separator system).

        Gives a lazy engine the cold-start profile of an eager one without
        giving up lazy construction.  Safe to call from several threads
        and concurrently with queries — every build goes through the same
        per-shard locks as lazy first-touch builds, so no shard is ever
        built twice.

        Returns the number of shards that were cold when this call
        started (0 means the engine was already fully warm).
        """
        effective = self.config.build_workers if workers is None else int(workers)
        require(effective >= 1, f"workers must be >= 1, got {workers}")
        for comp in self._split_components.tolist():
            self._system(int(comp))
        pending = [
            s
            for s in range(self.num_shards)
            if self._shard_graph_size(s) > 1 and self._engines[s] is None  # repro: ignore[atomicity] — racy pending snapshot; per-shard build locks make double-builds impossible anyway
        ]
        if pending:
            self._build_shards(pending, effective)
        return len(pending)

    # ------------------------------------------------------------------
    # the separator system
    # ------------------------------------------------------------------
    def _system(self, component: int) -> SeparatorSystem:
        system = self._systems.get(component)  # repro: ignore[atomicity] — double-checked fast path; entries appear exactly once, under the component's build lock
        if system is not None:
            return system
        with self._locks_guard:
            lock = self._system_locks.setdefault(component, threading.Lock())
        with lock:  # per-component: one slow assembly never blocks others
            system = self._systems.get(component)
            if system is None:
                with self.timer.section("separator_system"):
                    system = self._build_system(component)  # repro: ignore[blocking-under-lock] — the per-component build lock exists to serialise exactly this Schur assembly
                with self._systems_lock:
                    self._systems[component] = system
        return system

    def _build_system(self, component: int) -> SeparatorSystem:
        """Assemble ``S_c`` for one split component via per-region Schur.

        Per-region reductions run on ``config.build_workers`` threads;
        the accumulation into ``S_c`` is serialised in shard order, so
        the assembled matrix is bit-identical at every worker count.
        """
        sep_nodes = self._sep_nodes_of[component]
        comp_members = np.flatnonzero(self.component_labels == component)
        comp_sub, comp_nodes = self.graph.subgraph(comp_members)
        sep_local = np.searchsorted(comp_nodes, sep_nodes)
        ground = self.config.ground_value
        if ground is None:
            ground = float(comp_sub.weights.mean())
        matrix, _ = grounded_laplacian(
            comp_sub, ground, ground_nodes=sep_local[:1]
        )
        matrix = sp.csc_matrix(matrix)
        schur = matrix[sep_local, :][:, sep_local].toarray()
        shards = np.unique(self.plan.shard_of[comp_members])
        shards = shards[shards >= 0].tolist()

        def reduce_region(shard: int) -> "tuple[np.ndarray, np.ndarray]":
            region_local = np.searchsorted(comp_nodes, self._members[shard])
            a_ii = matrix[region_local, :][:, region_local]
            b_full = sp.csc_matrix(matrix[region_local, :][:, sep_local])
            cols = np.flatnonzero(np.diff(b_full.indptr) > 0)
            b_narrow = b_full[:, cols]
            block = sp.bmat(
                [[a_ii, b_narrow], [b_narrow.T, None]], format="csc"
            )
            keep = np.arange(region_local.size, region_local.size + cols.size)
            reduction = schur_reduce(block, keep)
            require(
                reduction.dropped.size == 0,
                f"region {shard} has interior nodes with no path to the "
                f"separator — invalid plan",
            )
            return cols, reduction.reduced  # −B_iᵀ A_ii⁻¹ B_i

        workers = self.config.build_workers
        if workers > 1 and len(shards) > 1:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(workers, len(shards)),
                thread_name_prefix="schur-build",
            ) as pool:
                reduced = list(pool.map(reduce_region, shards))
        else:
            reduced = [reduce_region(s) for s in shards]
        for cols, contribution in reduced:  # fixed order: bit-stable sum
            schur[np.ix_(cols, cols)] += contribution
        return SeparatorSystem(
            component=int(component), sep_nodes=sep_nodes, schur=schur
        )

    # ------------------------------------------------------------------
    # u-vectors and rim resistances (the correction machinery)
    # ------------------------------------------------------------------
    def _rim_base(self, shard: int) -> np.ndarray:
        """Cached ``R_H(v, rim)`` for every boundary node ``v`` of a region."""
        cached = self._rim_cache.get(shard)
        if cached is not None:
            return cached
        engine = self._shard(shard)
        boundary = self._boundary[shard]
        rim = self._members[shard].size
        values = engine.query_pairs(
            np.column_stack([boundary, np.full(boundary.size, rim)])
        )
        with self._rim_lock:
            # concurrent first computations are identical; keep the first
            self._rim_cache.setdefault(shard, values)
        return self._rim_cache[shard]

    def _u_block(
        self, shard: int, endpoints: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(U, m_diag)`` for region-local ``endpoints`` of one region.

        ``U[:, j] = u_{p_j}`` (length = the component's separator size)
        and ``m_diag[j] = m_{p_j p_j} = R_H(p_j, rim)``, both via plain
        engine queries per the rim-node identity.
        """
        engine = self._shard(shard)
        boundary = self._boundary[shard]
        rim = self._members[shard].size
        rim_p = engine.query_pairs(
            np.column_stack([endpoints, np.full(endpoints.size, rim)])
        )
        rim_b = self._rim_base(shard)
        grid = engine.query_pairs(
            np.column_stack(
                [
                    np.repeat(boundary, endpoints.size),
                    np.tile(endpoints, boundary.size),
                ]
            )
        ).reshape(boundary.size, endpoints.size)
        m = 0.5 * (rim_b[:, None] + rim_p[None, :] - grid)
        coupling_b = self._coupling[shard][boundary]
        u = -(coupling_b.T @ m)
        return u, rim_p

    def _endpoint_vectors(
        self, component: int, endpoints: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(U, m_diag)`` for *global* endpoints of one split component.

        Separator endpoints contribute ``u_s = −e_s`` and ``m_ss = 0``;
        region endpoints are grouped per region and answered by
        :meth:`_u_block`.
        """
        width = self._sep_nodes_of[component].size
        u = np.zeros((width, endpoints.size))
        m_diag = np.zeros(endpoints.size)
        shard_of = self.plan.shard_of[endpoints]
        sep_sel = np.flatnonzero(shard_of < 0)
        u[self._local[endpoints[sep_sel]], sep_sel] = -1.0
        for s in np.unique(shard_of[shard_of >= 0]).tolist():
            sel = np.flatnonzero(shard_of == s)
            u[:, sel], m_diag[sel] = self._u_block(
                int(s), self._local[endpoints[sel]]
            )
        return u, m_diag

    @staticmethod
    def _correction(
        system: SeparatorSystem, u: np.ndarray, pair_index: np.ndarray
    ) -> np.ndarray:
        """``(u_p − u_q)ᵀ S_c⁻¹ (u_p − u_q)`` per pair, batched."""
        w = u[:, pair_index[:, 0]] - u[:, pair_index[:, 1]]
        solved = scipy.linalg.cho_solve(system.cho, w)
        return np.einsum("ij,ij->j", w, solved)

    # ------------------------------------------------------------------
    # sub-batch interface (what the serving layer's planner fans out)
    # ------------------------------------------------------------------
    def shard_subbatches(
        self, ps, qs
    ) -> "list[tuple[int, np.ndarray, np.ndarray]]":
        """Group within-component pairs into executable sub-batches.

        Returns ``(shard_id, positions, pairs)`` triples: region groups
        carry shard ids ``< num_shards`` with *shard-local* pairs (the
        classic component-shard contract), and each split component's
        cross-region / separator-touching pairs form one group under the
        pseudo shard id ``num_shards + j`` carrying *global* pairs.
        :meth:`query_shard` dispatches on the id, so planner/executor
        code treats both kinds uniformly.  Self pairs and cross-component
        pairs are excluded — they never need an engine.
        """
        ps = np.asarray(ps, dtype=np.int64)
        qs = np.asarray(qs, dtype=np.int64)
        labels = self.component_labels
        active = np.flatnonzero((labels[ps] == labels[qs]) & (ps != qs))
        if active.size == 0:
            return []
        shard_p = self.plan.shard_of[ps[active]]
        shard_q = self.plan.shard_of[qs[active]]
        intra_mask = (shard_p == shard_q) & (shard_p >= 0)
        subbatches = []
        intra = active[intra_mask]
        if intra.size:
            shards = self.plan.shard_of[ps[intra]]
            order = np.argsort(shards, kind="stable")
            grouped = intra[order]
            boundaries = np.flatnonzero(np.diff(shards[order])) + 1
            for group in np.split(grouped, boundaries):
                local = np.column_stack(
                    [self._local[ps[group]], self._local[qs[group]]]
                )
                shard = int(self.plan.shard_of[ps[group[0]]])
                subbatches.append((shard, group, local))
        cross = active[~intra_mask]
        if cross.size:
            components = labels[ps[cross]]
            order = np.argsort(components, kind="stable")
            grouped = cross[order]
            boundaries = np.flatnonzero(np.diff(components[order])) + 1
            for group in np.split(grouped, boundaries):
                comp = int(labels[ps[group[0]]])
                pairs = np.column_stack([ps[group], qs[group]])
                subbatches.append((self._cross_of_component[comp], group, pairs))
        return subbatches

    def query_shard(self, shard_id: int, pairs) -> np.ndarray:
        """Answer one sub-batch from :meth:`shard_subbatches`.

        Region ids (``< num_shards``) take shard-local pairs; pseudo ids
        (``>= num_shards``) take global pairs and run the Schur path.
        Builds whatever the group needs first if the engine is lazy and
        cold; safe to call from several threads at once.
        """
        total = self.num_shards + self._split_components.size
        require(
            0 <= shard_id < total,
            f"shard id {shard_id} out of range for {total} shard groups",
        )
        pairs = as_pair_array(pairs)
        if shard_id >= self.num_shards:
            component = int(self._split_components[shard_id - self.num_shards])
            return self._query_cross(component, pairs)
        base = self._shard(shard_id).query_pairs(pairs)
        if shard_id not in self._coupling:
            return base
        # same-region pair in a split component: exact Schur correction
        component = int(self.component_labels[self._members[shard_id][0]])
        system = self._system(component)
        endpoints, inverse = np.unique(pairs.ravel(), return_inverse=True)
        u, _ = self._u_block(shard_id, endpoints)
        return base + self._correction(system, u, inverse.reshape(-1, 2))

    def _query_cross(self, component: int, pairs: np.ndarray) -> np.ndarray:
        """Cross-region / separator pairs of one split component (global ids)."""
        system = self._system(component)
        endpoints, inverse = np.unique(pairs.ravel(), return_inverse=True)
        u, m_diag = self._endpoint_vectors(component, endpoints)
        pair_index = inverse.reshape(-1, 2)
        base = m_diag[pair_index[:, 0]] + m_diag[pair_index[:, 1]]
        return base + self._correction(system, u, pair_index)

    # ------------------------------------------------------------------
    def query_pairs(self, pairs) -> np.ndarray:
        """Batch queries routed group-by-group; cross-component → ``inf``."""
        ps, qs = as_pair_columns(pairs)
        out = np.full(ps.shape[0], np.inf)
        with self.timer.section("queries"):
            for shard_id, group, grouped_pairs in self.shard_subbatches(ps, qs):
                out[group] = self.query_shard(shard_id, grouped_pairs)
        out[ps == qs] = 0.0
        return out

    # ------------------------------------------------------------------
    # introspection / persistence
    # ------------------------------------------------------------------
    def partition_report(self) -> "dict[str, object]":
        """Plan diagnostics: balance, cut and separator quality.

        Returns a dict with the plan's ``strategy`` / shard counts, the
        :class:`~repro.partition.interface.PartitionQuality` of the region
        labelling and one
        :class:`~repro.partition.interface.SeparatorQuality` per split
        component — the "why was this partition accepted" report the CLI
        prints under ``--partition-report``.
        """
        from repro.partition.interface import (
            partition_quality,
            separator_quality,
        )

        return {
            "strategy": self.plan.strategy,
            "num_shards": int(self.num_shards),
            "num_components": int(self.plan.num_components),
            "split_components": [int(c) for c in self._split_components],
            "separator_size": int(self.plan.separator.size),
            "shard_sizes": self.shard_sizes(),
            "partition": partition_quality(self.graph, self.plan.shard_of),
            "separators": separator_quality(
                self.graph, self.plan.shard_of, self.component_labels
            ),
        }

    def save(self, path):
        """Serialise the plan, separator systems and built region factors."""
        from repro.core.persistence import save_engine

        return save_engine(self, path)

    @classmethod
    def _restore(
        cls, graph: Graph, config: EngineConfig, plan: ShardPlan
    ) -> "PartitionedEngine":
        """Cold shell for the persistence layer: plan applied, nothing built.

        :mod:`repro.core.persistence` follows up with
        :meth:`_install_system` / :meth:`_install_shard` for every piece
        that was built (and therefore saved); everything else rebuilds
        lazily exactly like a cold lazy engine.
        """
        engine = cls(graph, config, lazy=True, plan=plan)
        return engine

    def _install_system(self, component: int, schur: np.ndarray) -> None:
        """Adopt a persisted Schur matrix (refactored with ``cho_factor``)."""
        component = int(component)
        require(
            component in self._sep_nodes_of,
            f"component {component} has no separator in the plan",
        )
        sep_nodes = self._sep_nodes_of[component]
        require(
            schur.shape == (sep_nodes.size, sep_nodes.size),
            "separator system shape does not match the plan",
        )
        with self._systems_lock:
            self._systems[component] = SeparatorSystem(
                component=component,
                sep_nodes=sep_nodes,
                schur=np.ascontiguousarray(schur),
            )

    def _install_shard(self, shard: int, engine: ResistanceEngine) -> None:
        """Adopt a persisted region engine (must match the halo graph size)."""
        require(
            engine.n == self._shard_graph_size(shard),
            f"restored engine for shard {shard} has {engine.n} nodes, "
            f"expected {self._shard_graph_size(shard)}",
        )
        with self._locks_guard:
            self._engines[shard] = engine
