"""Engine persistence — save a built Alg. 3 engine, warm-start from disk.

Building a ``cholinv`` engine is the expensive part of serving effective
resistances (incomplete Cholesky + Alg. 2); the queries themselves only
need the approximate inverse ``Z̃`` and a few index arrays.  This module
serialises exactly that state to a single ``.npz`` so service workers can
warm-start without refactoring (ROADMAP: "persist/serialize built
engines"):

* ``Z̃`` in CSC form (``data`` / ``indices`` / ``indptr`` / shape);
* the fill-reducing permutation and the cached column square norms
  (restoring both makes :meth:`query_pairs` *bit-identical* to the saved
  engine — nothing is recomputed);
* the connected-component labels (cross-component queries answer ``inf``
  without any factor);
* the served graph's edge arrays (so ``all_edge_resistances`` and service
  refreshes work on the restored engine);
* the :class:`~repro.core.engine.EngineConfig` as JSON (so a refresh after
  a graph edit rebuilds with the saved settings).

Partitioned engines (:class:`~repro.core.partitioned.PartitionedEngine`,
i.e. ``config.sharded`` / ``shard_strategy="separator"``) persist too
(format v2): the file carries the :class:`~repro.core.partitioned.ShardPlan`
arrays, every *built* separator Schur system and every *built* region
factor under per-shard key prefixes — unbuilt pieces are simply absent and
rebuild lazily after load, exactly like a cold lazy engine.  Region halo
graphs are not stored: they are a deterministic function of the graph and
the plan, so the loader reconstructs them.  Reload is bit-identical for
everything that was built.

Entry points: :func:`save_engine` / :func:`load_engine`, surfaced as
``engine.save(path)``, ``ResistanceService.from_saved(path)`` and the CLI's
``--save-engine`` / ``--load-engine`` options.  ``load_engine(path,
mmap=True)`` memory-maps the large arrays instead of reading them: many
service workers on one host then share the physical pages of one saved
factor (the ``.npz`` is an uncompressed zip, so each member's array data
sits at a fixed file offset that ``np.memmap`` can map read-only).
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.core.approx_inverse import ApproxInverseStats
from repro.core.engine import EngineConfig
from repro.graphs.graph import Graph
from repro.utils.validation import require

# v1: monolithic cholinv only; v2 adds kind="partitioned" (plan + separator
# systems + per-shard region factors); v3 adds kind="landmark" (projection
# tables of the tiered landmark estimator).  v1 files have no "kind" member
# and load as cholinv.
FORMAT_VERSION = 3


def _npz_path(path: "str | Path") -> Path:
    """``np.savez`` appends ``.npz`` silently; make that explicit."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_engine(engine, path: "str | Path") -> Path:
    """Serialise a built engine to ``path`` (returns the path).

    :class:`~repro.core.effective_resistance.CholInvEffectiveResistance`
    persists directly (its post-build state is plain arrays),
    :class:`~repro.core.partitioned.PartitionedEngine` persists whenever
    its region engines are ``cholinv`` (plan + separator systems + built
    region factors), and
    :class:`~repro.estimators.landmark.LandmarkEffectiveResistance`
    persists its projection tables (``kind="landmark"`` — the internal
    cholinv base engine is not stored, the tables answer every query).
    The ``exact`` and ``random_projection`` engines hold live
    factorisation objects (SuperLU) that cannot be serialised portably —
    rebuild those instead.
    """
    from repro.core.effective_resistance import CholInvEffectiveResistance
    from repro.core.partitioned import PartitionedEngine
    from repro.estimators.landmark import LandmarkEffectiveResistance

    if isinstance(engine, PartitionedEngine):
        return _save_partitioned(engine, path)
    if isinstance(engine, LandmarkEffectiveResistance):
        base = engine.base_config
        landmark_config = EngineConfig(
            method="landmark",
            num_landmarks=int(engine.num_landmarks),
            landmark_strategy=engine.landmark_strategy,
            seed=None if engine.seed is None else int(engine.seed),
            epsilon=base.epsilon,
            drop_tol=base.drop_tol,
            ordering=base.ordering,
            mode=base.mode,
            small_column_threshold=base.small_column_threshold,
            ground_value=base.ground_value,
            build_workers=base.build_workers,
        )
        return _save_landmark(engine, landmark_config, path)
    if not isinstance(engine, CholInvEffectiveResistance):
        raise NotImplementedError(
            f"{type(engine).__name__} does not support persistence; only the "
            f'"cholinv" (Alg. 3) engine serialises its factor to disk'
        )
    # the config carries the *requested* ground value (None = recompute
    # from the graph) so a refresh after warm-start regrounds exactly like
    # a cold service would; the resolved value is stored separately below
    requested = engine.requested_ground_value
    config = EngineConfig(
        method="cholinv",
        epsilon=engine.epsilon,
        drop_tol=engine.drop_tol,
        ordering=engine.ordering,
        mode=engine.mode,
        small_column_threshold=engine.small_column_threshold,
        ground_value=None if requested is None else float(requested),
        build_workers=int(engine.build_workers),
    )
    z = engine.z_tilde.tocsc()
    path = _npz_path(path)
    np.savez(
        path,
        format_version=np.int64(FORMAT_VERSION),
        kind=np.asarray("cholinv"),
        config_json=np.asarray(json.dumps(config.to_dict())),
        num_nodes=np.int64(engine.graph.num_nodes),
        graph_heads=engine.graph.heads,
        graph_tails=engine.graph.tails,
        graph_weights=engine.graph.weights,
        z_data=z.data,
        z_indices=z.indices,
        z_indptr=z.indptr,
        z_shape=np.asarray(z.shape, dtype=np.int64),
        ground_value=np.float64(engine.ground_value),
        perm=engine.perm,
        column_sq_norms=engine._column_sq_norms,
        component_labels=engine.component_labels,
        stats_nnz=np.int64(engine.stats.nnz),
        stats_n=np.int64(engine.stats.n),
        stats_columns_truncated=np.int64(engine.stats.columns_truncated),
        stats_columns_kept_whole=np.int64(engine.stats.columns_kept_whole),
    )
    return path


def _save_landmark(engine, config: EngineConfig, path: "str | Path") -> Path:
    """Serialise a landmark estimator: projection tables + graph + config.

    The tables (``u`` / ``resid_sq`` / ``dist_sq`` / ``landmarks``) are the
    whole query surface — ``O(n·k)`` floats — so a warm-started worker
    answers bounded queries without ever refactoring; a service that needs
    the exact tier too rebuilds it from the saved base-engine settings in
    the config.
    """
    path = _npz_path(path)
    np.savez(
        path,
        format_version=np.int64(FORMAT_VERSION),
        kind=np.asarray("landmark"),
        config_json=np.asarray(json.dumps(config.to_dict())),
        num_nodes=np.int64(engine.graph.num_nodes),
        graph_heads=engine.graph.heads,
        graph_tails=engine.graph.tails,
        graph_weights=engine.graph.weights,
        component_labels=engine.component_labels,
        ground_value=np.float64(engine.ground_value),
        u=engine._u,
        resid_sq=engine._resid_sq,
        dist_sq=engine._dist_sq,
        landmarks=engine.landmarks,
    )
    return path


def _save_partitioned(engine, path: "str | Path") -> Path:
    """Serialise a partitioned engine: plan + built systems + built shards.

    Only what exists is written — a half-warm lazy engine saves exactly
    its built pieces, and the loader leaves the rest cold.  Region
    engines must be ``cholinv`` (the only sub-engine with array state).
    """
    from repro.core.effective_resistance import CholInvEffectiveResistance

    if engine.config.method != "cholinv":
        raise NotImplementedError(
            f'sharded "{engine.config.method}" engines do not support '
            f'persistence; only "cholinv" (Alg. 3) region factors '
            f"serialise to disk"
        )
    plan = engine.plan
    arrays: "dict[str, np.ndarray]" = {
        "format_version": np.int64(FORMAT_VERSION),
        "kind": np.asarray("partitioned"),
        "config_json": np.asarray(json.dumps(engine.config.to_dict())),
        "shard_config_json": np.asarray(
            json.dumps(engine._shard_config.to_dict())
        ),
        "num_nodes": np.int64(engine.graph.num_nodes),
        "graph_heads": engine.graph.heads,
        "graph_tails": engine.graph.tails,
        "graph_weights": engine.graph.weights,
        "component_labels": engine.component_labels,
        "plan_strategy": np.asarray(plan.strategy),
        "plan_num_shards": np.int64(plan.num_shards),
        "plan_num_components": np.int64(plan.num_components),
        "plan_shard_of": plan.shard_of,
        "plan_separator": plan.separator,
    }
    built = [s for s, sub in enumerate(engine._engines) if sub is not None]
    arrays["built_shards"] = np.asarray(built, dtype=np.int64)
    for shard in built:
        sub = engine._engines[shard]
        if not isinstance(sub, CholInvEffectiveResistance):
            raise NotImplementedError(
                f"shard {shard} is a {type(sub).__name__}, which does not "
                f'support persistence; only "cholinv" region factors '
                f"serialise to disk"
            )
        z = sub.z_tilde.tocsc()
        prefix = f"shard{shard}_"
        arrays[prefix + "z_data"] = z.data
        arrays[prefix + "z_indices"] = z.indices
        arrays[prefix + "z_indptr"] = z.indptr
        arrays[prefix + "z_shape"] = np.asarray(z.shape, dtype=np.int64)
        arrays[prefix + "ground_value"] = np.float64(sub.ground_value)
        arrays[prefix + "perm"] = sub.perm
        arrays[prefix + "column_sq_norms"] = sub._column_sq_norms
        arrays[prefix + "stats_nnz"] = np.int64(sub.stats.nnz)
        arrays[prefix + "stats_n"] = np.int64(sub.stats.n)
        arrays[prefix + "stats_columns_truncated"] = np.int64(
            sub.stats.columns_truncated
        )
        arrays[prefix + "stats_columns_kept_whole"] = np.int64(
            sub.stats.columns_kept_whole
        )
    systems = sorted(engine._systems)
    arrays["system_components"] = np.asarray(systems, dtype=np.int64)
    for component in systems:
        arrays[f"sys{component}_schur"] = engine._systems[component].schur
    path = _npz_path(path)
    np.savez(path, **arrays)
    return path


def _mmap_npz_arrays(path: Path) -> "dict[str, np.ndarray]":
    """Read an uncompressed ``.npz``, memory-mapping every 1-D+ member.

    ``np.savez`` stores members without compression, so each embedded
    ``.npy`` payload lives at ``local header + npy header`` bytes into the
    archive — a fixed offset ``np.memmap`` can map read-only.  Scalars
    (0-d arrays like the format version or the config JSON) are read
    normally; a compressed member (not produced by :func:`save_engine`,
    but legal zip) falls back to an in-memory read.
    """
    arrays: "dict[str, np.ndarray]" = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            if info.compress_type != zipfile.ZIP_STORED:
                with archive.open(info) as member:
                    arrays[name] = np.lib.format.read_array(
                        member, allow_pickle=False
                    )
                continue
            # data offset = local file header (30 bytes) + name + extra
            raw.seek(info.header_offset)
            local_header = raw.read(30)
            require(
                local_header[:4] == b"PK\x03\x04",
                f"corrupt zip member {info.filename!r} in {path}",
            )
            name_len = int.from_bytes(local_header[26:28], "little")
            extra_len = int.from_bytes(local_header[28:30], "little")
            raw.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(raw)
            read_header = {
                (1, 0): np.lib.format.read_array_header_1_0,
                (2, 0): np.lib.format.read_array_header_2_0,
            }.get(version)
            require(
                read_header is not None,
                f"unsupported .npy header version {version} in {path}",
            )
            shape, fortran_order, dtype = read_header(raw)
            if len(shape) == 0 or dtype.hasobject:
                raw.seek(info.header_offset + 30 + name_len + extra_len)
                arrays[name] = np.lib.format.read_array(raw, allow_pickle=False)
                continue
            arrays[name] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=raw.tell(),
                shape=shape,
                order="F" if fortran_order else "C",
            )
    return arrays


def load_engine(path: "str | Path", mmap: bool = False):
    """Rehydrate an engine saved by :func:`save_engine`.

    The returned engine is a real
    :class:`~repro.core.effective_resistance.CholInvEffectiveResistance`
    (or, for a saved partitioned engine, a
    :class:`~repro.core.sharded.ShardedEngine` with every persisted piece
    installed) whose ``query_pairs`` output is bit-identical to the saved
    one; its ``config`` attribute carries the settings it was built with
    so :class:`~repro.service.ResistanceService` can refresh it after
    graph edits.  With ``mmap=True`` the large arrays (``Z̃``
    data/indices, norms, permutation, graph edges) stay on disk as
    read-only memory maps, so many workers on one host share one copy of
    the pages.
    """
    path = _npz_path(path)
    require(path.exists(), f"no saved engine at {path}")
    if mmap:
        return _engine_from_any(_mmap_npz_arrays(path))
    with np.load(path, allow_pickle=False) as data:
        return _engine_from_any(data)


def _engine_from_any(data):
    from repro.core.effective_resistance import CholInvEffectiveResistance

    version = int(data["format_version"])
    require(
        version <= FORMAT_VERSION,
        f"saved engine format v{version} is newer than supported "
        f"v{FORMAT_VERSION}",
    )
    kind = str(data["kind"]) if "kind" in data else "cholinv"  # v1: no kind
    if kind == "partitioned":
        return _partitioned_from_arrays(data)
    if kind == "landmark":
        return _landmark_from_arrays(data)
    require(kind == "cholinv", f"unknown saved engine kind {kind!r}")
    return _engine_from_arrays(data, CholInvEffectiveResistance)


def _landmark_from_arrays(data):
    from repro.estimators.landmark import LandmarkEffectiveResistance

    config = EngineConfig.from_dict(json.loads(str(data["config_json"])))
    graph = Graph(
        int(data["num_nodes"]),
        data["graph_heads"],
        data["graph_tails"],
        data["graph_weights"],
    )
    return LandmarkEffectiveResistance.from_state(
        graph=graph,
        config=config,
        u=data["u"],
        resid_sq=data["resid_sq"],
        dist_sq=data["dist_sq"],
        landmarks=data["landmarks"],
        component_labels=data["component_labels"],
        ground_value=float(data["ground_value"]),
    )


def _engine_from_arrays(data, engine_cls):
    config = EngineConfig.from_dict(json.loads(str(data["config_json"])))
    graph = Graph(
        int(data["num_nodes"]),
        data["graph_heads"],
        data["graph_tails"],
        data["graph_weights"],
    )
    z_tilde = sp.csc_matrix(
        (data["z_data"], data["z_indices"], data["z_indptr"]),
        shape=tuple(int(s) for s in data["z_shape"]),
    )
    stats = ApproxInverseStats(
        nnz=int(data["stats_nnz"]),
        n=int(data["stats_n"]),
        columns_truncated=int(data["stats_columns_truncated"]),
        columns_kept_whole=int(data["stats_columns_kept_whole"]),
    )
    return engine_cls.from_state(
        graph=graph,
        config=config,
        z_tilde=z_tilde,
        perm=data["perm"],
        column_sq_norms=data["column_sq_norms"],
        component_labels=data["component_labels"],
        stats=stats,
        ground_value=float(data["ground_value"]),
    )


def _partitioned_from_arrays(data):
    """Rebuild a partitioned engine: cold shell + every persisted piece.

    The plan is restored verbatim (no re-partitioning — the saved region
    layout is authoritative), region halo graphs are reconstructed
    deterministically from graph + plan, and each saved region factor is
    rehydrated through ``CholInvEffectiveResistance.from_state`` exactly
    like a monolithic save.  Shards and Schur systems that were never
    built are absent from the file and stay cold, rebuilding lazily on
    first touch.
    """
    from repro.core.effective_resistance import CholInvEffectiveResistance
    from repro.core.partitioned import ShardPlan
    from repro.core.sharded import ShardedEngine
    from repro.graphs.components import connected_components

    config = EngineConfig.from_dict(json.loads(str(data["config_json"])))
    shard_config = EngineConfig.from_dict(
        json.loads(str(data["shard_config_json"]))
    )
    graph = Graph(
        int(data["num_nodes"]),
        data["graph_heads"],
        data["graph_tails"],
        data["graph_weights"],
    )
    plan = ShardPlan(
        strategy=str(data["plan_strategy"]),
        num_shards=int(data["plan_num_shards"]),
        shard_of=np.asarray(data["plan_shard_of"], dtype=np.int64),
        component_labels=np.asarray(data["component_labels"], dtype=np.int64),
        num_components=int(data["plan_num_components"]),
        separator=np.asarray(data["plan_separator"], dtype=np.int64),
    )
    plan.validate(graph)
    engine = ShardedEngine._restore(graph, config, plan)
    for component in np.asarray(data["system_components"]).tolist():
        engine._install_system(
            int(component),
            np.asarray(data[f"sys{int(component)}_schur"], dtype=np.float64),
        )
    for shard in np.asarray(data["built_shards"]).tolist():
        prefix = f"shard{int(shard)}_"
        halo = engine._shard_graph(int(shard))
        labels, _ = connected_components(halo)
        z_tilde = sp.csc_matrix(
            (
                data[prefix + "z_data"],
                data[prefix + "z_indices"],
                data[prefix + "z_indptr"],
            ),
            shape=tuple(int(s) for s in data[prefix + "z_shape"]),
        )
        stats = ApproxInverseStats(
            nnz=int(data[prefix + "stats_nnz"]),
            n=int(data[prefix + "stats_n"]),
            columns_truncated=int(data[prefix + "stats_columns_truncated"]),
            columns_kept_whole=int(data[prefix + "stats_columns_kept_whole"]),
        )
        sub = CholInvEffectiveResistance.from_state(
            graph=halo,
            config=shard_config,
            z_tilde=z_tilde,
            perm=data[prefix + "perm"],
            column_sq_norms=data[prefix + "column_sq_norms"],
            component_labels=labels,
            stats=stats,
            ground_value=float(data[prefix + "ground_value"]),
        )
        engine._install_shard(int(shard), sub)
    return engine
