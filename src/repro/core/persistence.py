"""Engine persistence — save a built Alg. 3 engine, warm-start from disk.

Building a ``cholinv`` engine is the expensive part of serving effective
resistances (incomplete Cholesky + Alg. 2); the queries themselves only
need the approximate inverse ``Z̃`` and a few index arrays.  This module
serialises exactly that state to a single ``.npz`` so service workers can
warm-start without refactoring (ROADMAP: "persist/serialize built
engines"):

* ``Z̃`` in CSC form (``data`` / ``indices`` / ``indptr`` / shape);
* the fill-reducing permutation and the cached column square norms
  (restoring both makes :meth:`query_pairs` *bit-identical* to the saved
  engine — nothing is recomputed);
* the connected-component labels (cross-component queries answer ``inf``
  without any factor);
* the served graph's edge arrays (so ``all_edge_resistances`` and service
  refreshes work on the restored engine);
* the :class:`~repro.core.engine.EngineConfig` as JSON (so a refresh after
  a graph edit rebuilds with the saved settings).

Entry points: :func:`save_engine` / :func:`load_engine`, surfaced as
``engine.save(path)``, ``ResistanceService.from_saved(path)`` and the CLI's
``--save-engine`` / ``--load-engine`` options.  ``load_engine(path,
mmap=True)`` memory-maps the large arrays instead of reading them: many
service workers on one host then share the physical pages of one saved
factor (the ``.npz`` is an uncompressed zip, so each member's array data
sits at a fixed file offset that ``np.memmap`` can map read-only).
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.core.approx_inverse import ApproxInverseStats
from repro.core.engine import EngineConfig
from repro.graphs.graph import Graph
from repro.utils.validation import require

FORMAT_VERSION = 1


def _npz_path(path: "str | Path") -> Path:
    """``np.savez`` appends ``.npz`` silently; make that explicit."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_engine(engine, path: "str | Path") -> Path:
    """Serialise a built ``cholinv`` engine to ``path`` (returns the path).

    Only :class:`~repro.core.effective_resistance.CholInvEffectiveResistance`
    persists: its post-build state is plain arrays.  The ``exact`` and
    ``random_projection`` engines hold live factorisation objects (SuperLU)
    that cannot be serialised portably — rebuild those instead.
    """
    from repro.core.effective_resistance import CholInvEffectiveResistance

    if not isinstance(engine, CholInvEffectiveResistance):
        raise NotImplementedError(
            f"{type(engine).__name__} does not support persistence; only the "
            f'"cholinv" (Alg. 3) engine serialises its factor to disk'
        )
    # the config carries the *requested* ground value (None = recompute
    # from the graph) so a refresh after warm-start regrounds exactly like
    # a cold service would; the resolved value is stored separately below
    requested = engine.requested_ground_value
    config = EngineConfig(
        method="cholinv",
        epsilon=engine.epsilon,
        drop_tol=engine.drop_tol,
        ordering=engine.ordering,
        mode=engine.mode,
        small_column_threshold=engine.small_column_threshold,
        ground_value=None if requested is None else float(requested),
        build_workers=int(engine.build_workers),
    )
    z = engine.z_tilde.tocsc()
    path = _npz_path(path)
    np.savez(
        path,
        format_version=np.int64(FORMAT_VERSION),
        config_json=np.asarray(json.dumps(config.to_dict())),
        num_nodes=np.int64(engine.graph.num_nodes),
        graph_heads=engine.graph.heads,
        graph_tails=engine.graph.tails,
        graph_weights=engine.graph.weights,
        z_data=z.data,
        z_indices=z.indices,
        z_indptr=z.indptr,
        z_shape=np.asarray(z.shape, dtype=np.int64),
        ground_value=np.float64(engine.ground_value),
        perm=engine.perm,
        column_sq_norms=engine._column_sq_norms,
        component_labels=engine.component_labels,
        stats_nnz=np.int64(engine.stats.nnz),
        stats_n=np.int64(engine.stats.n),
        stats_columns_truncated=np.int64(engine.stats.columns_truncated),
        stats_columns_kept_whole=np.int64(engine.stats.columns_kept_whole),
    )
    return path


def _mmap_npz_arrays(path: Path) -> "dict[str, np.ndarray]":
    """Read an uncompressed ``.npz``, memory-mapping every 1-D+ member.

    ``np.savez`` stores members without compression, so each embedded
    ``.npy`` payload lives at ``local header + npy header`` bytes into the
    archive — a fixed offset ``np.memmap`` can map read-only.  Scalars
    (0-d arrays like the format version or the config JSON) are read
    normally; a compressed member (not produced by :func:`save_engine`,
    but legal zip) falls back to an in-memory read.
    """
    arrays: "dict[str, np.ndarray]" = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            if info.compress_type != zipfile.ZIP_STORED:
                with archive.open(info) as member:
                    arrays[name] = np.lib.format.read_array(
                        member, allow_pickle=False
                    )
                continue
            # data offset = local file header (30 bytes) + name + extra
            raw.seek(info.header_offset)
            local_header = raw.read(30)
            require(
                local_header[:4] == b"PK\x03\x04",
                f"corrupt zip member {info.filename!r} in {path}",
            )
            name_len = int.from_bytes(local_header[26:28], "little")
            extra_len = int.from_bytes(local_header[28:30], "little")
            raw.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(raw)
            read_header = {
                (1, 0): np.lib.format.read_array_header_1_0,
                (2, 0): np.lib.format.read_array_header_2_0,
            }.get(version)
            require(
                read_header is not None,
                f"unsupported .npy header version {version} in {path}",
            )
            shape, fortran_order, dtype = read_header(raw)
            if len(shape) == 0 or dtype.hasobject:
                raw.seek(info.header_offset + 30 + name_len + extra_len)
                arrays[name] = np.lib.format.read_array(raw, allow_pickle=False)
                continue
            arrays[name] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=raw.tell(),
                shape=shape,
                order="F" if fortran_order else "C",
            )
    return arrays


def load_engine(path: "str | Path", mmap: bool = False):
    """Rehydrate an engine saved by :func:`save_engine`.

    The returned engine is a real
    :class:`~repro.core.effective_resistance.CholInvEffectiveResistance`
    whose ``query_pairs`` output is bit-identical to the saved one; its
    ``config`` attribute carries the settings it was built with so
    :class:`~repro.service.ResistanceService` can refresh it after graph
    edits.  With ``mmap=True`` the large arrays (``Z̃`` data/indices,
    norms, permutation, graph edges) stay on disk as read-only memory
    maps, so many workers on one host share one copy of the pages.
    """
    from repro.core.effective_resistance import CholInvEffectiveResistance

    path = _npz_path(path)
    require(path.exists(), f"no saved engine at {path}")
    if mmap:
        data = _mmap_npz_arrays(path)
        return _engine_from_arrays(data, CholInvEffectiveResistance)
    with np.load(path, allow_pickle=False) as data:
        return _engine_from_arrays(data, CholInvEffectiveResistance)


def _engine_from_arrays(data, engine_cls):
    version = int(data["format_version"])
    require(
        version <= FORMAT_VERSION,
        f"saved engine format v{version} is newer than supported "
        f"v{FORMAT_VERSION}",
    )
    config = EngineConfig.from_dict(json.loads(str(data["config_json"])))
    graph = Graph(
        int(data["num_nodes"]),
        data["graph_heads"],
        data["graph_tails"],
        data["graph_weights"],
    )
    z_tilde = sp.csc_matrix(
        (data["z_data"], data["z_indices"], data["z_indptr"]),
        shape=tuple(int(s) for s in data["z_shape"]),
    )
    stats = ApproxInverseStats(
        nnz=int(data["stats_nnz"]),
        n=int(data["stats_n"]),
        columns_truncated=int(data["stats_columns_truncated"]),
        columns_kept_whole=int(data["stats_columns_kept_whole"]),
    )
    return engine_cls.from_state(
        graph=graph,
        config=config,
        z_tilde=z_tilde,
        perm=data["perm"],
        column_sq_norms=data["column_sq_norms"],
        component_labels=data["component_labels"],
        stats=stats,
        ground_value=float(data["ground_value"]),
    )
