"""Pairwise resistance-distance matrices and nearest-neighbour queries.

Effective resistance is a metric ("resistance distance"), and graph-ML
applications often need all pairwise distances within a *subset* of nodes
(cluster analysis, landmark embeddings) or the electrically-nearest
neighbours of a node.  Both reduce to Gram matrices of the approximate
inverse columns:

    R(p, q) = ‖z_p − z_q‖² = g_pp + g_qq − 2·g_pq,   G = Z_Sᵀ Z_S

so a subset of ``k`` nodes costs one sparse ``(n × k)`` slice and one
``k × k`` Gram product — no per-pair work.
"""

from __future__ import annotations

import numpy as np

from repro.core.effective_resistance import CholInvEffectiveResistance
from repro.core.engine import build_engine
from repro.graphs.graph import Graph
from repro.utils.validation import require


def pairwise_resistance_matrix(
    estimator: CholInvEffectiveResistance, nodes
) -> np.ndarray:
    """Dense ``k × k`` resistance-distance matrix for a node subset.

    Parameters
    ----------
    estimator:
        A fitted Alg. 3 estimator.
    nodes:
        Node ids (``k`` of them); the result's ``[i, j]`` entry is
        ``R(nodes[i], nodes[j])``.  Cross-component pairs come out ``inf``.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    require(nodes.ndim == 1 and nodes.size >= 1, "nodes must be a 1-D index array")
    cols = estimator._position[nodes]
    block = estimator.z_tilde[:, cols]
    gram = np.asarray((block.T @ block).todense())
    diag = np.diag(gram)
    distances = diag[:, None] + diag[None, :] - 2.0 * gram
    np.maximum(distances, 0.0, out=distances)
    labels = estimator.component_labels[nodes]
    distances[labels[:, None] != labels[None, :]] = np.inf
    np.fill_diagonal(distances, 0.0)
    return distances


def exact_pairwise_resistance_matrix(graph: Graph, nodes) -> np.ndarray:
    """Reference implementation through the exact engine (O(k²) queries)."""
    nodes = np.asarray(nodes, dtype=np.int64)
    est = build_engine(graph, "exact")
    k = nodes.size
    out = np.zeros((k, k))
    pairs = [(int(nodes[i]), int(nodes[j])) for i in range(k) for j in range(i + 1, k)]
    if pairs:
        values = est.query_pairs(np.asarray(pairs))
        idx = 0
        for i in range(k):
            for j in range(i + 1, k):
                out[i, j] = out[j, i] = values[idx]
                idx += 1
    return out


def electrically_nearest_neighbours(
    estimator: CholInvEffectiveResistance,
    node: int,
    candidates,
    k: int = 5,
) -> "tuple[np.ndarray, np.ndarray]":
    """The ``k`` candidates with smallest effective resistance to ``node``.

    Returns ``(neighbour_ids, resistances)`` sorted ascending.  This is the
    vertex-similarity application from the paper's introduction: small
    effective resistance ⇔ strongly connected (many short, heavy paths).
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    require(candidates.size >= 1, "need at least one candidate")
    pairs = np.column_stack([np.full(candidates.size, node, dtype=np.int64), candidates])
    distances = estimator.query_pairs(pairs)
    k = min(k, candidates.size)
    order = np.argsort(distances, kind="stable")[:k]
    return candidates[order], distances[order]
