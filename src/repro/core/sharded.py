"""Component-sharded composite engine.

Effective resistance never crosses a connected component (the physical
answer is ``inf`` — no current path), so a multi-component graph can be
served by one independent sub-engine per component.  That is strictly
cheaper than factoring the whole grounded Laplacian at once: each shard
factors a smaller matrix with its own fill-reducing ordering, singleton
components never build anything, and cross-component queries are answered
from the component labels without touching any factor.  Shards are also
the unit of parallelism: :meth:`ShardedEngine.shard_subbatches` groups a
pair batch by component and :meth:`ShardedEngine.query_shard` answers one
group, which is exactly the sub-batch interface the serving layer's
planner/executor (:mod:`repro.service.planner`,
:mod:`repro.service.executor`) fans out across threads.

``ShardedEngine`` wraps any registered base engine: the wrapped method and
its tunables come from the same :class:`~repro.core.engine.EngineConfig`
the factory uses (``config.sharded`` is what routes ``build_engine`` here).
With ``lazy_shards=True`` each sub-engine is built on the first query that
lands in its shard, so a service warm-starts instantly and only pays for
the components traffic actually touches; lazy builds are serialised per
shard, so concurrent queries are safe and never build a shard twice.

Shards are independent factorisation problems, which makes them the unit
of *build* parallelism too: with ``config.build_workers > 1`` eager
construction fans the per-component builds out over a thread pool, and
:meth:`ShardedEngine.warm_up` does the same for a lazy engine on demand
(safe to call concurrently with live queries — the per-shard build locks
serialise exactly as they do for lazy first-touch builds).  Shards built
in parallel are bit-identical to serial builds: each sub-engine's math is
untouched, only *when* it runs changes.
"""

from __future__ import annotations

import concurrent.futures
import threading

import numpy as np

from repro.core.engine import (
    EngineConfig,
    ResistanceEngine,
    as_pair_columns,
    build_engine,
)
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.utils.timing import Timer
from repro.utils.validation import require


class ShardedEngine(ResistanceEngine):
    """One sub-engine per connected component behind the engine protocol.

    Parameters
    ----------
    graph:
        Weighted undirected graph (any number of components).
    config:
        Config of the *base* engine each shard builds (``method`` plus its
        tunables).  ``config.lazy_shards`` defers shard builds to first
        use; ``config.sharded`` itself is ignored here (this class *is*
        the sharding).
    lazy:
        Overrides ``config.lazy_shards`` when given.

    Notes
    -----
    Queries are grouped by component and translated through global↔local
    id maps, so a mixed batch costs one sub-engine call per touched shard.
    Components of size one never build an engine: every query they can
    answer is ``0.0`` (self pair) or ``inf`` (cross-component).
    """

    def __init__(
        self,
        graph: Graph,
        config: "EngineConfig | str | None" = None,
        lazy: "bool | None" = None,
    ):
        if config is None:
            config = EngineConfig()
        elif isinstance(config, str):
            config = EngineConfig(method=config)
        self.graph = graph
        self.n = graph.num_nodes
        self.timer = Timer()
        self.config = config if config.sharded else config.replace(sharded=True)
        self._shard_config = config.replace(sharded=False, lazy_shards=False)
        self.lazy = bool(config.lazy_shards if lazy is None else lazy)

        with self.timer.section("components"):
            self.component_labels, self.num_shards = connected_components(graph)
            order = np.argsort(self.component_labels, kind="stable")
            counts = np.bincount(self.component_labels, minlength=self.num_shards)
            starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
            # global node id -> rank within its component
            self._local = np.empty(self.n, dtype=np.int64)
            self._local[order] = np.arange(self.n) - np.repeat(starts, counts)
            # members of shard c, in local-rank order
            self._members = np.split(order, np.cumsum(counts)[:-1])
        self._engines: "list[ResistanceEngine | None]" = [None] * self.num_shards
        # lazy builds under concurrency: one lock per in-flight shard build
        # (created on demand), so distinct shards build in parallel while a
        # given shard is never built twice
        self._build_locks: "dict[int, threading.Lock]" = {}
        self._locks_guard = threading.Lock()
        if not self.lazy:
            eager = [c for c in range(self.num_shards) if counts[c] > 1]
            self._build_shards(eager, self.config.build_workers)

    # ------------------------------------------------------------------
    @property
    def shards_built(self) -> int:
        """How many sub-engines exist right now (grows lazily)."""
        return sum(engine is not None for engine in self._engines)

    def shard_sizes(self) -> np.ndarray:
        """Node count of every shard."""
        return np.bincount(self.component_labels, minlength=self.num_shards)

    def _shard(
        self, c: int, config: "EngineConfig | None" = None
    ) -> ResistanceEngine:
        engine = self._engines[c]
        if engine is not None:
            return engine
        with self._locks_guard:
            lock = self._build_locks.setdefault(c, threading.Lock())
        with lock:
            if self._engines[c] is None:
                with self.timer.section("shard_build"):
                    sub, _ = self.graph.subgraph(self._members[c])
                    self._engines[c] = build_engine(
                        sub, self._shard_config if config is None else config
                    )
        return self._engines[c]

    def _build_shards(self, shards: "list[int]", workers: int) -> None:
        """Build the given shards, fanning out over ``workers`` threads.

        The shards are the primary parallel unit; any whole-number worker
        surplus beyond the shard count is divided among the sub-builds as
        Alg. 2 level parallelism (``workers // len(shards)`` each), so
        the pool is never oversubscribed (a remainder worker can sit idle
        when the shard count does not divide the budget).  Either way the
        resulting engines are bit-identical — worker counts never change
        engine math.
        """
        if workers > 1 and len(shards) > 1:
            per_shard = self._shard_config.replace(
                build_workers=max(1, workers // len(shards))
            )
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(workers, len(shards)),
                thread_name_prefix="shard-build",
            ) as pool:
                # list() drains the iterator so worker exceptions propagate
                list(pool.map(lambda c: self._shard(c, per_shard), shards))
        elif workers > 1:
            # a single pending shard gets the whole budget as Alg. 2
            # level parallelism
            per_shard = self._shard_config.replace(build_workers=workers)
            for c in shards:
                self._shard(c, per_shard)
        else:
            for c in shards:
                self._shard(c)

    def warm_up(self, workers: "int | None" = None) -> int:
        """Build every not-yet-built multi-node shard, optionally in parallel.

        Gives a lazy engine the cold-start profile of an eager one without
        giving up lazy construction: a service can come up instantly, then
        warm its shards in the background while early traffic builds
        whatever it touches first.  Safe to call from several threads and
        concurrently with queries — every build goes through the same
        per-shard locks as lazy first-touch builds, so no shard is ever
        built twice.

        Parameters
        ----------
        workers:
            Thread count for the fan-out; defaults to
            ``config.build_workers``.

        Returns
        -------
        int
            Number of shards that were cold when this call started (0
            means the engine was already fully warm).
        """
        effective = self.config.build_workers if workers is None else int(workers)
        require(effective >= 1, f"workers must be >= 1, got {workers}")
        sizes = self.shard_sizes()
        pending = [
            c
            for c in range(self.num_shards)
            if sizes[c] > 1 and self._engines[c] is None
        ]
        if pending:
            self._build_shards(pending, effective)
        return len(pending)

    # ------------------------------------------------------------------
    # sub-batch interface (what the serving layer's planner fans out)
    # ------------------------------------------------------------------
    def shard_subbatches(
        self, ps, qs
    ) -> "list[tuple[int, np.ndarray, np.ndarray]]":
        """Group within-component pairs by shard.

        Returns one ``(shard_id, positions, local_pairs)`` triple per
        touched component: ``positions`` indexes the input arrays, and
        ``local_pairs`` is the ``(k, 2)`` shard-local id array that
        :meth:`query_shard` answers.  Self pairs and cross-component pairs
        are excluded — they never need an engine.  One stable argsort
        groups the whole batch (O(m log m) however many shards it hits).
        """
        ps = np.asarray(ps, dtype=np.int64)
        qs = np.asarray(qs, dtype=np.int64)
        labels = self.component_labels
        active = np.flatnonzero((labels[ps] == labels[qs]) & (ps != qs))
        if active.size == 0:
            return []
        components = labels[ps[active]]
        order = np.argsort(components, kind="stable")
        grouped = active[order]
        boundaries = np.flatnonzero(np.diff(components[order])) + 1
        subbatches = []
        for group in np.split(grouped, boundaries):
            local = np.column_stack(
                [self._local[ps[group]], self._local[qs[group]]]
            )
            subbatches.append((int(labels[ps[group[0]]]), group, local))
        return subbatches

    def query_shard(self, shard_id: int, local_pairs) -> np.ndarray:
        """Answer one shard's sub-batch of *shard-local* pairs.

        Builds the shard first if it is lazy and cold; safe to call from
        several threads at once (the serving layer's
        :class:`~repro.service.executor.ThreadedExecutor` does exactly
        that, one call per touched shard).
        """
        require(
            0 <= shard_id < self.num_shards,
            f"shard id {shard_id} out of range for {self.num_shards} shards",
        )
        return self._shard(shard_id).query_pairs(local_pairs)

    # ------------------------------------------------------------------
    def query_pairs(self, pairs) -> np.ndarray:
        """Batch queries routed shard-by-shard; cross-component → ``inf``."""
        ps, qs = as_pair_columns(pairs)
        out = np.full(ps.shape[0], np.inf)
        with self.timer.section("queries"):
            for shard_id, group, local in self.shard_subbatches(ps, qs):
                out[group] = self.query_shard(shard_id, local)
        out[ps == qs] = 0.0
        return out
