"""Component-sharded composite engine.

Effective resistance never crosses a connected component (the physical
answer is ``inf`` — no current path), so a multi-component graph can be
served by one independent sub-engine per component.  That is strictly
cheaper than factoring the whole grounded Laplacian at once: each shard
factors a smaller matrix with its own fill-reducing ordering, singleton
components never build anything, and cross-component queries are answered
from the component labels without touching any factor.  Shards are also
the natural unit of future parallelism and distribution (ROADMAP:
"shard ``ResistanceService`` across subgraphs/components").

``ShardedEngine`` wraps any registered base engine: the wrapped method and
its tunables come from the same :class:`~repro.core.engine.EngineConfig`
the factory uses (``config.sharded`` is what routes ``build_engine`` here).
With ``lazy_shards=True`` each sub-engine is built on the first query that
lands in its shard, so a service warm-starts instantly and only pays for
the components traffic actually touches.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import (
    EngineConfig,
    ResistanceEngine,
    as_pair_columns,
    build_engine,
)
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.utils.timing import Timer


class ShardedEngine(ResistanceEngine):
    """One sub-engine per connected component behind the engine protocol.

    Parameters
    ----------
    graph:
        Weighted undirected graph (any number of components).
    config:
        Config of the *base* engine each shard builds (``method`` plus its
        tunables).  ``config.lazy_shards`` defers shard builds to first
        use; ``config.sharded`` itself is ignored here (this class *is*
        the sharding).
    lazy:
        Overrides ``config.lazy_shards`` when given.

    Notes
    -----
    Queries are grouped by component and translated through global↔local
    id maps, so a mixed batch costs one sub-engine call per touched shard.
    Components of size one never build an engine: every query they can
    answer is ``0.0`` (self pair) or ``inf`` (cross-component).
    """

    def __init__(
        self,
        graph: Graph,
        config: "EngineConfig | str | None" = None,
        lazy: "bool | None" = None,
    ):
        if config is None:
            config = EngineConfig()
        elif isinstance(config, str):
            config = EngineConfig(method=config)
        self.graph = graph
        self.n = graph.num_nodes
        self.timer = Timer()
        self.config = config if config.sharded else config.replace(sharded=True)
        self._shard_config = config.replace(sharded=False, lazy_shards=False)
        self.lazy = bool(config.lazy_shards if lazy is None else lazy)

        with self.timer.section("components"):
            self.component_labels, self.num_shards = connected_components(graph)
            order = np.argsort(self.component_labels, kind="stable")
            counts = np.bincount(self.component_labels, minlength=self.num_shards)
            starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
            # global node id -> rank within its component
            self._local = np.empty(self.n, dtype=np.int64)
            self._local[order] = np.arange(self.n) - np.repeat(starts, counts)
            # members of shard c, in local-rank order
            self._members = np.split(order, np.cumsum(counts)[:-1])
        self._engines: "list[ResistanceEngine | None]" = [None] * self.num_shards
        if not self.lazy:
            for c in range(self.num_shards):
                if counts[c] > 1:
                    self._shard(c)

    # ------------------------------------------------------------------
    @property
    def shards_built(self) -> int:
        """How many sub-engines exist right now (grows lazily)."""
        return sum(engine is not None for engine in self._engines)

    def shard_sizes(self) -> np.ndarray:
        """Node count of every shard."""
        return np.bincount(self.component_labels, minlength=self.num_shards)

    def _shard(self, c: int) -> ResistanceEngine:
        if self._engines[c] is None:
            with self.timer.section("shard_build"):
                sub, _ = self.graph.subgraph(self._members[c])
                self._engines[c] = build_engine(sub, self._shard_config)
        return self._engines[c]

    # ------------------------------------------------------------------
    def query_pairs(self, pairs) -> np.ndarray:
        """Batch queries routed shard-by-shard; cross-component → ``inf``.

        Pairs are grouped by component with one argsort (O(m log m) for
        the whole batch, however many shards it touches), then each
        touched shard answers its group in a single sub-engine call.
        """
        ps, qs = as_pair_columns(pairs)
        out = np.full(ps.shape[0], np.inf)
        labels = self.component_labels
        active = np.flatnonzero((labels[ps] == labels[qs]) & (ps != qs))
        with self.timer.section("queries"):
            if active.size:
                components = labels[ps[active]]
                order = np.argsort(components, kind="stable")
                grouped = active[order]
                boundaries = np.flatnonzero(np.diff(components[order])) + 1
                for group in np.split(grouped, boundaries):
                    local = np.column_stack(
                        [self._local[ps[group]], self._local[qs[group]]]
                    )
                    shard = self._shard(int(labels[ps[group[0]]]))
                    out[group] = shard.query_pairs(local)
        out[ps == qs] = 0.0
        return out
