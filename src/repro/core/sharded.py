"""Component-sharded composite engine (now a partitioned-engine strategy).

Effective resistance never crosses a connected component (the physical
answer is ``inf`` — no current path), so a multi-component graph can be
served by one independent sub-engine per component.  PR 7 generalised
that idea into :class:`~repro.core.partitioned.PartitionedEngine`, where
a shard comes from a :class:`~repro.core.partitioned.ShardPlan` — either
one region per component (this class' classic behaviour, the
``shard_strategy="component"`` default) or separator-bounded regions
*inside* one giant component with exact Schur-complement cross-region
queries (``shard_strategy="separator"``).

``ShardedEngine`` remains the name the factory builds and downstream
code imports; it is the partitioned engine, strategy picked by the same
:class:`~repro.core.engine.EngineConfig` that routes ``build_engine``
here (``config.sharded`` / ``config.shard_strategy``).  Everything the
class promised before still holds:

* lazy per-shard builds serialised by per-shard locks (``lazy_shards``),
  concurrent-query safe, no shard ever built twice;
* eager builds and :meth:`~repro.core.partitioned.PartitionedEngine.warm_up`
  fan out over ``config.build_workers`` threads, bit-identical at every
  worker count;
* :meth:`~repro.core.partitioned.PartitionedEngine.shard_subbatches` /
  :meth:`~repro.core.partitioned.PartitionedEngine.query_shard` are the
  sub-batch contract the serving layer's planner/executor fans out.
"""

from __future__ import annotations

from repro.core.partitioned import PartitionedEngine


class ShardedEngine(PartitionedEngine):
    """The composite engine behind ``config.sharded`` — see module docstring.

    With the default ``shard_strategy="component"`` this behaves exactly
    like the pre-PR-7 component-sharded engine: one shard per connected
    component, cross-component queries answered ``inf`` from the labels
    without touching any factor, singleton components never building.
    ``shard_strategy="separator"`` additionally splits components larger
    than ``max_shard_nodes`` into separator-bounded regions served
    through the Schur-complement path — see
    :mod:`repro.core.partitioned`.
    """
