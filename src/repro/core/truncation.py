"""Relative 1-norm truncation — Eq. (10) of the paper.

Given a computed column ``z*`` the algorithm finds the **largest** ``k`` such
that zeroing the ``k`` smallest-magnitude entries keeps the dropped 1-norm
mass within ``ε`` of the column's total::

    ‖trunc_k(z*) − z*‖₁ / ‖z*‖₁ ≤ ε

Because the dropped mass of ``trunc_k`` is the prefix sum of the sorted
magnitudes, one sort plus one cumulative sum answers the search exactly.
"""

from __future__ import annotations

import numpy as np


def truncation_keep_mask(values: np.ndarray, epsilon: float) -> np.ndarray:
    """Boolean mask of entries kept by the Eq. (10) rule.

    Parameters
    ----------
    values:
        Column values (any sign; the rule uses absolute values).
    epsilon:
        Relative 1-norm budget ``ε ≥ 0``.

    Returns
    -------
    numpy.ndarray
        Boolean mask, ``True`` for entries that survive.  With ``ε = 0``
        only exact zeros are dropped.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    magnitudes = np.abs(np.asarray(values, dtype=np.float64))
    total = magnitudes.sum()
    if total == 0.0:
        return np.zeros(values.shape[0], dtype=bool)
    order = np.argsort(magnitudes, kind="stable")
    dropped_mass = np.cumsum(magnitudes[order])
    k = int(np.searchsorted(dropped_mass, epsilon * total, side="right"))
    mask = np.ones(values.shape[0], dtype=bool)
    mask[order[:k]] = False
    return mask


def truncate_relative_1norm(
    indices: np.ndarray, values: np.ndarray, epsilon: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Apply Eq. (10) to a sparse column given as (indices, values).

    Returns the surviving (indices, values), preserving the input order.
    """
    mask = truncation_keep_mask(values, epsilon)
    return indices[mask], values[mask]


def dropped_fraction(values: np.ndarray, mask: np.ndarray) -> float:
    """Fraction of 1-norm mass removed by ``mask`` — test/diagnostic helper."""
    magnitudes = np.abs(np.asarray(values, dtype=np.float64))
    total = magnitudes.sum()
    if total == 0.0:
        return 0.0
    return float(magnitudes[~mask].sum() / total)
