"""Tiered-accuracy effective-resistance estimators.

The engines in :mod:`repro.core` are exact-grade: every answer costs a
factor solve (``exact``) or a sparse column product over the approximate
inverse (``cholinv``).  This package adds the cheap-but-bounded tiers the
ROADMAP's "tiered accuracy serving" item calls for — each one a regular
:class:`~repro.core.engine.ResistanceEngine` registered with the engine
registry, plus a per-pair *error bound* so a router (or the adaptive
wrapper) can decide whether the cheap answer is good enough:

* :class:`~repro.estimators.landmark.LandmarkEffectiveResistance`
  (``"landmark"``) — index ``k`` landmark nodes, project every ``Z̃``
  column onto the landmark subspace once, then answer any pair from two
  ``k``-vectors with a certified interval (triangle inequalities in the
  embedding, Improved Algorithms for ER Computation / PAPERS.md);
* :class:`~repro.estimators.local_walk.LocalWalkEffectiveResistance`
  (``"local_walk"``) — seeded bidirectional lazy random walks with
  variance-based confidence intervals; no factorisation at all, so it
  serves single pairs on graphs nothing else has been built for
  (Efficient Estimation of Pairwise ER / PAPERS.md);
* :class:`~repro.estimators.adaptive.AdaptiveEffectiveResistance`
  (``"adaptive"``) — a tier ladder that escalates exactly the pairs whose
  bound exceeds ``config.tier_rel_tol``.

The shared bounds protocol lives in :mod:`repro.estimators.base`; the
SLA-aware router that drives these tiers inside a service is
:class:`~repro.service.router.QueryRouter`.
"""

from repro.estimators.adaptive import AdaptiveEffectiveResistance
from repro.estimators.base import BoundedResistanceEngine
from repro.estimators.landmark import LandmarkEffectiveResistance
from repro.estimators.local_walk import LocalWalkEffectiveResistance

__all__ = [
    "BoundedResistanceEngine",
    "LandmarkEffectiveResistance",
    "LocalWalkEffectiveResistance",
    "AdaptiveEffectiveResistance",
]
