"""Adaptive tier ladder — escalate exactly the pairs that need it.

The wrapper owns one engine per ladder entry (cheapest first, default
``("landmark", "cholinv")``) and answers a batch by sweeping it through
the ladder: a tier with error bounds keeps every pair whose relative
half-width is within ``tier_rel_tol`` and passes the rest up; a tier
without bounds (``cholinv``, ``exact``) is authoritative and keeps
everything that reaches it.  The final tier always keeps the remainder,
so every pair is answered.

Engines that share work are shared: when the ladder contains both
``landmark`` and ``cholinv`` the two tiers use a *single* Alg. 3 factor —
whichever is built first supplies the other (the landmark tier projects
the existing factor instead of refactoring the graph).

:attr:`AdaptiveEffectiveResistance.last_tier_counts` records, after each
batch, how many pairs each tier served — the escalation telemetry the
service's :class:`~repro.service.resistance_service.BatchReport` surfaces.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro.core.effective_resistance import CholInvEffectiveResistance
from repro.core.engine import (
    EngineConfig,
    ResistanceEngine,
    build_engine,
    register_engine,
    registered_engines,
)
from repro.estimators.base import BoundedResistanceEngine, split_trivial
from repro.estimators.landmark import LandmarkEffectiveResistance
from repro.graphs.graph import Graph
from repro.utils.timing import Timer
from repro.utils.validation import require

_TINY = 1e-12

DEFAULT_TIERS: "tuple[str, ...]" = ("landmark", "cholinv")


@register_engine(
    "adaptive",
    params=(
        "tiers", "tier_rel_tol", "seed",
        "num_landmarks", "landmark_strategy", "num_walks", "walk_length",
        "num_trees",
        "epsilon", "drop_tol", "ordering", "mode",
        "small_column_threshold", "ground_value", "build_workers",
    ),
)
class AdaptiveEffectiveResistance(BoundedResistanceEngine):
    """Tier ladder with per-pair escalation on the error bound.

    Parameters
    ----------
    graph:
        Weighted undirected graph.
    tiers:
        Ladder of registered engine names, cheapest first (``None`` =
        ``("landmark", "cholinv")``).  ``"adaptive"`` itself is rejected.
    tier_rel_tol:
        A bounded tier keeps a pair when ``half_width <= tier_rel_tol *
        |value|``; everything else escalates.
    seed, num_landmarks, landmark_strategy, num_walks, walk_length,
    num_trees, epsilon, drop_tol, ordering, mode,
    small_column_threshold, ground_value, build_workers:
        Forwarded to the tier engines that consume them.
    """

    def __init__(
        self,
        graph: Graph,
        tiers: "tuple[str, ...] | None" = None,
        tier_rel_tol: float = 0.05,
        seed: "int | None" = None,
        num_landmarks: int = 32,
        landmark_strategy: str = "degree",
        num_walks: int = 512,
        walk_length: int = 32,
        num_trees: int = 200,
        epsilon: float = 1e-3,
        drop_tol: float = 1e-3,
        ordering: str = "amd",
        mode: str = "blocked",
        small_column_threshold: "float | None" = None,
        ground_value: "float | None" = None,
        build_workers: int = 1,
    ) -> None:
        ladder = DEFAULT_TIERS if tiers is None else tuple(tiers)
        known = registered_engines()
        for name in ladder:
            require(
                name in known and name != "adaptive",
                f"tier {name!r} is not a usable engine "
                f"(registered: {', '.join(n for n in known if n != 'adaptive')})",
            )
        self.graph = graph
        self.n = graph.num_nodes
        self.tier_names = ladder
        self.tier_rel_tol = tier_rel_tol
        self.timer = Timer()
        self.last_tier_counts: "dict[str, int]" = {}
        shared = dict(
            seed=seed,
            num_landmarks=num_landmarks,
            landmark_strategy=landmark_strategy,
            num_walks=num_walks,
            walk_length=walk_length,
            num_trees=num_trees,
            epsilon=epsilon,
            drop_tol=drop_tol,
            ordering=ordering,
            mode=mode,
            small_column_threshold=small_column_threshold,
            ground_value=ground_value,
            build_workers=build_workers,
        )
        self.tier_engines: "dict[str, ResistanceEngine]" = {}
        with self.timer.section("tier_builds"):
            for name in ladder:
                self.tier_engines[name] = self._build_tier(graph, name, shared)
        self.component_labels = self.tier_engines[ladder[0]].component_labels

    def _build_tier(
        self, graph: Graph, name: str, shared: "dict[str, Any]"
    ) -> ResistanceEngine:
        # share one Alg. 3 factor between the landmark and cholinv tiers
        if name == "cholinv":
            landmark = self.tier_engines.get("landmark")
            if (
                isinstance(landmark, LandmarkEffectiveResistance)
                and landmark.base_engine is not None
            ):
                return landmark.base_engine
        if name == "landmark":
            base = self.tier_engines.get("cholinv")
            if isinstance(base, CholInvEffectiveResistance):
                return LandmarkEffectiveResistance.from_base_engine(
                    base,
                    num_landmarks=shared["num_landmarks"],
                    landmark_strategy=shared["landmark_strategy"],
                    seed=shared["seed"],
                )
        return build_engine(graph, EngineConfig(method=name, **shared))

    # ------------------------------------------------------------------
    def query_pairs_with_bounds(
        self, pairs: ArrayLike
    ) -> "tuple[np.ndarray, np.ndarray]":
        ps, qs, values, half_widths, active = split_trivial(
            self.component_labels, pairs
        )
        remaining = np.flatnonzero(active)
        counts: "dict[str, int]" = {}
        for position, name in enumerate(self.tier_names):
            if remaining.size == 0:
                counts[name] = 0
                continue
            engine = self.tier_engines[name]
            batch = np.column_stack((ps[remaining], qs[remaining]))
            final = position == len(self.tier_names) - 1
            if isinstance(engine, BoundedResistanceEngine):
                tier_values, tier_halves = engine.query_pairs_with_bounds(
                    batch
                )
                if final:
                    keep = np.ones(remaining.shape[0], dtype=bool)
                else:
                    keep = tier_halves <= self.tier_rel_tol * np.maximum(
                        np.abs(tier_values), _TINY
                    )
            else:
                # an exact-grade tier is authoritative for whatever
                # reaches it — nothing escalates past it
                tier_values = engine.query_pairs(batch)
                tier_halves = np.zeros(tier_values.shape[0])
                keep = np.ones(remaining.shape[0], dtype=bool)
            kept = remaining[keep]
            values[kept] = tier_values[keep]
            half_widths[kept] = tier_halves[keep]
            counts[name] = int(keep.sum())
            remaining = remaining[~keep]
        self.last_tier_counts = counts
        return values, half_widths
