"""Shared protocol and helpers for the bounded estimator tiers.

Every estimator in this package answers a pair batch together with a
per-pair **absolute half-width**: the caller is promised the exact-grade
answer lies within ``[value - half, value + half]`` (a certified interval
for the landmark projection, a ~99% confidence interval for the Monte
Carlo tiers).  ``query_pairs`` stays the plain protocol method —
estimators are drop-in engines — while routers and the adaptive wrapper
use :meth:`BoundedResistanceEngine.query_pairs_with_bounds` to decide
which answers are good enough for a requested tolerance.

Two structural facts are shared across tiers and resolved here once:

* trivial pairs — ``p == q`` answers 0 and cross-component pairs answer
  ``inf``, both with half-width 0 (they are exact);
* the cut bound — the effective conductance between distinct nodes is at
  most the weighted degree of either endpoint (all current must cross the
  singleton cut), so ``R(p, q) >= max(1/wdeg(p), 1/wdeg(q))``.  Clamping
  Monte-Carlo estimates to this floor keeps every connected answer
  strictly positive without biasing converged estimates.
"""

from __future__ import annotations

import abc

import numpy as np
from numpy.typing import ArrayLike

from repro.core.engine import ResistanceEngine, as_pair_columns
from repro.graphs.graph import Graph


class BoundedResistanceEngine(ResistanceEngine):
    """A :class:`ResistanceEngine` whose answers carry error bounds."""

    @abc.abstractmethod
    def query_pairs_with_bounds(
        self, pairs: ArrayLike
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(values, half_widths)`` for an ``(m, 2)`` array of node pairs.

        ``half_widths`` are absolute: the exact-grade answer for row ``i``
        lies in ``values[i] ± half_widths[i]`` (with the estimator's own
        confidence semantics).  Trivial rows (``p == q``, cross-component)
        report half-width 0.
        """

    def query_pairs(self, pairs: ArrayLike) -> np.ndarray:
        """Point estimates only (the plain engine protocol)."""
        values, _ = self.query_pairs_with_bounds(pairs)
        return values


def weighted_degrees(graph: Graph) -> np.ndarray:
    """Weighted degree of every node (sum of incident conductances)."""
    degrees = np.zeros(graph.num_nodes)
    np.add.at(degrees, graph.heads, graph.weights)
    np.add.at(degrees, graph.tails, graph.weights)
    return degrees


def resistance_floor(
    weighted_degree: np.ndarray, ps: np.ndarray, qs: np.ndarray
) -> np.ndarray:
    """Cut lower bound ``R(p, q) >= max(1/wdeg(p), 1/wdeg(q))`` per pair.

    Isolated endpoints (degree 0) yield ``inf`` — consistent with the
    cross-component answer the caller resolves structurally anyway.
    """
    with np.errstate(divide="ignore"):
        inv = np.where(weighted_degree > 0.0, 1.0 / weighted_degree, np.inf)
    return np.maximum(inv[ps], inv[qs])


def split_trivial(
    component_labels: np.ndarray, pairs: ArrayLike
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Normalise a batch and resolve its structural slices.

    Returns ``(ps, qs, values, half_widths, active)``: ``values`` carries
    0.0 on the diagonal and ``inf`` across components (half-width 0 for
    both), ``active`` marks the rows the estimator still has to answer.
    """
    ps, qs = as_pair_columns(pairs)
    values = np.zeros(ps.shape[0])
    half_widths = np.zeros(ps.shape[0])
    same_node = ps == qs
    cross = component_labels[ps] != component_labels[qs]
    values[cross] = np.inf
    active = ~(same_node | cross)
    return ps, qs, values, half_widths, active
