"""Landmark/index estimator — answer any pair from two ``k``-vectors.

The ``cholinv`` engine answers ``R(p, q) ≈ ‖z̃_p − z̃_q‖²`` by multiplying
two sparse ``Z̃`` columns; on fill-heavy graphs (social/power-law) each
column carries thousands of nonzeros and every query pays for them.  The
landmark engine spends one extra projection pass at build time so that a
query touches ``O(k)`` floats instead:

1. pick ``k`` landmark nodes (top weighted degree by default — hubs are
   where the fill is — or BFS farthest-point "spread" / seeded random);
2. QR-factor the landmark columns ``Z_L`` into an orthonormal basis ``A``
   and project **every** column: ``u_v = Aᵀ z̃_v`` (a ``k``-vector per
   node), with the residual norm ``r_v² = ‖z̃_v‖² − ‖u_v‖²`` tracked
   exactly;
3. answer ``R(p, q) ≈ ‖u_p − u_q‖² + r_p² + r_q²`` — exact whenever either
   endpoint is a landmark — inside a **certified interval**: the projection
   split gives ``‖u_p − u_q‖² + (r_p ∓ r_q)²`` and the landmark distance
   table gives resistance-metric triangle bounds
   ``max_l |R(p,l) − R(q,l)| ≤ R(p,q) ≤ min_l (R(p,l) + R(q,l))``
   (all pairwise ``‖z̃_a − z̃_b‖²`` values are effective resistances of the
   ground-augmented graph, hence a metric — valid across components too).

Error semantics are relative to the *cholinv-grade* answers the factor
defines: the interval brackets what the exact ``cholinv`` path would
return, which is the reference the serving stack escalates against.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
from numpy.typing import ArrayLike

from repro.core.effective_resistance import CholInvEffectiveResistance
from repro.core.engine import EngineConfig, build_engine, register_engine
from repro.estimators.base import (
    BoundedResistanceEngine,
    split_trivial,
    weighted_degrees,
)
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import require

_QUERY_CHUNK = 65536
_TINY = 1e-12


def _spread_landmarks(graph: Graph, count: int, start: int) -> np.ndarray:
    """BFS farthest-point landmark selection (deterministic)."""
    adjacency = graph.adjacency().tocsr()
    n = graph.num_nodes

    def bfs(source: int) -> np.ndarray:
        distance = np.full(n, n + 1, dtype=np.int64)
        distance[source] = 0
        frontier = np.asarray([source], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            neighbour_blocks = [
                adjacency.indices[adjacency.indptr[u]:adjacency.indptr[u + 1]]
                for u in frontier
            ]
            neighbours = np.unique(np.concatenate(neighbour_blocks)) if (
                neighbour_blocks
            ) else np.empty(0, dtype=np.int64)
            fresh = neighbours[distance[neighbours] > level]
            distance[fresh] = level
            frontier = fresh
        return distance

    nearest = bfs(start)
    chosen = [int(np.argmax(nearest))]
    while len(chosen) < count:
        np.minimum(nearest, bfs(chosen[-1]), out=nearest)
        chosen.append(int(np.argmax(nearest)))
    return np.asarray(sorted(set(chosen)), dtype=np.int64)


def select_landmarks(
    graph: Graph, count: int, strategy: str, seed: "int | None"
) -> np.ndarray:
    """Pick ``count`` distinct landmark node ids (sorted)."""
    n = graph.num_nodes
    count = min(count, n)
    if strategy == "degree":
        degrees = weighted_degrees(graph)
        top = np.argsort(-degrees, kind="stable")[:count]
        return np.sort(top.astype(np.int64))
    if strategy == "random":
        rng = ensure_rng(seed)
        return np.sort(rng.choice(n, size=count, replace=False).astype(np.int64))
    require(strategy == "spread", f"unknown landmark strategy {strategy!r}")
    start = int(np.argmax(weighted_degrees(graph)))
    return _spread_landmarks(graph, count, start)


@register_engine(
    "landmark",
    params=(
        "num_landmarks", "landmark_strategy", "seed",
        "epsilon", "drop_tol", "ordering", "mode",
        "small_column_threshold", "ground_value", "build_workers",
    ),
)
class LandmarkEffectiveResistance(BoundedResistanceEngine):
    """Landmark-projection tier over the Alg. 3 factor.

    Parameters
    ----------
    graph:
        Weighted undirected graph.
    num_landmarks:
        Index size ``k`` (clamped to ``n``); queries cost ``O(k)``.
    landmark_strategy:
        ``"degree"`` (default), ``"spread"`` or ``"random"``.
    seed:
        RNG seed (used by ``landmark_strategy="random"`` only).
    epsilon, drop_tol, ordering, mode, small_column_threshold,
    ground_value, build_workers:
        Forwarded to the internal ``cholinv`` build that produces the
        columns being projected (so a tuned exact tier and its landmark
        tier agree on the factor).
    """

    def __init__(
        self,
        graph: Graph,
        num_landmarks: int = 32,
        landmark_strategy: str = "degree",
        seed: "int | None" = None,
        epsilon: float = 1e-3,
        drop_tol: float = 1e-3,
        ordering: str = "amd",
        mode: str = "blocked",
        small_column_threshold: "float | None" = None,
        ground_value: "float | None" = None,
        build_workers: int = 1,
    ) -> None:
        base_config = EngineConfig(
            method="cholinv",
            epsilon=epsilon,
            drop_tol=drop_tol,
            ordering=ordering,
            mode=mode,
            small_column_threshold=small_column_threshold,
            ground_value=ground_value,
            build_workers=build_workers,
        )
        base = build_engine(graph, base_config)
        self._init_from_base(
            base, base_config, num_landmarks, landmark_strategy, seed,
            timer=base.timer,
        )

    @classmethod
    def from_base_engine(
        cls,
        base: "object",
        num_landmarks: int = 32,
        landmark_strategy: str = "degree",
        seed: "int | None" = None,
    ) -> "LandmarkEffectiveResistance":
        """Project an *already built* ``cholinv`` engine (no refactoring).

        This is how the serving layer derives its landmark tier from the
        exact engine it already owns — the expensive factorisation is
        shared, only the ``O(n·k)`` projection pass runs.
        """
        require(
            isinstance(base, CholInvEffectiveResistance),
            f"landmark projection needs a cholinv base engine, "
            f"got {type(base).__name__}",
        )
        assert isinstance(base, CholInvEffectiveResistance)
        base_config = (
            base.config
            if base.config is not None and base.config.method == "cholinv"
            else EngineConfig(
                method="cholinv",
                epsilon=base.epsilon,
                drop_tol=base.drop_tol,
                ordering=base.ordering,
                mode=base.mode,
                small_column_threshold=base.small_column_threshold,
                ground_value=base.requested_ground_value,
                build_workers=base.build_workers,
            )
        )
        engine = cls.__new__(cls)
        engine._init_from_base(
            base, base_config, num_landmarks, landmark_strategy, seed,
            timer=Timer(),
        )
        engine.config = EngineConfig.from_dict(
            dict(
                base_config.to_dict(),
                method="landmark",
                num_landmarks=num_landmarks,
                landmark_strategy=landmark_strategy,
                seed=seed,
            )
        )
        return engine

    # ------------------------------------------------------------------
    def _init_from_base(
        self,
        base: "object",
        base_config: EngineConfig,
        num_landmarks: int,
        landmark_strategy: str,
        seed: "int | None",
        timer: Timer,
    ) -> None:
        assert isinstance(base, CholInvEffectiveResistance)
        graph = base.graph
        self.graph = graph
        self.n = graph.num_nodes
        self.component_labels = base.component_labels
        self.timer = timer
        self.base_engine: "CholInvEffectiveResistance | None" = base
        self.base_config = base_config
        self.num_landmarks = num_landmarks
        self.landmark_strategy = landmark_strategy
        self.seed = seed
        self.ground_value = float(base.ground_value)
        with self.timer.section("landmark_projection"):
            landmarks = select_landmarks(
                graph, num_landmarks, landmark_strategy, seed
            )
            position = base._position
            z = base.z_tilde.tocsc()
            # node-indexed square norms nu_v = ||z_v||^2
            nu = np.asarray(base._column_sq_norms)[position]
            landmark_columns = z[:, position[landmarks]].toarray()
            basis, _ = np.linalg.qr(landmark_columns)
            projected = np.asarray(z.T @ basis)[position]  # node-indexed u_v
            resid_sq = np.maximum(
                nu - np.einsum("ij,ij->i", projected, projected), 0.0
            )
            # exact inner products z_v . z_l (landmark columns lie in the
            # basis span), hence exact embedding distances to landmarks
            cross = projected @ (basis.T @ landmark_columns)
            dist_sq = nu[:, None] + nu[landmarks][None, :] - 2.0 * cross
            np.maximum(dist_sq, 0.0, out=dist_sq)
        self._install_tables(
            projected, resid_sq, dist_sq, landmarks,
            weighted_degrees(graph),
        )

    def _install_tables(
        self,
        projected: np.ndarray,
        resid_sq: np.ndarray,
        dist_sq: np.ndarray,
        landmarks: np.ndarray,
        weighted_degree: np.ndarray,
    ) -> None:
        self.landmarks = np.asarray(landmarks, dtype=np.int64)
        self._u = np.asarray(projected, dtype=np.float64)
        self._resid_sq = np.asarray(resid_sq, dtype=np.float64)
        self._resid = np.sqrt(self._resid_sq)
        self._dist_sq = np.asarray(dist_sq, dtype=np.float64)
        self._weighted_degree = np.asarray(weighted_degree, dtype=np.float64)

    # ------------------------------------------------------------------
    @classmethod
    def from_state(
        cls,
        graph: Graph,
        config: EngineConfig,
        u: np.ndarray,
        resid_sq: np.ndarray,
        dist_sq: np.ndarray,
        landmarks: np.ndarray,
        component_labels: np.ndarray,
        ground_value: float,
    ) -> "LandmarkEffectiveResistance":
        """Rehydrate a saved landmark engine (projection tables only).

        The internal ``cholinv`` base engine is *not* persisted — the
        tables answer every query — so :attr:`base_engine` is ``None`` on
        the restored object; a service that needs the exact tier again
        rebuilds it from :attr:`base_config`.
        """
        engine = cls.__new__(cls)
        engine.graph = graph
        engine.n = graph.num_nodes
        engine.component_labels = np.asarray(component_labels, dtype=np.int64)
        engine.timer = Timer()
        engine.base_engine = None
        engine.num_landmarks = config.num_landmarks
        engine.landmark_strategy = config.landmark_strategy
        engine.seed = config.seed
        engine.base_config = EngineConfig(
            method="cholinv",
            epsilon=config.epsilon,
            drop_tol=config.drop_tol,
            ordering=config.ordering,
            mode=config.mode,
            small_column_threshold=config.small_column_threshold,
            ground_value=config.ground_value,
            build_workers=config.build_workers,
        )
        engine.ground_value = float(ground_value)
        engine._install_tables(
            u, resid_sq, dist_sq, landmarks, weighted_degrees(graph)
        )
        engine.config = config
        return engine

    def save(self, path: "str | Path") -> Path:
        """Serialise the projection tables to ``path`` (``.npz``)."""
        from repro.core.persistence import save_engine

        return save_engine(self, path)

    # ------------------------------------------------------------------
    def query_pairs_with_bounds(
        self, pairs: ArrayLike
    ) -> "tuple[np.ndarray, np.ndarray]":
        ps, qs, values, half_widths, active = split_trivial(
            self.component_labels, pairs
        )
        rows = np.flatnonzero(active)
        with self.timer.section("queries"):
            for start in range(0, rows.shape[0], _QUERY_CHUNK):
                chunk = rows[start:start + _QUERY_CHUNK]
                est, half = self._estimate(ps[chunk], qs[chunk])
                values[chunk] = est
                half_widths[chunk] = half
        return values, half_widths

    def _estimate(
        self, ps: np.ndarray, qs: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        du = self._u[ps] - self._u[qs]
        proj = np.einsum("ij,ij->i", du, du)
        rp, rq = self._resid[ps], self._resid[qs]
        estimate = proj + self._resid_sq[ps] + self._resid_sq[qs]
        lower = proj + (rp - rq) ** 2
        upper = proj + (rp + rq) ** 2
        # resistance-metric triangle bounds through every landmark
        dp, dq = self._dist_sq[ps], self._dist_sq[qs]
        # NOTE: no cut-bound floor here — the interval certifies the
        # cholinv-grade answer (the embedding distance), and the floor
        # bounds the *true* resistance, which the factor's own epsilon
        # error can undercut.  Mixing the two breaks containment.
        lower = np.maximum(lower, np.max(np.abs(dp - dq), axis=1))
        upper = np.minimum(upper, np.min(dp + dq, axis=1))
        upper = np.maximum(upper, lower)
        estimate = np.clip(estimate, lower, upper)
        # the estimate is generally off-centre in [lower, upper], so the
        # half-width must cover the farther endpoint — reporting the
        # midpoint width instead would shrink the certified interval on
        # one side and break containment
        return estimate, np.maximum(estimate - lower, upper - estimate)

    def relative_scores(self, pairs: ArrayLike) -> np.ndarray:
        """Per-pair ``half_width / estimate`` — the router's routing score."""
        values, half_widths = self.query_pairs_with_bounds(pairs)
        return half_widths / np.maximum(np.abs(values), _TINY)
