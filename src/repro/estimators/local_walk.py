"""Local random-walk estimator — no factorisation, per-pair cost only.

Uses the lazy-walk identity (``W = (I + D⁻¹A)/2``, weighted degrees)

.. math::

    2\\,R(s, t) \\;=\\; \\sum_{k \\ge 0} \\chi^\\top W^k D^{-1} \\chi,
    \\qquad \\chi = e_s - e_t,

whose ``k``-th term is estimated by walks started at *both* endpoints:
a walk from ``s`` contributes ``1/d_s`` whenever it sits on ``s`` and
``-1/d_t`` whenever it sits on ``t`` (and symmetrically from ``t``).
Averaging ``num_walks`` truncated walks per endpoint gives an unbiased
estimate of the truncated series; the reported half-width is a ~99%
normal confidence interval from the empirical walk variance (truncation
bias decays with the lazy walk's mixing and is absorbed by the router's
calibration, not the interval).

Every pair draws its walks from ``np.random.default_rng((seed, lo, hi))``
— a stateless per-pair stream keyed by the engine seed and the sorted
endpoints — so the estimator is bit-identical across runs, across batch
orderings, and between ``query(p, q)`` and ``query_pairs([[p, q]])``, and
symmetric in its arguments by construction.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.core.engine import register_engine
from repro.estimators.base import (
    BoundedResistanceEngine,
    resistance_floor,
    split_trivial,
)
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.utils.timing import Timer

_Z_99 = 2.576  # two-sided 99% normal quantile


@register_engine("local_walk", params=("num_walks", "walk_length", "seed"))
class LocalWalkEffectiveResistance(BoundedResistanceEngine):
    """Bidirectional lazy-walk Monte Carlo estimator.

    Parameters
    ----------
    graph:
        Weighted undirected graph.
    num_walks:
        Walks per endpoint per pair (variance shrinks as ``1/num_walks``).
    walk_length:
        Truncation length of each lazy walk (bias shrinks with mixing).
    seed:
        Base seed of the per-pair streams (``None`` behaves as 0 so the
        engine stays deterministic by default).
    """

    def __init__(
        self,
        graph: Graph,
        num_walks: int = 512,
        walk_length: int = 32,
        seed: "int | None" = None,
    ) -> None:
        self.graph = graph
        self.n = graph.num_nodes
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.seed = 0 if seed is None else int(seed)
        self.timer = Timer()
        labels, _ = connected_components(graph)
        self.component_labels = labels
        adjacency = graph.adjacency().tocsr()
        adjacency.sum_duplicates()
        self._indptr = adjacency.indptr.astype(np.int64)
        self._indices = adjacency.indices.astype(np.int64)
        # prefix sums of edge weights per CSR row: one global cumsum, so a
        # walk step is a single vectorised searchsorted over all walkers
        self._cumulative = np.cumsum(adjacency.data.astype(np.float64))
        row_start = self._indptr[:-1]
        self._row_base = np.where(
            row_start > 0, self._cumulative[row_start - 1], 0.0
        )
        row_end = self._indptr[1:]
        self._weighted_degree = np.where(
            row_end > row_start, self._cumulative[row_end - 1], 0.0
        ) - self._row_base

    # ------------------------------------------------------------------
    def _walk_sums(
        self, source: int, s: int, t: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-walk sums of ``1{X_k=s}/d_s - 1{X_k=t}/d_t``, walks from
        ``source``, including the ``k = 0`` term."""
        walks = self.num_walks
        inv_s = 1.0 / self._weighted_degree[s]
        inv_t = 1.0 / self._weighted_degree[t]
        current = np.full(walks, source, dtype=np.int64)
        sums = np.full(
            walks, inv_s if source == s else -inv_t, dtype=np.float64
        )
        for _ in range(self.walk_length):
            draw = rng.random(walks)
            moving = draw >= 0.5
            if moving.any():
                movers = current[moving]
                # rescale the top half of the uniform draw to pick the
                # target edge by weight inside each walker's CSR row
                edge_pick = 2.0 * (draw[moving] - 0.5)
                target = (
                    self._row_base[movers]
                    + edge_pick * self._weighted_degree[movers]
                )
                index = np.searchsorted(self._cumulative, target, side="right")
                np.minimum(index, self._indptr[movers + 1] - 1, out=index)
                np.maximum(index, self._indptr[movers], out=index)
                current[moving] = self._indices[index]
            sums += np.where(
                current == s, inv_s, np.where(current == t, -inv_t, 0.0)
            )
        return sums

    def _estimate_pair(self, p: int, q: int) -> "tuple[float, float]":
        lo, hi = (p, q) if p <= q else (q, p)
        rng = np.random.default_rng((self.seed, lo, hi))
        from_lo = self._walk_sums(lo, lo, hi, rng)
        from_hi = -self._walk_sums(hi, lo, hi, rng)
        estimate = 0.5 * (float(from_lo.mean()) + float(from_hi.mean()))
        walks = self.num_walks
        if walks < 2:
            return estimate, float("inf")
        variance = (
            float(from_lo.var(ddof=1)) + float(from_hi.var(ddof=1))
        ) / walks
        return estimate, 0.5 * _Z_99 * float(np.sqrt(variance))

    # ------------------------------------------------------------------
    def query_pairs_with_bounds(
        self, pairs: ArrayLike
    ) -> "tuple[np.ndarray, np.ndarray]":
        ps, qs, values, half_widths, active = split_trivial(
            self.component_labels, pairs
        )
        rows = np.flatnonzero(active)
        if rows.size == 0:
            return values, half_widths
        floor = resistance_floor(self._weighted_degree, ps[rows], qs[rows])
        with self.timer.section("walks"):
            # de-duplicate so repeated pairs cost one walk set and stay
            # bit-identical however the batch mixes them
            codes = (
                np.minimum(ps[rows], qs[rows]) * self.n
                + np.maximum(ps[rows], qs[rows])
            )
            unique_codes, inverse = np.unique(codes, return_inverse=True)
            unique_values = np.empty(unique_codes.shape[0])
            unique_halves = np.empty(unique_codes.shape[0])
            for i, code in enumerate(unique_codes):
                pair_lo, pair_hi = divmod(int(code), self.n)
                unique_values[i], unique_halves[i] = self._estimate_pair(
                    pair_lo, pair_hi
                )
        values[rows] = np.maximum(unique_values[inverse], floor)
        half_widths[rows] = unique_halves[inverse]
        return values, half_widths
