"""Weighted undirected graph substrate.

This package provides the graph data structure the whole library is built
on (:class:`~repro.graphs.graph.Graph`), conversion to the linear-algebra
objects of the paper (incidence matrix ``B``, weight matrix ``W``, Laplacian
``L_G = BᵀWB`` and its grounded SDD variant), connected components, file IO
and a family of synthetic generators that stand in for the paper's SNAP /
UFL / IBM benchmark downloads.
"""

from repro.graphs.components import connected_components, is_connected, largest_component
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    fe_mesh_2d,
    fe_mesh_3d,
    grid_2d,
    grid_3d,
    path_graph,
    random_geometric_graph,
    rmat_graph,
    star_graph,
    stochastic_block_model,
    watts_strogatz_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.io import read_edgelist, read_matrix_market, write_edgelist, write_matrix_market
from repro.graphs.laplacian import (
    grounded_laplacian,
    incidence_matrix,
    laplacian,
    laplacian_from_grounded,
    weight_matrix,
)

__all__ = [
    "Graph",
    "incidence_matrix",
    "weight_matrix",
    "laplacian",
    "grounded_laplacian",
    "laplacian_from_grounded",
    "connected_components",
    "is_connected",
    "largest_component",
    "read_edgelist",
    "write_edgelist",
    "read_matrix_market",
    "write_matrix_market",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_2d",
    "grid_3d",
    "fe_mesh_2d",
    "fe_mesh_3d",
    "barabasi_albert_graph",
    "stochastic_block_model",
    "watts_strogatz_graph",
    "rmat_graph",
    "random_geometric_graph",
]
