"""Connected components of :class:`~repro.graphs.graph.Graph` objects.

Grounding (Section II-A of the paper) needs one grounded node per connected
component, and effective resistance between different components is infinite;
both call sites use the labels computed here.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components as _cc

from repro.graphs.graph import Graph


def connected_components(graph: Graph) -> "tuple[np.ndarray, int]":
    """Label nodes by connected component.

    Returns
    -------
    (labels, count):
        ``labels[v]`` is the component index of node ``v`` (0-based) and
        ``count`` the number of components.
    """
    if graph.num_edges == 0:
        return np.arange(graph.num_nodes), graph.num_nodes
    n = graph.num_nodes
    adj = sp.coo_matrix(
        (np.ones(graph.num_edges), (graph.heads, graph.tails)), shape=(n, n)
    )
    count, labels = _cc(adj, directed=False)
    return labels.astype(np.int64), int(count)


def is_connected(graph: Graph) -> bool:
    """True when the graph has exactly one connected component."""
    _, count = connected_components(graph)
    return count == 1


def largest_component(graph: Graph) -> "tuple[Graph, np.ndarray]":
    """Induced subgraph on the largest connected component.

    Returns the subgraph and the original node ids of its vertices.
    """
    labels, count = connected_components(graph)
    if count == 1:
        return graph, np.arange(graph.num_nodes)
    sizes = np.bincount(labels, minlength=count)
    keep = np.flatnonzero(labels == int(np.argmax(sizes)))
    return graph.subgraph(keep)
