"""Synthetic graph generators standing in for the paper's benchmark downloads.

Table I of the paper evaluates on three families of graphs:

* **social networks** (com-DBLP, com-Amazon, com-Youtube, coAuthor-*) —
  heavy-tailed degree distributions; we substitute Barabási–Albert,
  Watts–Strogatz and RMAT (recursive-matrix / Kronecker-style) generators;
* **finite-element meshes** (fe_tooth, fe_rotor, NACA0015) — bounded-degree,
  locally planar structure; we substitute triangulated 2-D and tetrahedral-
  style 3-D meshes with randomised positive weights;
* **power grids / circuits** (ibmpg5/6, thupg, G2/G3 circuit) — mesh-like
  grids; :func:`grid_2d` / :func:`grid_3d` cover them here, and
  :mod:`repro.powergrid.generators` builds full electrical models.

All generators return :class:`~repro.graphs.graph.Graph` with strictly
positive weights and never contain self loops.  All are deterministic given a
seed (see :mod:`repro.utils.rng`).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


# ----------------------------------------------------------------------
# Deterministic reference topologies (used heavily by the test-suite since
# their effective resistances have closed forms).
# ----------------------------------------------------------------------
def path_graph(n: int, weight: float = 1.0) -> Graph:
    """Path ``0 − 1 − ... − (n-1)``; ``R(i, j) = |i − j| / weight``."""
    require(n >= 1, "path needs at least one node")
    idx = np.arange(n - 1)
    return Graph(n, idx, idx + 1, np.full(n - 1, float(weight)))


def cycle_graph(n: int, weight: float = 1.0) -> Graph:
    """Cycle on ``n`` nodes; ``R(i, j) = d (n − d) / (n · weight)`` for hop
    distance ``d``."""
    require(n >= 3, "cycle needs at least three nodes")
    idx = np.arange(n)
    return Graph(n, idx, (idx + 1) % n, np.full(n, float(weight)))


def star_graph(n: int, weight: float = 1.0) -> Graph:
    """Star with centre 0 and ``n-1`` leaves; ``R(0, leaf) = 1/weight`` and
    ``R(leaf, leaf') = 2/weight``."""
    require(n >= 2, "star needs at least two nodes")
    leaves = np.arange(1, n)
    return Graph(n, np.zeros(n - 1, dtype=np.int64), leaves, np.full(n - 1, float(weight)))


def complete_graph(n: int, weight: float = 1.0) -> Graph:
    """Complete graph; ``R(p, q) = 2 / (n · weight)`` for every pair."""
    require(n >= 2, "complete graph needs at least two nodes")
    heads, tails = np.triu_indices(n, k=1)
    return Graph(n, heads.astype(np.int64), tails.astype(np.int64), np.full(heads.size, float(weight)))


# ----------------------------------------------------------------------
# Mesh-like graphs (power-grid / circuit proxies)
# ----------------------------------------------------------------------
def grid_2d(
    rows: int,
    cols: int,
    weight: float = 1.0,
    jitter: float = 0.0,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Rectangular ``rows × cols`` grid; node ``(r, c)`` has index ``r*cols+c``.

    ``jitter`` > 0 multiplies each weight by a uniform factor in
    ``[1/(1+jitter), 1+jitter]``, mimicking extracted wire-resistance spread.
    """
    require(rows >= 1 and cols >= 1, "grid dimensions must be positive")
    rng = ensure_rng(seed)
    heads, tails = [], []
    node = lambda r, c: r * cols + c  # noqa: E731 - tiny local helper
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                heads.append(node(r, c))
                tails.append(node(r, c + 1))
            if r + 1 < rows:
                heads.append(node(r, c))
                tails.append(node(r + 1, c))
    m = len(heads)
    weights = np.full(m, float(weight))
    if jitter > 0:
        factors = rng.uniform(1.0 / (1.0 + jitter), 1.0 + jitter, size=m)
        weights = weights * factors
    return Graph(rows * cols, np.asarray(heads), np.asarray(tails), weights)


def grid_3d(
    nx: int,
    ny: int,
    nz: int,
    weight: float = 1.0,
    jitter: float = 0.0,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """3-D grid; node ``(x, y, z)`` has index ``(z*ny + y)*nx + x``."""
    require(nx >= 1 and ny >= 1 and nz >= 1, "grid dimensions must be positive")
    rng = ensure_rng(seed)
    heads, tails = [], []
    node = lambda x, y, z: (z * ny + y) * nx + x  # noqa: E731
    for z in range(nz):
        for y in range(ny):
            for x in range(nx):
                if x + 1 < nx:
                    heads.append(node(x, y, z))
                    tails.append(node(x + 1, y, z))
                if y + 1 < ny:
                    heads.append(node(x, y, z))
                    tails.append(node(x, y + 1, z))
                if z + 1 < nz:
                    heads.append(node(x, y, z))
                    tails.append(node(x, y, z + 1))
    m = len(heads)
    weights = np.full(m, float(weight))
    if jitter > 0:
        weights = weights * rng.uniform(1.0 / (1.0 + jitter), 1.0 + jitter, size=m)
    return Graph(nx * ny * nz, np.asarray(heads), np.asarray(tails), weights)


# ----------------------------------------------------------------------
# Finite-element-style meshes (fe_tooth / fe_rotor / NACA0015 proxies)
# ----------------------------------------------------------------------
def fe_mesh_2d(
    rows: int,
    cols: int,
    weight_low: float = 0.5,
    weight_high: float = 2.0,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Triangulated 2-D mesh: grid edges plus one diagonal per cell.

    The diagonal orientation is chosen pseudo-randomly per cell, giving an
    unstructured-looking triangulation like FE discretisations of irregular
    domains.  Weights are log-uniform in ``[weight_low, weight_high]``.
    """
    require(rows >= 2 and cols >= 2, "mesh needs at least a 2x2 grid")
    rng = ensure_rng(seed)
    base = grid_2d(rows, cols)
    heads = [base.heads]
    tails = [base.tails]
    node = lambda r, c: r * cols + c  # noqa: E731
    diag_heads, diag_tails = [], []
    flips = rng.random((rows - 1, cols - 1)) < 0.5
    for r in range(rows - 1):
        for c in range(cols - 1):
            if flips[r, c]:
                diag_heads.append(node(r, c))
                diag_tails.append(node(r + 1, c + 1))
            else:
                diag_heads.append(node(r, c + 1))
                diag_tails.append(node(r + 1, c))
    heads.append(np.asarray(diag_heads, dtype=np.int64))
    tails.append(np.asarray(diag_tails, dtype=np.int64))
    all_heads = np.concatenate(heads)
    all_tails = np.concatenate(tails)
    log_low, log_high = np.log(weight_low), np.log(weight_high)
    weights = np.exp(rng.uniform(log_low, log_high, size=all_heads.size))
    return Graph(rows * cols, all_heads, all_tails, weights)


def fe_mesh_3d(
    nx: int,
    ny: int,
    nz: int,
    weight_low: float = 0.5,
    weight_high: float = 2.0,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """3-D FE-style mesh: 3-D grid plus body diagonals of each cell."""
    require(nx >= 2 and ny >= 2 and nz >= 2, "mesh needs at least 2x2x2")
    rng = ensure_rng(seed)
    base = grid_3d(nx, ny, nz)
    node = lambda x, y, z: (z * ny + y) * nx + x  # noqa: E731
    diag_heads, diag_tails = [], []
    for z in range(nz - 1):
        for y in range(ny - 1):
            for x in range(nx - 1):
                diag_heads.append(node(x, y, z))
                diag_tails.append(node(x + 1, y + 1, z + 1))
    all_heads = np.concatenate([base.heads, np.asarray(diag_heads, dtype=np.int64)])
    all_tails = np.concatenate([base.tails, np.asarray(diag_tails, dtype=np.int64)])
    log_low, log_high = np.log(weight_low), np.log(weight_high)
    weights = np.exp(rng.uniform(log_low, log_high, size=all_heads.size))
    return Graph(nx * ny * nz, all_heads, all_tails, weights)


# ----------------------------------------------------------------------
# Social-network proxies (com-DBLP / com-Amazon / com-Youtube substitutes)
# ----------------------------------------------------------------------
def barabasi_albert_graph(
    n: int,
    attachments: int = 3,
    weight_low: float = 1.0,
    weight_high: float = 1.0,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Preferential-attachment graph with ``attachments`` edges per new node.

    Implemented directly (repeated-endpoint sampling trick) so it scales to
    hundreds of thousands of nodes without networkx overhead.
    """
    require(n > attachments >= 1, "need n > attachments >= 1")
    rng = ensure_rng(seed)
    targets = list(range(attachments))
    repeated: list[int] = []
    heads = np.empty((n - attachments) * attachments, dtype=np.int64)
    tails = np.empty_like(heads)
    pos = 0
    for source in range(attachments, n):
        for t in targets:
            heads[pos] = source
            tails[pos] = t
            pos += 1
        repeated.extend(targets)
        repeated.extend([source] * attachments)
        # sample next targets proportional to degree, without replacement
        chosen: set[int] = set()
        while len(chosen) < attachments:
            chosen.add(repeated[int(rng.integers(len(repeated)))])
        targets = list(chosen)
    if weight_low == weight_high:
        weights = np.full(heads.size, float(weight_low))
    else:
        weights = np.exp(rng.uniform(np.log(weight_low), np.log(weight_high), size=heads.size))
    return Graph(n, heads, tails, weights).coalesce()


def watts_strogatz_graph(
    n: int,
    neighbours: int = 4,
    rewire_prob: float = 0.1,
    weight_low: float = 1.0,
    weight_high: float = 1.0,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Small-world ring lattice with random rewiring (connected variant).

    Each node connects to its ``neighbours`` nearest ring neighbours; each
    edge is re-targeted with probability ``rewire_prob``.  The underlying
    ring is kept intact so the graph stays connected.
    """
    require(neighbours % 2 == 0 and neighbours >= 2, "neighbours must be even and >= 2")
    require(n > neighbours, "need n > neighbours")
    rng = ensure_rng(seed)
    heads, tails = [], []
    half = neighbours // 2
    for dist in range(1, half + 1):
        src = np.arange(n)
        dst = (src + dist) % n
        if dist == 1:
            heads.append(src)
            tails.append(dst)
            continue
        rewire = rng.random(n) < rewire_prob
        new_dst = dst.copy()
        random_targets = rng.integers(0, n, size=int(rewire.sum()))
        new_dst[rewire] = random_targets
        bad = new_dst == src
        new_dst[bad] = (src[bad] + dist) % n
        heads.append(src)
        tails.append(new_dst)
    all_heads = np.concatenate(heads)
    all_tails = np.concatenate(tails)
    if weight_low == weight_high:
        weights = np.full(all_heads.size, float(weight_low))
    else:
        weights = np.exp(rng.uniform(np.log(weight_low), np.log(weight_high), size=all_heads.size))
    return Graph(n, all_heads, all_tails, weights).coalesce()


def stochastic_block_model(
    block_sizes: "list[int] | tuple[int, ...] | np.ndarray",
    p_in: float = 0.1,
    p_out: float = 0.01,
    weight_low: float = 1.0,
    weight_high: float = 1.0,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Stochastic block model: dense communities, sparse cross-block edges.

    Each unordered pair inside block ``b`` is an edge with probability
    ``p_in``; each pair spanning two blocks with probability ``p_out``.
    The resulting community structure (few, heavy cross-block edges) is
    the adversarial case for component sharding and the natural one for
    separator sharding — the cross-block pairs are exactly the ones a
    vertex separator has to carry.

    Edge sampling is vectorised over all ``O(n^2)`` pairs, so this is a
    test/bench-scale generator (tens of thousands of nodes, not millions).
    Connectivity is *not* guaranteed; take
    :func:`repro.graphs.components.largest_component` when a single
    component is needed.
    """
    sizes = np.asarray(block_sizes, dtype=np.int64)
    require(sizes.size >= 1 and bool((sizes >= 1).all()), "block sizes must be positive")
    require(0.0 <= p_out <= p_in <= 1.0, "need 0 <= p_out <= p_in <= 1")
    rng = ensure_rng(seed)
    n = int(sizes.sum())
    block_of = np.repeat(np.arange(sizes.size), sizes)
    rows, cols = np.triu_indices(n, k=1)
    prob = np.where(block_of[rows] == block_of[cols], p_in, p_out)
    keep = rng.random(rows.size) < prob
    heads, tails = rows[keep].astype(np.int64), cols[keep].astype(np.int64)
    if weight_low == weight_high:
        weights = np.full(heads.size, float(weight_low))
    else:
        weights = np.exp(rng.uniform(np.log(weight_low), np.log(weight_high), size=heads.size))
    return Graph(n, heads, tails, weights).coalesce()


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    probabilities: "tuple[float, float, float, float]" = (0.57, 0.19, 0.19, 0.05),
    weight_low: float = 1.0,
    weight_high: float = 1.0,
    connect: bool = True,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """RMAT / Kronecker-style power-law graph on ``2**scale`` nodes.

    This is the classic Graph500 generator: each edge picks one of the four
    adjacency-matrix quadrants recursively with probabilities ``(a, b, c, d)``.
    ``connect=True`` adds a random Hamiltonian-style path so the graph is
    connected (effective resistance is only finite within a component).
    """
    a, b, c, d = probabilities
    require(abs(a + b + c + d - 1.0) < 1e-9, "probabilities must sum to 1")
    rng = ensure_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        # quadrant layout: [a b; c d] — b and d move right, c and d move down
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        go_down = r >= a + b
        rows = rows * 2 + go_down.astype(np.int64)
        cols = cols * 2 + go_right.astype(np.int64)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    if connect:
        perm = rng.permutation(n)
        rows = np.concatenate([rows, perm[:-1]])
        cols = np.concatenate([cols, perm[1:]])
    if weight_low == weight_high:
        weights = np.full(rows.size, float(weight_low))
    else:
        weights = np.exp(rng.uniform(np.log(weight_low), np.log(weight_high), size=rows.size))
    return Graph(n, rows, cols, weights).coalesce()


def random_geometric_graph(
    n: int,
    radius: float,
    weight_by_distance: bool = True,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Random geometric graph in the unit square (grid-bucketed, O(n) cells).

    Nodes are uniform points; an edge connects pairs closer than ``radius``;
    with ``weight_by_distance`` the conductance is ``1/distance`` which gives
    the natural electrical interpretation of shorter wires conducting better.
    """
    require(0 < radius < 1, "radius must lie in (0, 1)")
    rng = ensure_rng(seed)
    points = rng.random((n, 2))
    cell = np.floor(points / radius).astype(np.int64)
    ncell = int(np.ceil(1.0 / radius))
    buckets: dict[tuple[int, int], list[int]] = {}
    for i, (cx, cy) in enumerate(cell):
        buckets.setdefault((int(cx), int(cy)), []).append(i)
    heads, tails, dists = [], [], []
    for (cx, cy), members in buckets.items():
        neighbour_cells = [
            (cx + dx, cy + dy)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            if 0 <= cx + dx < ncell and 0 <= cy + dy < ncell
        ]
        candidates = [j for nc in neighbour_cells for j in buckets.get(nc, [])]
        cand = np.asarray(candidates, dtype=np.int64)
        for i in members:
            close = cand[cand > i]
            if close.size == 0:
                continue
            d = np.linalg.norm(points[close] - points[i], axis=1)
            hit = close[d < radius]
            heads.extend([i] * hit.size)
            tails.extend(hit.tolist())
            dists.extend(d[d < radius].tolist())
    if weight_by_distance:
        weights = 1.0 / np.maximum(np.asarray(dists), 1e-6)
    else:
        weights = np.ones(len(heads))
    return Graph(n, np.asarray(heads, dtype=np.int64), np.asarray(tails, dtype=np.int64), weights)
