"""Core weighted undirected graph container.

The paper works with ``G = (V, E, w)`` — a weighted undirected graph with a
positive weight function.  :class:`Graph` stores the edge list in three flat
numpy arrays (``heads``, ``tails``, ``weights``) which maps directly onto the
incidence-matrix formulation of Section II-A and keeps every downstream
operation vectorised.

Design notes
------------
* Nodes are the integers ``0 .. n-1``.  Named nodes (e.g. power-grid node
  names like ``n1_20706300_9521100``) are handled one level up by
  :mod:`repro.powergrid.netlist`, which keeps a name ↔ index mapping.
* Parallel edges are allowed at construction and merged on demand by
  :meth:`Graph.coalesce` (their conductances add, exactly like parallel
  resistors).
* Self loops are rejected: they contribute nothing to a Laplacian and are
  meaningless for effective resistance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import require


@dataclass(frozen=True)
class Graph:
    """A weighted undirected graph stored as flat edge arrays.

    Parameters
    ----------
    num_nodes:
        Number of vertices ``n``; nodes are ``0 .. n-1``.
    heads, tails:
        Integer arrays of shape ``(m,)`` with the endpoints of each edge.
    weights:
        Positive float array of shape ``(m,)``; ``weights[e]`` is ``w(e)``.
        For electrical networks the weight is a *conductance* (1/resistance).
    """

    num_nodes: int
    heads: np.ndarray
    tails: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        heads = np.asarray(self.heads, dtype=np.int64)
        tails = np.asarray(self.tails, dtype=np.int64)
        weights = np.asarray(self.weights, dtype=np.float64)
        object.__setattr__(self, "heads", heads)
        object.__setattr__(self, "tails", tails)
        object.__setattr__(self, "weights", weights)
        require(self.num_nodes >= 1, "graph needs at least one node")
        require(
            heads.shape == tails.shape == weights.shape,
            "heads, tails and weights must have identical shapes",
        )
        if heads.size:
            require(int(heads.min()) >= 0 and int(tails.min()) >= 0, "negative node id")
            require(
                int(max(heads.max(), tails.max())) < self.num_nodes,
                "edge endpoint out of range",
            )
            require(not np.any(heads == tails), "self loops are not allowed")
            require(bool(np.all(weights > 0)), "edge weights must be strictly positive")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: "np.ndarray | list[tuple[int, int]] | list[tuple[int, int, float]]",
        weights: "np.ndarray | None" = None,
    ) -> "Graph":
        """Build a graph from an edge list.

        ``edges`` may be ``(u, v)`` pairs with a separate ``weights`` array,
        or ``(u, v, w)`` triples.  Unweighted edges default to weight 1.
        """
        arr = np.asarray(edges, dtype=np.float64)
        if arr.size == 0:
            empty = np.empty(0)
            return cls(num_nodes, empty.astype(np.int64), empty.astype(np.int64), empty)
        if arr.ndim != 2 or arr.shape[1] not in (2, 3):
            raise ValueError("edges must be (u, v) pairs or (u, v, w) triples")
        heads = arr[:, 0].astype(np.int64)
        tails = arr[:, 1].astype(np.int64)
        if arr.shape[1] == 3:
            require(weights is None, "pass weights either inline or separately, not both")
            w = arr[:, 2]
        elif weights is not None:
            w = np.asarray(weights, dtype=np.float64)
        else:
            w = np.ones(heads.shape[0])
        return cls(num_nodes, heads, tails, w)

    @classmethod
    def from_sparse_adjacency(cls, adjacency: sp.spmatrix) -> "Graph":
        """Build a graph from a symmetric sparse adjacency matrix.

        Only the strictly-upper triangle is read so each undirected edge is
        taken once; the diagonal is ignored.
        """
        coo = sp.triu(sp.coo_matrix(adjacency), k=1).tocoo()
        return cls(adjacency.shape[0], coo.row.astype(np.int64), coo.col.astype(np.int64), coo.data)

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Convert a ``networkx`` graph (nodes relabelled to 0..n-1)."""
        import networkx as nx

        relabelled = nx.convert_node_labels_to_integers(nx_graph)
        n = relabelled.number_of_nodes()
        heads, tails, weights = [], [], []
        for u, v, data in relabelled.edges(data=True):
            if u == v:
                continue
            heads.append(u)
            tails.append(v)
            weights.append(float(data.get("weight", 1.0)))
        return cls(
            n,
            np.asarray(heads, dtype=np.int64),
            np.asarray(tails, dtype=np.int64),
            np.asarray(weights, dtype=np.float64),
        )

    @classmethod
    def disjoint_union(cls, graphs) -> "Graph":
        """Concatenate graphs into one with ``k`` (or more) components.

        Node ids of each input are offset by the node counts of the
        graphs before it, so the result's components are exactly the
        inputs' components side by side — the standard way to build
        multi-component serving/sharding test beds.
        """
        graphs = list(graphs)
        require(len(graphs) >= 1, "disjoint_union needs at least one graph")
        offsets = np.concatenate(
            [[0], np.cumsum([g.num_nodes for g in graphs])]
        )
        heads = np.concatenate(
            [g.heads + offsets[i] for i, g in enumerate(graphs)]
        )
        tails = np.concatenate(
            [g.tails + offsets[i] for i, g in enumerate(graphs)]
        )
        weights = np.concatenate([g.weights for g in graphs])
        return cls(int(offsets[-1]), heads, tails, weights)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of (possibly parallel) edges ``m``."""
        return int(self.heads.shape[0])

    def edge_array(self) -> np.ndarray:
        """Return edges as an ``(m, 2)`` int array of ``(head, tail)`` rows."""
        return np.column_stack([self.heads, self.tails])

    def degrees(self) -> np.ndarray:
        """Weighted degree (total incident conductance) of every node."""
        deg = np.zeros(self.num_nodes)
        np.add.at(deg, self.heads, self.weights)
        np.add.at(deg, self.tails, self.weights)
        return deg

    def adjacency(self) -> sp.csr_matrix:
        """Symmetric weighted adjacency matrix in CSR form."""
        m = self.num_edges
        rows = np.concatenate([self.heads, self.tails])
        cols = np.concatenate([self.tails, self.heads])
        data = np.concatenate([self.weights, self.weights])
        adj = sp.coo_matrix((data, (rows, cols)), shape=(self.num_nodes, self.num_nodes))
        del m
        return adj.tocsr()

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` with ``weight`` edge attributes."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self.num_nodes))
        for u, v, w in zip(self.heads, self.tails, self.weights):
            if nx_graph.has_edge(int(u), int(v)):
                nx_graph[int(u)][int(v)]["weight"] += float(w)
            else:
                nx_graph.add_edge(int(u), int(v), weight=float(w))
        return nx_graph

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def coalesce(self) -> "Graph":
        """Merge parallel edges by summing weights (parallel conductances add).

        Edges are canonicalised to ``head < tail`` and sorted, so the result
        is a unique normal form used by equality-sensitive code paths
        (e.g. sparsification keeps at most one edge per node pair).
        """
        if self.num_edges == 0:
            return self
        lo = np.minimum(self.heads, self.tails)
        hi = np.maximum(self.heads, self.tails)
        key = lo * np.int64(self.num_nodes) + hi
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        unique_key, inverse = np.unique(key_sorted, return_inverse=True)
        summed = np.zeros(unique_key.shape[0])
        np.add.at(summed, inverse, self.weights[order])
        new_lo = (unique_key // self.num_nodes).astype(np.int64)
        new_hi = (unique_key % self.num_nodes).astype(np.int64)
        return Graph(self.num_nodes, new_lo, new_hi, summed)

    def subgraph(self, nodes: np.ndarray) -> "tuple[Graph, np.ndarray]":
        """Induced subgraph on ``nodes``.

        Returns the subgraph (nodes renumbered ``0..len(nodes)-1`` in the
        order given) and the original node ids so callers can map back.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        lookup = -np.ones(self.num_nodes, dtype=np.int64)
        lookup[nodes] = np.arange(nodes.shape[0])
        mask = (lookup[self.heads] >= 0) & (lookup[self.tails] >= 0)
        sub = Graph(
            int(nodes.shape[0]),
            lookup[self.heads[mask]],
            lookup[self.tails[mask]],
            self.weights[mask],
        )
        return sub, nodes

    def with_weights(self, weights: np.ndarray) -> "Graph":
        """Copy of the graph with the same topology but new edge weights."""
        return Graph(self.num_nodes, self.heads, self.tails, weights)

    def reverse_resistances(self) -> np.ndarray:
        """Edge resistances ``1 / w(e)`` (weights are conductances)."""
        return 1.0 / self.weights

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(self.weights.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
