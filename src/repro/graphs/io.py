"""Graph file IO: whitespace edge lists and MatrixMarket Laplacian/adjacency.

The paper's test cases come from SNAP (edge lists) and the SuiteSparse /
UF collection (MatrixMarket).  These readers let users run the library on
the genuine files when they have them; the test-suite exercises round-trips
through temporary files.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.io
import scipy.sparse as sp

from repro.graphs.graph import Graph


def _declared_node_count(comment: str) -> "int | None":
    """Extract a node count from a ``#`` comment line, if one is declared.

    Accepts both this library's header (``# nodes 10 edges 2``) and the
    SNAP convention (``# Nodes: 317080 Edges: 1049866``).  Malformed
    headers are ignored rather than raised on — comments are free text.
    """
    tokens = comment.split()
    for token, value in zip(tokens, tokens[1:]):
        if token.lower().rstrip(":") == "nodes":
            try:
                return int(value)
            except ValueError:
                return None
    return None


def write_edgelist(graph: Graph, path: "str | Path", write_weights: bool = True) -> None:
    """Write ``u v [w]`` lines, one edge per line.

    A ``# nodes <n> edges <m>`` header records the exact node count so
    :func:`read_edgelist` round-trips graphs with trailing isolated nodes
    (which no edge line can witness).
    """
    path = Path(path)
    with path.open("w") as handle:
        handle.write(f"# nodes {graph.num_nodes} edges {graph.num_edges}\n")
        for u, v, w in zip(graph.heads, graph.tails, graph.weights):
            if write_weights:
                handle.write(f"{int(u)} {int(v)} {float(w):.17g}\n")
            else:
                handle.write(f"{int(u)} {int(v)}\n")


def read_edgelist(path: "str | Path", num_nodes: "int | None" = None) -> Graph:
    """Read a SNAP-style edge list (``#`` comments, 2 or 3 columns).

    The node count comes from, in order of precedence: the ``num_nodes``
    argument, a ``# nodes <n>`` / ``# Nodes: <n>`` header, or inference
    from the ids present.  With a declared count, in-range ids are kept
    verbatim (so isolated nodes — including trailing ones no edge
    witnesses — survive the round trip through :func:`write_edgelist`);
    without one, ids are compacted to ``0..n-1`` preserving numeric order
    (SNAP ids are arbitrary).  Self loops are dropped (SNAP files contain
    them occasionally and they are meaningless for effective resistance).
    """
    path = Path(path)
    heads, tails, weights = [], [], []
    declared_nodes = num_nodes
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if declared_nodes is None:
                    declared_nodes = _declared_node_count(line)
                continue
            parts = line.split()
            u, v = int(parts[0]), int(parts[1])
            if u == v:
                continue
            heads.append(u)
            tails.append(v)
            weights.append(float(parts[2]) if len(parts) > 2 else 1.0)
    heads_arr = np.asarray(heads, dtype=np.int64)
    tails_arr = np.asarray(tails, dtype=np.int64)
    ids = np.unique(np.concatenate([heads_arr, tails_arr])) if heads_arr.size else np.empty(0, np.int64)
    if declared_nodes is not None and (
        ids.size == 0 or (ids.min() >= 0 and ids.max() < declared_nodes)
    ):
        # the caller (or header) declared the node count and every id fits:
        # keep ids verbatim — non-contiguous ids like (0, 5) name isolated
        # nodes in between, they must not be compacted to (0, 1)
        n = declared_nodes
        new_heads, new_tails = heads_arr, tails_arr
    else:
        lookup = {int(old): new for new, old in enumerate(ids)}
        new_heads = np.asarray([lookup[int(u)] for u in heads_arr], dtype=np.int64)
        new_tails = np.asarray([lookup[int(v)] for v in tails_arr], dtype=np.int64)
        n = int(ids.size) if declared_nodes is None else max(int(ids.size), declared_nodes)
    return Graph(n, new_heads, new_tails, np.asarray(weights))


def write_matrix_market(graph: Graph, path: "str | Path") -> None:
    """Write the symmetric weighted adjacency matrix in MatrixMarket form."""
    scipy.io.mmwrite(str(path), sp.coo_matrix(graph.adjacency()), symmetry="symmetric")


def read_matrix_market(path: "str | Path") -> Graph:
    """Read a MatrixMarket file as a graph.

    Accepts either an adjacency matrix (nonnegative off-diagonals) or a
    Laplacian/SDD matrix (nonpositive off-diagonals, as in UF circuit
    matrices): off-diagonal magnitudes become edge weights either way.
    """
    matrix = scipy.io.mmread(str(path)).tocoo()
    off = matrix.row != matrix.col
    rows, cols, data = matrix.row[off], matrix.col[off], np.abs(matrix.data[off])
    keep = rows < cols
    mirrored = sp.coo_matrix(
        (data[keep], (rows[keep], cols[keep])), shape=matrix.shape
    ).tocoo()
    graph = Graph(matrix.shape[0], mirrored.row.astype(np.int64), mirrored.col.astype(np.int64), mirrored.data)
    return graph.coalesce()
