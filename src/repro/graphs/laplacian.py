"""Laplacian, incidence and grounding machinery (paper Section II-A).

The paper defines, for ``G = (V, E, w)`` with ``n = |V|`` and ``m = |E|``:

* the signed incidence matrix ``B ∈ R^{m×n}`` (Eq. 1),
* the diagonal weight matrix ``W`` with ``W(e,e) = w(e)``,
* the Laplacian ``L_G = BᵀWB`` (Eq. 2),

and handles the singularity of ``L_G`` by *grounding*: a small positive value
is added to the diagonal of one node per connected component, producing a
non-singular symmetric diagonally dominant (SDD) M-matrix.  As shown in the
library's documentation (and verified by tests), effective resistances
computed from the grounded matrix are *exact* for within-component queries:
for any ``b ⟂ 1`` the grounded solve differs from the pseudo-inverse solve by
a multiple of the all-ones vector, which ``bᵀx`` annihilates.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.utils.validation import check_positive


def incidence_matrix(graph: Graph) -> sp.csr_matrix:
    """Signed edge-node incidence matrix ``B`` of Eq. (1).

    Row ``e`` has ``+1`` at the head of edge ``e`` and ``-1`` at its tail.
    """
    m = graph.num_edges
    rows = np.repeat(np.arange(m), 2)
    cols = np.column_stack([graph.heads, graph.tails]).ravel()
    data = np.tile(np.array([1.0, -1.0]), m)
    return sp.coo_matrix((data, (rows, cols)), shape=(m, graph.num_nodes)).tocsr()


def weight_matrix(graph: Graph) -> sp.dia_matrix:
    """Diagonal edge-weight matrix ``W`` with ``W(e,e) = w(e)``."""
    return sp.diags(graph.weights)


def laplacian(graph: Graph) -> sp.csc_matrix:
    """Graph Laplacian ``L_G = BᵀWB`` (Eq. 2), assembled directly.

    Direct assembly by scatter-add is equivalent to the triple product but
    avoids materialising ``B``; a test cross-checks both constructions.
    """
    n = graph.num_nodes
    rows = np.concatenate([graph.heads, graph.tails, graph.heads, graph.tails])
    cols = np.concatenate([graph.tails, graph.heads, graph.heads, graph.tails])
    data = np.concatenate([-graph.weights, -graph.weights, graph.weights, graph.weights])
    lap = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsc()
    lap.sum_duplicates()
    return lap


def grounded_laplacian(
    graph: Graph,
    ground_value: float = 1.0,
    ground_nodes: "np.ndarray | None" = None,
) -> "tuple[sp.csc_matrix, np.ndarray]":
    """Non-singular SDD matrix from ``L_G`` by grounding one node per component.

    Parameters
    ----------
    graph:
        The weighted graph.
    ground_value:
        Positive conductance added to the diagonal of each grounded node.
        Any positive value gives *exact* within-component effective
        resistances (see module docstring); moderate values near the average
        edge weight keep the matrix well conditioned.
    ground_nodes:
        Explicit nodes to ground (one per component).  By default the
        lowest-index node of each connected component is used, which is
        deterministic and therefore reproducible.

    Returns
    -------
    (matrix, ground_nodes):
        The grounded SDD matrix in CSC form and the grounded node ids.
    """
    check_positive(ground_value, "ground_value")
    lap = laplacian(graph).tolil()
    if ground_nodes is None:
        labels, count = connected_components(graph)
        ground_list = []
        seen = np.zeros(count, dtype=bool)
        for node in range(graph.num_nodes):
            comp = labels[node]
            if not seen[comp]:
                seen[comp] = True
                ground_list.append(node)
        ground_nodes = np.asarray(ground_list, dtype=np.int64)
    else:
        ground_nodes = np.asarray(ground_nodes, dtype=np.int64)
    for node in ground_nodes:
        lap[node, node] += ground_value
    return lap.tocsc(), ground_nodes


def laplacian_from_grounded(
    grounded: sp.spmatrix, ground_nodes: np.ndarray, ground_value: float
) -> sp.csc_matrix:
    """Invert :func:`grounded_laplacian`: remove the grounding shifts."""
    lap = grounded.tolil(copy=True)
    for node in np.asarray(ground_nodes, dtype=np.int64):
        lap[node, node] -= ground_value
    return lap.tocsc()


def laplacian_quadratic_form(graph: Graph, x: np.ndarray) -> float:
    """Evaluate ``xᵀ L_G x = Σ_e w(e) (x_head − x_tail)²`` without forming L."""
    diff = x[graph.heads] - x[graph.tails]
    return float(np.sum(graph.weights * diff * diff))


def is_sdd_m_matrix(matrix: sp.spmatrix, tol: float = 1e-12) -> bool:
    """Check that ``matrix`` is SDD with nonpositive off-diagonal entries.

    This is the structural precondition for Lemma 1 of the paper (the
    Cholesky factor of such a matrix has positive diagonal and nonpositive
    off-diagonal entries, hence a nonnegative inverse).
    """
    coo = sp.coo_matrix(matrix)
    off = coo.row != coo.col
    if np.any(coo.data[off] > tol):
        return False
    diag = matrix.diagonal()
    offdiag_rowsum = np.zeros(matrix.shape[0])
    np.add.at(offdiag_rowsum, coo.row[off], np.abs(coo.data[off]))
    return bool(np.all(diag + tol >= offdiag_rowsum))
