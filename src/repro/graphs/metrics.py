"""Graph workload characterisation.

The paper's Table I spans three structurally different graph families;
whether Alg. 3's approximate inverse stays sparse depends on exactly the
properties summarised here (degree spread, diameter, local clustering).
The bench harness prints these stats next to each case so readers can see
*why* a synthetic stand-in behaves like (or unlike) its real counterpart.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng


@dataclass
class GraphStats:
    """Structural summary of a graph."""

    num_nodes: int
    num_edges: int
    average_degree: float
    max_degree: int
    degree_p99: float
    diameter_estimate: int
    weight_spread: float
    clustering_estimate: float

    def summary(self) -> str:
        """One-line description for bench output."""
        return (
            f"n={self.num_nodes} m={self.num_edges} "
            f"deg(avg/p99/max)={self.average_degree:.1f}/{self.degree_p99:.0f}/{self.max_degree} "
            f"diam≈{self.diameter_estimate} "
            f"w_spread={self.weight_spread:.1e} "
            f"clust≈{self.clustering_estimate:.3f}"
        )


def bfs_eccentricity(graph: Graph, source: int) -> "tuple[int, int]":
    """Hop eccentricity of ``source`` and the farthest node reached."""
    adj = graph.adjacency().tocsr()
    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    last = source
    while queue:
        u = queue.popleft()
        last = u
        for v in adj.indices[adj.indptr[u] : adj.indptr[u + 1]]:
            if dist[v] == -1:
                dist[v] = dist[u] + 1
                queue.append(int(v))
    return int(dist[last]), last


def estimate_diameter(graph: Graph, sweeps: int = 3, seed=0) -> int:
    """Double-sweep BFS lower bound on the hop diameter.

    Repeated from random starts; exact on trees, a tight lower bound on
    most graphs — good enough to characterise workloads.
    """
    if graph.num_edges == 0:
        return 0
    rng = ensure_rng(seed)
    best = 0
    for _ in range(sweeps):
        start = int(rng.integers(graph.num_nodes))
        _, far = bfs_eccentricity(graph, start)
        ecc, _ = bfs_eccentricity(graph, far)
        best = max(best, ecc)
    return best


def estimate_clustering(graph: Graph, samples: int = 200, seed=0) -> float:
    """Sampled local clustering coefficient (triangle density at nodes)."""
    adj = graph.adjacency().tocsr()
    rng = ensure_rng(seed)
    n = graph.num_nodes
    neighbour_sets = {}

    def neighbours(v: int) -> set:
        cached = neighbour_sets.get(v)
        if cached is None:
            cached = set(adj.indices[adj.indptr[v] : adj.indptr[v + 1]].tolist())
            neighbour_sets[v] = cached
        return cached

    total, counted = 0.0, 0
    for v in rng.integers(0, n, size=min(samples, n)):
        nv = neighbours(int(v))
        k = len(nv)
        if k < 2:
            continue
        links = sum(len(neighbours(u) & nv) for u in nv) / 2
        total += links / (k * (k - 1) / 2)
        counted += 1
    return total / counted if counted else 0.0


def graph_stats(graph: Graph, seed=0) -> GraphStats:
    """Compute the full :class:`GraphStats` summary."""
    degrees = np.zeros(graph.num_nodes)
    if graph.num_edges:
        np.add.at(degrees, graph.heads, 1.0)
        np.add.at(degrees, graph.tails, 1.0)
    spread = (
        float(graph.weights.max() / graph.weights.min()) if graph.num_edges else 1.0
    )
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        average_degree=float(degrees.mean()) if graph.num_nodes else 0.0,
        max_degree=int(degrees.max()) if graph.num_nodes else 0,
        degree_p99=float(np.percentile(degrees, 99)) if graph.num_nodes else 0.0,
        diameter_estimate=estimate_diameter(graph, seed=seed),
        weight_spread=spread,
        clustering_estimate=estimate_clustering(graph, seed=seed),
    )
