"""Supporting linear algebra: PCG, SDD utilities, sparse helpers."""

from repro.linalg.pcg import PCGResult, pcg
from repro.linalg.sparse_utils import (
    column_slices,
    drop_small,
    nnz_per_column,
    relative_residual,
)

__all__ = [
    "pcg",
    "PCGResult",
    "drop_small",
    "nnz_per_column",
    "column_slices",
    "relative_residual",
]
