"""Preconditioned conjugate gradient solver.

Used in two places:

* the WWW'15 random-projection baseline solves ``k = O(log m)`` Laplacian
  systems; with an ICT preconditioner (the same factor Alg. 3 reuses) PCG is
  the honest analogue of the combinatorial solver of the baseline paper;
* tests measure ICT preconditioner quality through iteration counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.cholesky.incomplete import ICholResult
from repro.cholesky.triangular import solve_lower, solve_lower_transpose


@dataclass
class PCGResult:
    """Solution together with convergence diagnostics."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def ichol_preconditioner(factor: ICholResult) -> "Callable[[np.ndarray], np.ndarray]":
    """Build ``M⁻¹`` from an incomplete Cholesky factor (both sweeps)."""
    lower = factor.lower
    perm = factor.perm
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0])

    def apply(r: np.ndarray) -> np.ndarray:
        y = solve_lower(lower, r[perm])
        z = solve_lower_transpose(lower, y)
        return z[inv]

    return apply


def pcg(
    matrix: sp.spmatrix,
    rhs: np.ndarray,
    preconditioner: "Callable[[np.ndarray], np.ndarray] | None" = None,
    x0: "np.ndarray | None" = None,
    rtol: float = 1e-10,
    max_iterations: "int | None" = None,
) -> PCGResult:
    """Solve ``A x = rhs`` for SPD ``A`` with (optionally preconditioned) CG.

    Parameters
    ----------
    matrix:
        Sparse SPD matrix.
    rhs:
        Right-hand side vector.
    preconditioner:
        Callable applying ``M⁻¹`` to a vector; ``None`` for plain CG.
    rtol:
        Convergence threshold on ``‖r‖ / ‖rhs‖``.
    max_iterations:
        Default ``10·n`` — generous, since tests assert convergence.
    """
    a = sp.csr_matrix(matrix)
    b = np.asarray(rhs, dtype=np.float64)
    n = b.shape[0]
    if max_iterations is None:
        max_iterations = 10 * n
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - a @ x
    b_norm = float(np.linalg.norm(b)) or 1.0
    z = preconditioner(r) if preconditioner is not None else r
    p = z.copy()
    rz = float(r @ z)
    iterations = 0
    res_norm = float(np.linalg.norm(r))
    while res_norm / b_norm > rtol and iterations < max_iterations:
        ap = a @ p
        # `iterations` counts matrix-vector products: incrementing right at
        # the product keeps the early-convergence break and the loop-exit
        # path consistent (preconditioner-quality tests compare counts)
        iterations += 1
        alpha = rz / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        res_norm = float(np.linalg.norm(r))
        if res_norm / b_norm <= rtol:
            break
        z = preconditioner(r) if preconditioner is not None else r
        rz_next = float(r @ z)
        beta = rz_next / rz
        rz = rz_next
        p = z + beta * p
    return PCGResult(
        x=x,
        iterations=iterations,
        residual_norm=res_norm,
        converged=res_norm / b_norm <= rtol,
    )
