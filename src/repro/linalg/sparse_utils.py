"""Small sparse-matrix helpers shared across the library."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def nnz_per_column(matrix: sp.spmatrix) -> np.ndarray:
    """Number of stored nonzeros in each column."""
    csc = sp.csc_matrix(matrix)
    return np.diff(csc.indptr)


def column_slices(csc: sp.csc_matrix, j: int) -> "tuple[np.ndarray, np.ndarray]":
    """Row indices and values of column ``j`` (views into the CSC arrays)."""
    start, end = csc.indptr[j], csc.indptr[j + 1]
    return csc.indices[start:end], csc.data[start:end]


def drop_small(matrix: sp.spmatrix, threshold: float) -> sp.csc_matrix:
    """Zero out entries with ``|value| < threshold`` and compress."""
    csc = sp.csc_matrix(matrix).copy()
    csc.data[np.abs(csc.data) < threshold] = 0.0
    csc.eliminate_zeros()
    return csc


def relative_residual(matrix: sp.spmatrix, x: np.ndarray, rhs: np.ndarray) -> float:
    """``‖A x − b‖ / ‖b‖`` with a safe denominator."""
    b_norm = float(np.linalg.norm(rhs)) or 1.0
    return float(np.linalg.norm(matrix @ x - rhs)) / b_norm
