"""Graph partitioning (METIS substitute).

Alg. 1 step 1 partitions the power grid into ``#ports / 50`` blocks with
METIS.  This package provides a multilevel k-way partitioner with the same
architecture (heavy-edge matching coarsening → initial bisection → FM
boundary refinement → recursive k-way), plus a coordinate-based geometric
partitioner for meshes and the node-role classification (port / non-port
interface / non-port interior) the reduction consumes.
"""

from repro.partition.interface import (
    NodeRole,
    PartitionQuality,
    SeparatorQuality,
    classify_nodes,
    edge_cut,
    partition_graph,
    partition_quality,
    separator_quality,
)
from repro.partition.multilevel import multilevel_bisection, multilevel_kway

__all__ = [
    "partition_graph",
    "classify_nodes",
    "NodeRole",
    "edge_cut",
    "partition_quality",
    "PartitionQuality",
    "separator_quality",
    "SeparatorQuality",
    "multilevel_kway",
    "multilevel_bisection",
]
