"""Heavy-edge matching coarsening (the METIS coarsening phase).

Each coarsening level computes a matching that prefers heavy edges (they
should not be cut, so collapsing them early is safe), merges matched pairs
into super-nodes, and accumulates node weights so balance constraints keep
referring to original vertex counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy.

    Attributes
    ----------
    graph:
        The coarse graph.
    node_weights:
        Original-vertex mass of each coarse node.
    fine_to_coarse:
        Mapping from the finer level's nodes to this level's nodes.
    """

    graph: Graph
    node_weights: np.ndarray
    fine_to_coarse: np.ndarray


def heavy_edge_matching(
    graph: Graph, node_weights: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Greedy heavy-edge matching; returns ``match`` with partners or self.

    Nodes are visited in random order; each unmatched node pairs with its
    heaviest unmatched neighbour.  Isolated or unlucky nodes match
    themselves.
    """
    n = graph.num_nodes
    adj = graph.adjacency().tocsr()
    match = -np.ones(n, dtype=np.int64)
    for v in rng.permutation(n):
        if match[v] != -1:
            continue
        start, end = adj.indptr[v], adj.indptr[v + 1]
        neighbours = adj.indices[start:end]
        weights = adj.data[start:end]
        best, best_weight = -1, -1.0
        for u, w in zip(neighbours, weights):
            if match[u] == -1 and u != v and w > best_weight:
                best, best_weight = int(u), float(w)
        if best == -1:
            match[v] = v
        else:
            match[v] = best
            match[best] = v
    return match


def coarsen_once(
    graph: Graph, node_weights: np.ndarray, rng: np.random.Generator
) -> CoarseLevel:
    """Collapse a heavy-edge matching into a coarse graph."""
    match = heavy_edge_matching(graph, node_weights, rng)
    n = graph.num_nodes
    fine_to_coarse = -np.ones(n, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if fine_to_coarse[v] != -1:
            continue
        partner = int(match[v])
        fine_to_coarse[v] = next_id
        if partner != v:
            fine_to_coarse[partner] = next_id
        next_id += 1

    coarse_weights = np.zeros(next_id)
    np.add.at(coarse_weights, fine_to_coarse, node_weights)

    heads = fine_to_coarse[graph.heads]
    tails = fine_to_coarse[graph.tails]
    keep = heads != tails  # matched pairs' internal edges disappear
    coarse_graph = Graph(next_id, heads[keep], tails[keep], graph.weights[keep]).coalesce()
    if coarse_graph.num_edges == 0 and next_id > 0:
        coarse_graph = Graph(
            next_id, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), np.empty(0)
        )
    return CoarseLevel(
        graph=coarse_graph, node_weights=coarse_weights, fine_to_coarse=fine_to_coarse
    )


def coarsen_to(
    graph: Graph,
    target_nodes: int,
    seed: "int | np.random.Generator | None" = None,
    max_levels: int = 40,
) -> "list[CoarseLevel]":
    """Repeatedly coarsen until at most ``target_nodes`` nodes remain.

    Stops early when a level shrinks by less than 10% (matching saturated,
    typical for star-like graphs).  Returns the hierarchy finest-first.
    """
    rng = ensure_rng(seed)
    levels: list[CoarseLevel] = []
    current = graph
    weights = np.ones(graph.num_nodes)
    for _ in range(max_levels):
        if current.num_nodes <= target_nodes:
            break
        level = coarsen_once(current, weights, rng)
        if level.graph.num_nodes > 0.9 * current.num_nodes:
            break
        levels.append(level)
        current = level.graph
        weights = level.node_weights
    return levels
