"""Partitioning front door and node-role classification for Alg. 1.

:func:`partition_graph` dispatches between the multilevel partitioner, a
geometric (coordinate-striped) fast path for meshes, and a random assigner
(baseline / tests).  :func:`classify_nodes` then labels every node with the
role Alg. 1 needs:

* ``PORT`` — carries a voltage or current source; must be preserved;
* ``INTERFACE`` — non-port node with at least one cross-block edge; kept
  during per-block reduction so blocks stay stitchable;
* ``INTERIOR`` — non-port node fully inside a block; eliminated exactly by
  the Schur complement.

Separator-aware labellings (as produced by
:func:`repro.core.partitioned.separator_plan`) mark separator nodes with
label ``-1``; every function here treats negative labels as "no block":
such nodes classify as ``INTERFACE``, never count as block members, and
edges touching them are excluded from the edge cut.
:func:`separator_quality` reports the separator-specific diagnostics
(separator size, region balance) per split component.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.graphs.graph import Graph
from repro.partition.multilevel import multilevel_kway
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


class NodeRole(IntEnum):
    """Alg. 1 node classification."""

    INTERIOR = 0
    INTERFACE = 1
    PORT = 2


def partition_graph(
    graph: Graph,
    num_blocks: int,
    method: str = "multilevel",
    coords: "np.ndarray | None" = None,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Partition ``graph`` into ``num_blocks`` blocks; returns labels.

    Parameters
    ----------
    method:
        ``"multilevel"`` (default, METIS-style), ``"geometric"`` (requires
        ``coords``: recursive coordinate bisection — fast and high quality
        on regular meshes like power grids) or ``"random"``.
    """
    require(num_blocks >= 1, "need at least one block")
    if num_blocks == 1:
        return np.zeros(graph.num_nodes, dtype=np.int64)
    if method == "multilevel":
        return multilevel_kway(graph, num_blocks, seed=seed)
    if method == "geometric":
        require(coords is not None, "geometric partitioning requires coords")
        return _recursive_coordinate_bisection(np.asarray(coords, dtype=np.float64), num_blocks)
    if method == "random":
        rng = ensure_rng(seed)
        return rng.integers(0, num_blocks, size=graph.num_nodes).astype(np.int64)
    raise ValueError(f"unknown partition method {method!r}")


def _recursive_coordinate_bisection(coords: np.ndarray, num_blocks: int) -> np.ndarray:
    """Split along the widest coordinate axis, recursively, by medians."""
    n = coords.shape[0]
    labels = np.zeros(n, dtype=np.int64)

    def split(nodes: np.ndarray, blocks: int, first_label: int) -> None:
        if blocks == 1:
            labels[nodes] = first_label
            return
        left_blocks = blocks // 2
        spans = coords[nodes].max(axis=0) - coords[nodes].min(axis=0)
        axis = int(np.argmax(spans))
        order = nodes[np.argsort(coords[nodes, axis], kind="stable")]
        cut = int(round(nodes.size * left_blocks / blocks))
        cut = min(max(cut, 1), nodes.size - 1)
        split(order[:cut], left_blocks, first_label)
        split(order[cut:], blocks - left_blocks, first_label + left_blocks)

    split(np.arange(n, dtype=np.int64), num_blocks, 0)
    return labels


def classify_nodes(graph: Graph, labels: np.ndarray, ports: np.ndarray) -> np.ndarray:
    """Assign a :class:`NodeRole` to every node (see module docstring).

    Nodes with a negative label (vertex-separator members) are
    ``INTERFACE`` by definition — they sit between blocks even when all
    their surviving neighbours are other separator nodes.
    """
    labels = np.asarray(labels, dtype=np.int64)
    roles = np.full(graph.num_nodes, int(NodeRole.INTERIOR), dtype=np.int64)
    crossing = labels[graph.heads] != labels[graph.tails]
    boundary_nodes = np.unique(
        np.concatenate([graph.heads[crossing], graph.tails[crossing]])
    )
    roles[boundary_nodes] = int(NodeRole.INTERFACE)
    roles[labels < 0] = int(NodeRole.INTERFACE)
    roles[np.asarray(ports, dtype=np.int64)] = int(NodeRole.PORT)
    return roles


def edge_cut(graph: Graph, labels: np.ndarray) -> float:
    """Total weight of edges crossing block boundaries.

    Edges with an unlabelled endpoint (negative label = separator node)
    are not block-to-block edges and do not count toward the cut; use
    :func:`separator_quality` for separator-coupling weight.
    """
    labels = np.asarray(labels, dtype=np.int64)
    labelled = (labels[graph.heads] >= 0) & (labels[graph.tails] >= 0)
    crossing = (labels[graph.heads] != labels[graph.tails]) & labelled
    return float(graph.weights[crossing].sum())


@dataclass
class PartitionQuality:
    """Balance / cut diagnostics of a partition."""

    num_blocks: int
    block_sizes: np.ndarray
    cut_weight: float
    cut_fraction: float

    @property
    def imbalance(self) -> float:
        """``max block size / ideal size`` — 1.0 is perfectly balanced."""
        if self.num_blocks == 0 or self.block_sizes.sum() == 0:
            return 1.0
        ideal = self.block_sizes.sum() / self.num_blocks
        return float(self.block_sizes.max() / ideal)


def partition_quality(graph: Graph, labels: np.ndarray) -> PartitionQuality:
    """Compute balance and cut statistics for a partition.

    Nodes with a negative label (separator members) are excluded from the
    block sizes, and edges touching them from the cut — the labelling may
    come straight from a :class:`~repro.core.partitioned.ShardPlan`.
    """
    labels = np.asarray(labels, dtype=np.int64)
    labelled = labels[labels >= 0]
    num_blocks = int(labelled.max()) + 1 if labelled.size else 1
    sizes = np.bincount(labelled, minlength=num_blocks)
    cut = edge_cut(graph, labels)
    total = graph.total_weight() or 1.0
    return PartitionQuality(
        num_blocks=num_blocks,
        block_sizes=sizes,
        cut_weight=cut,
        cut_fraction=cut / total,
    )


@dataclass
class SeparatorQuality:
    """Separator diagnostics of one split component.

    ``region_sizes`` counts the component's region nodes per region;
    ``separator_fraction`` is the share of the component's nodes spent on
    the separator (the overhead of the split), and ``coupling_weight``
    the total region↔separator edge weight (what the Schur complement
    has to carry).
    """

    component: int
    num_regions: int
    region_sizes: np.ndarray
    separator_size: int
    separator_fraction: float
    coupling_weight: float

    @property
    def imbalance(self) -> float:
        """``max region size / ideal region size`` — 1.0 is balanced."""
        if self.num_regions == 0 or self.region_sizes.sum() == 0:
            return 1.0
        ideal = self.region_sizes.sum() / self.num_regions
        return float(self.region_sizes.max() / ideal)


def separator_quality(
    graph: Graph,
    labels: np.ndarray,
    component_labels: "np.ndarray | None" = None,
) -> "list[SeparatorQuality]":
    """Per-split-component separator diagnostics (see :class:`SeparatorQuality`).

    ``labels`` assigns each node a region id or ``-1`` for separator
    membership; components without separator nodes produce no entry.
    Without ``component_labels`` the whole graph is treated as one
    component (label 0).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if component_labels is None:
        component_labels = np.zeros(graph.num_nodes, dtype=np.int64)
    component_labels = np.asarray(component_labels, dtype=np.int64)
    sep_mask = labels < 0
    one_sep = sep_mask[graph.heads] != sep_mask[graph.tails]
    reports = []
    for comp in np.unique(component_labels[sep_mask]).tolist():
        in_comp = component_labels == comp
        region_ids = np.unique(labels[in_comp & ~sep_mask])
        region_sizes = np.array(
            [int(np.count_nonzero(labels[in_comp] == r)) for r in region_ids],
            dtype=np.int64,
        )
        sep_size = int(np.count_nonzero(in_comp & sep_mask))
        comp_size = int(np.count_nonzero(in_comp))
        coupling = float(
            graph.weights[one_sep & in_comp[graph.heads]].sum()
        )
        reports.append(
            SeparatorQuality(
                component=int(comp),
                num_regions=int(region_ids.size),
                region_sizes=region_sizes,
                separator_size=sep_size,
                separator_fraction=sep_size / comp_size if comp_size else 0.0,
                coupling_weight=coupling,
            )
        )
    return reports
