"""Partitioning front door and node-role classification for Alg. 1.

:func:`partition_graph` dispatches between the multilevel partitioner, a
geometric (coordinate-striped) fast path for meshes, and a random assigner
(baseline / tests).  :func:`classify_nodes` then labels every node with the
role Alg. 1 needs:

* ``PORT`` — carries a voltage or current source; must be preserved;
* ``INTERFACE`` — non-port node with at least one cross-block edge; kept
  during per-block reduction so blocks stay stitchable;
* ``INTERIOR`` — non-port node fully inside a block; eliminated exactly by
  the Schur complement.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.graphs.graph import Graph
from repro.partition.multilevel import multilevel_kway
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


class NodeRole(IntEnum):
    """Alg. 1 node classification."""

    INTERIOR = 0
    INTERFACE = 1
    PORT = 2


def partition_graph(
    graph: Graph,
    num_blocks: int,
    method: str = "multilevel",
    coords: "np.ndarray | None" = None,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Partition ``graph`` into ``num_blocks`` blocks; returns labels.

    Parameters
    ----------
    method:
        ``"multilevel"`` (default, METIS-style), ``"geometric"`` (requires
        ``coords``: recursive coordinate bisection — fast and high quality
        on regular meshes like power grids) or ``"random"``.
    """
    require(num_blocks >= 1, "need at least one block")
    if num_blocks == 1:
        return np.zeros(graph.num_nodes, dtype=np.int64)
    if method == "multilevel":
        return multilevel_kway(graph, num_blocks, seed=seed)
    if method == "geometric":
        require(coords is not None, "geometric partitioning requires coords")
        return _recursive_coordinate_bisection(np.asarray(coords, dtype=np.float64), num_blocks)
    if method == "random":
        rng = ensure_rng(seed)
        return rng.integers(0, num_blocks, size=graph.num_nodes).astype(np.int64)
    raise ValueError(f"unknown partition method {method!r}")


def _recursive_coordinate_bisection(coords: np.ndarray, num_blocks: int) -> np.ndarray:
    """Split along the widest coordinate axis, recursively, by medians."""
    n = coords.shape[0]
    labels = np.zeros(n, dtype=np.int64)

    def split(nodes: np.ndarray, blocks: int, first_label: int) -> None:
        if blocks == 1:
            labels[nodes] = first_label
            return
        left_blocks = blocks // 2
        spans = coords[nodes].max(axis=0) - coords[nodes].min(axis=0)
        axis = int(np.argmax(spans))
        order = nodes[np.argsort(coords[nodes, axis], kind="stable")]
        cut = int(round(nodes.size * left_blocks / blocks))
        cut = min(max(cut, 1), nodes.size - 1)
        split(order[:cut], left_blocks, first_label)
        split(order[cut:], blocks - left_blocks, first_label + left_blocks)

    split(np.arange(n, dtype=np.int64), num_blocks, 0)
    return labels


def classify_nodes(graph: Graph, labels: np.ndarray, ports: np.ndarray) -> np.ndarray:
    """Assign a :class:`NodeRole` to every node (see module docstring)."""
    labels = np.asarray(labels, dtype=np.int64)
    roles = np.full(graph.num_nodes, int(NodeRole.INTERIOR), dtype=np.int64)
    crossing = labels[graph.heads] != labels[graph.tails]
    boundary_nodes = np.unique(
        np.concatenate([graph.heads[crossing], graph.tails[crossing]])
    )
    roles[boundary_nodes] = int(NodeRole.INTERFACE)
    roles[np.asarray(ports, dtype=np.int64)] = int(NodeRole.PORT)
    return roles


def edge_cut(graph: Graph, labels: np.ndarray) -> float:
    """Total weight of edges crossing block boundaries."""
    crossing = labels[graph.heads] != labels[graph.tails]
    return float(graph.weights[crossing].sum())


@dataclass
class PartitionQuality:
    """Balance / cut diagnostics of a partition."""

    num_blocks: int
    block_sizes: np.ndarray
    cut_weight: float
    cut_fraction: float

    @property
    def imbalance(self) -> float:
        """``max block size / ideal size`` — 1.0 is perfectly balanced."""
        ideal = self.block_sizes.sum() / self.num_blocks
        return float(self.block_sizes.max() / ideal)


def partition_quality(graph: Graph, labels: np.ndarray) -> PartitionQuality:
    """Compute balance and cut statistics for a partition."""
    num_blocks = int(labels.max()) + 1 if labels.size else 1
    sizes = np.bincount(labels, minlength=num_blocks)
    cut = edge_cut(graph, labels)
    total = graph.total_weight() or 1.0
    return PartitionQuality(
        num_blocks=num_blocks,
        block_sizes=sizes,
        cut_weight=cut,
        cut_fraction=cut / total,
    )
