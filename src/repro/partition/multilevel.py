"""Multilevel k-way partitioning by recursive bisection (METIS substitute).

Pipeline per bisection:

1. **coarsen** with heavy-edge matching until ≲ 160 super-nodes;
2. **initial cut** on the coarsest graph by weighted BFS region growing from
   a pseudo-peripheral seed (robust on disconnected coarse graphs, where a
   spectral cut would need per-component handling);
3. **uncoarsen** and apply FM boundary refinement at every level.

K-way partitions come from recursive bisection with proportional target
masses, so any ``k`` (not only powers of two) is supported — Alg. 1 sets
``k = #ports / 50`` which is rarely a power of two.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.partition.coarsen import coarsen_to
from repro.partition.refine import refine_bisection
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


def _bfs_grow_initial(
    graph: Graph, node_weights: np.ndarray, target_mass: float, rng: np.random.Generator
) -> np.ndarray:
    """Grow one side by weighted BFS until it holds ``target_mass``."""
    n = graph.num_nodes
    side = np.zeros(n, dtype=bool)
    if n == 0:
        return side
    adj = graph.adjacency().tocsr()
    visited = np.zeros(n, dtype=bool)
    mass = 0.0
    # pseudo-peripheral start: BFS twice from a random node
    start = int(rng.integers(n))
    for _ in range(2):
        frontier = [start]
        seen = {start}
        last = start
        while frontier:
            nxt = []
            for v in frontier:
                last = v
                for u in adj.indices[adj.indptr[v] : adj.indptr[v + 1]]:
                    if int(u) not in seen:
                        seen.add(int(u))
                        nxt.append(int(u))
            frontier = nxt
        start = last

    queue = [start]
    visited[start] = True
    while queue and mass < target_mass:
        v = queue.pop(0)
        side[v] = True
        mass += node_weights[v]
        for u in adj.indices[adj.indptr[v] : adj.indptr[v + 1]]:
            if not visited[u]:
                visited[u] = True
                queue.append(int(u))
        if not queue and mass < target_mass:
            remaining = np.flatnonzero(~visited)
            if remaining.size == 0:
                break
            seed2 = int(remaining[0])
            visited[seed2] = True
            queue.append(seed2)
    return side


def multilevel_bisection(
    graph: Graph,
    node_weights: "np.ndarray | None" = None,
    target_fraction: float = 0.5,
    balance_tolerance: float = 0.1,
    seed: "int | np.random.Generator | None" = None,
    coarse_target: int = 160,
) -> np.ndarray:
    """Bisect ``graph``; returns a boolean side array.

    ``target_fraction`` is the mass share of side *True* — recursive k-way
    calls use uneven splits like 2/5.
    """
    rng = ensure_rng(seed)
    if node_weights is None:
        node_weights = np.ones(graph.num_nodes)
    levels = coarsen_to(graph, coarse_target, seed=rng)
    coarse_graph = levels[-1].graph if levels else graph
    coarse_weights = levels[-1].node_weights if levels else node_weights

    total = float(node_weights.sum())
    side = _bfs_grow_initial(coarse_graph, coarse_weights, target_fraction * total, rng)
    side = refine_bisection(
        coarse_graph, side, coarse_weights, balance_tolerance=balance_tolerance
    )
    for i in range(len(levels) - 1, -1, -1):
        side = side[levels[i].fine_to_coarse]
        finer_graph = graph if i == 0 else levels[i - 1].graph
        finer_weights = node_weights if i == 0 else levels[i - 1].node_weights
        side = refine_bisection(
            finer_graph, side, finer_weights, balance_tolerance=balance_tolerance
        )
    return side


def multilevel_kway(
    graph: Graph,
    num_blocks: int,
    seed: "int | np.random.Generator | None" = None,
    balance_tolerance: float = 0.1,
) -> np.ndarray:
    """Partition into ``num_blocks`` parts by recursive bisection.

    Returns integer labels ``0 .. num_blocks-1``.  Blocks are balanced in
    node count within the tolerance at each split.
    """
    require(num_blocks >= 1, "need at least one block")
    rng = ensure_rng(seed)
    labels = np.zeros(graph.num_nodes, dtype=np.int64)
    if num_blocks == 1:
        return labels

    def split(nodes: np.ndarray, blocks: int, first_label: int) -> None:
        if nodes.size == 0:
            return
        # never ask for more blocks than nodes: a 1-node subproblem with
        # blocks >= 2 would recurse on an empty side and crash in subgraph()
        blocks = min(blocks, int(nodes.size))
        if blocks == 1:
            labels[nodes] = first_label
            return
        left_blocks = blocks // 2
        right_blocks = blocks - left_blocks
        sub, original = graph.subgraph(nodes)
        side = multilevel_bisection(
            sub,
            target_fraction=left_blocks / blocks,
            balance_tolerance=balance_tolerance,
            seed=rng,
        )
        left_nodes = original[side]
        right_nodes = original[~side]
        if left_nodes.size == 0 or right_nodes.size == 0:
            # degenerate split (tiny block); fall back to an even slice
            half = max(1, int(round(nodes.size * left_blocks / blocks)))
            left_nodes, right_nodes = nodes[:half], nodes[half:]
        split(left_nodes, left_blocks, first_label)
        split(right_nodes, right_blocks, first_label + left_blocks)

    split(np.arange(graph.num_nodes, dtype=np.int64), num_blocks, 0)
    return labels
