"""FM-style boundary refinement of a bisection.

After uncoarsening, the projected bisection is improved with greedy
Fiduccia–Mattheyses-like passes: only boundary nodes are candidates, moves
must respect the balance tolerance, and a pass stops when no positive-gain
move remains.  A small number of passes suffices because the multilevel
pipeline starts each level from a good projected cut.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.graph import Graph


def bisection_gains(graph: Graph, side: np.ndarray) -> np.ndarray:
    """FM gain of moving each node to the other side.

    ``gain(v) = external_weight(v) − internal_weight(v)``: positive when the
    move reduces the cut.
    """
    n = graph.num_nodes
    internal = np.zeros(n)
    external = np.zeros(n)
    same = side[graph.heads] == side[graph.tails]
    np.add.at(internal, graph.heads[same], graph.weights[same])
    np.add.at(internal, graph.tails[same], graph.weights[same])
    np.add.at(external, graph.heads[~same], graph.weights[~same])
    np.add.at(external, graph.tails[~same], graph.weights[~same])
    return external - internal


def refine_bisection(
    graph: Graph,
    side: np.ndarray,
    node_weights: np.ndarray,
    balance_tolerance: float = 0.1,
    max_passes: int = 4,
) -> np.ndarray:
    """Greedy FM refinement; returns the improved side assignment.

    Parameters
    ----------
    graph:
        Graph being bisected.
    side:
        Boolean array: current side of each node.
    node_weights:
        Vertex masses (original-node counts when used multilevel).
    balance_tolerance:
        Each side must keep at least ``(0.5 − tol)`` of the total mass.
    max_passes:
        Upper bound on full passes; each pass locks moved nodes.
    """
    side = side.copy()
    total = float(node_weights.sum())
    low = (0.5 - balance_tolerance) * total
    adj = graph.adjacency().tocsr()

    for _ in range(max_passes):
        gains = bisection_gains(graph, side)
        crossing = side[graph.heads] != side[graph.tails]
        boundary = np.unique(
            np.concatenate([graph.heads[crossing], graph.tails[crossing]])
        )
        if boundary.size == 0:
            break
        heap = [(-gains[v], int(v)) for v in boundary if gains[v] > 0]
        heapq.heapify(heap)
        locked = np.zeros(graph.num_nodes, dtype=bool)
        side_mass = np.array(
            [node_weights[~side].sum(), node_weights[side].sum()]
        )
        moved = 0
        while heap:
            neg_gain, v = heapq.heappop(heap)
            if locked[v] or -neg_gain != gains[v]:
                continue
            source = int(side[v])
            if side_mass[source] - node_weights[v] < low:
                continue  # would unbalance
            # apply the move
            side[v] = not side[v]
            locked[v] = True
            side_mass[source] -= node_weights[v]
            side_mass[1 - source] += node_weights[v]
            moved += 1
            # update neighbour gains incrementally
            start, end = adj.indptr[v], adj.indptr[v + 1]
            for u, w in zip(adj.indices[start:end], adj.data[start:end]):
                u = int(u)
                if locked[u]:
                    continue
                # edge (u, v): if now internal it was external and vice versa
                if side[u] == side[v]:
                    gains[u] -= 2.0 * w
                else:
                    gains[u] += 2.0 * w
                if gains[u] > 0:
                    heapq.heappush(heap, (-gains[u], u))
            gains[v] = -gains[v]
        if moved == 0:
            break
    return side
