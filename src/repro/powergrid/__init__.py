"""Power-grid substrate: netlists, SPICE IO, MNA, DC and transient analysis.

The paper's Table II evaluates its fast reduction method on the IBM power
grid benchmarks — RC networks with VDD/GND pads (voltage sources), current
loads, and mesh-like metal layers.  This package provides the full
electrical stack:

* :mod:`repro.powergrid.netlist` — the :class:`PowerGrid` data model;
* :mod:`repro.powergrid.spice` — reader/writer for the IBM-PG SPICE subset;
* :mod:`repro.powergrid.generators` — parametric synthetic grids standing in
  for the (non-downloadable) ibmpg2–ibmpg6 / thupg benchmarks;
* :mod:`repro.powergrid.mna` — nodal-analysis matrix assembly;
* :mod:`repro.powergrid.dc` — DC operating-point analysis;
* :mod:`repro.powergrid.transient` — fixed-step Backward-Euler transient
  analysis (factor once, 1000 steps — the Table II protocol);
* :mod:`repro.powergrid.waveforms` — PWL / pulse current-source waveforms.
"""

from repro.powergrid.dc import DCResult, dc_analysis
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.powergrid.mna import MNASystem, build_mna
from repro.powergrid.netlist import CurrentSource, PowerGrid, VoltageSource
from repro.powergrid.spice import read_spice, write_spice
from repro.powergrid.transient import TransientResult, transient_analysis
from repro.powergrid.validation import ValidationReport, validate_power_grid
from repro.powergrid.waveforms import PulseWaveform, PWLWaveform, Waveform

__all__ = [
    "PowerGrid",
    "CurrentSource",
    "VoltageSource",
    "read_spice",
    "write_spice",
    "synthetic_ibmpg_like",
    "build_mna",
    "MNASystem",
    "dc_analysis",
    "DCResult",
    "transient_analysis",
    "TransientResult",
    "Waveform",
    "PWLWaveform",
    "PulseWaveform",
    "validate_power_grid",
    "ValidationReport",
]
