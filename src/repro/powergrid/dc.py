"""DC operating-point analysis of a power grid.

Solves ``G_UU v_U = i_U − G_UK v_K`` with one sparse factorisation and
reports node voltages plus IR-drop statistics.  This is both the reference
solver ("Original" columns of Table II) and the workhorse behind the DC
incremental-analysis application.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla

from repro.powergrid.mna import MNASystem, build_mna
from repro.powergrid.netlist import PowerGrid
from repro.utils.timing import Timer


@dataclass
class DCResult:
    """DC solution of a power grid.

    Attributes
    ----------
    voltages:
        Node voltage for every grid node (pads at their pinned value).
    system:
        The assembled :class:`~repro.powergrid.mna.MNASystem`.
    timer:
        Assembly / factorisation / solve timings.
    """

    voltages: np.ndarray
    system: MNASystem
    timer: Timer

    def voltage_of(self, name: str) -> float:
        """Voltage of a node addressed by netlist name."""
        return float(self.voltages[self.system.grid.index_of(name)])

    def drops(self) -> np.ndarray:
        """IR drop per node, relative to its net's pad voltage.

        For nodes electrically tied to VDD pads the drop is ``VDD − v``;
        for GND-net nodes (pad voltage 0) it is the ground bounce ``v``.
        The net assignment uses the nearest pad voltage in the solution:
        nodes above half the maximum pad voltage count as VDD-net.
        """
        pads = self.system.pad_voltages
        vmax = float(pads.max()) if pads.size else float(self.voltages.max())
        is_high = self.voltages > 0.5 * vmax
        return np.where(is_high, vmax - self.voltages, self.voltages)

    def max_drop(self) -> float:
        """Worst IR drop / ground bounce over all nodes (volts)."""
        return float(np.max(self.drops())) if self.voltages.size else 0.0


def max_voltage_drop(grid: PowerGrid, voltages: np.ndarray) -> float:
    """Worst drop/bounce relative to each net's supply, over all samples.

    ``voltages`` may be a vector (DC) or ``(nodes, steps)`` matrix
    (transient).  VDD-net nodes (above half the max pad voltage) contribute
    ``VDD − v``; GND-net nodes contribute ``v``.  This is the denominator
    of Table II's ``Rel`` column.
    """
    pads = grid.pad_voltage_vector()
    finite = pads[np.isfinite(pads)]
    vmax = float(finite.max()) if finite.size else float(np.max(voltages))
    arr = np.asarray(voltages, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]  # DC vector: one sample per node
    reference = arr[:, 0] if arr.shape[1] else np.zeros(arr.shape[0])
    is_high = reference > 0.5 * vmax
    drops = np.where(is_high[:, None], vmax - arr, arr)
    return float(drops.max()) if drops.size else 0.0


def dc_analysis(grid: "PowerGrid | MNASystem") -> DCResult:
    """Run a DC analysis: assemble (if needed), factor once, solve."""
    timer = Timer()
    if isinstance(grid, MNASystem):
        system = grid
    else:
        with timer.section("assemble"):
            system = build_mna(grid)
    with timer.section("factorize"):
        solver = spla.splu(system.g_uu())
    with timer.section("solve"):
        rhs = system.injected_currents()[system.unknown] - system.g_uk_vk()
        v_unknown = solver.solve(rhs)
    voltages = system.assemble_full_voltages(v_unknown)
    return DCResult(voltages=voltages, system=system, timer=timer)
