"""Synthetic IBM-style power-grid benchmark generator.

The real IBM (ibmpg2–ibmpg6) and THU benchmarks are behind university
download pages, so this module builds grids with the same *electrical
structure*, sized to pure-Python runtimes:

* one or two independent supply nets (VDD at the supply voltage, GND at
  0 V), each a jittered 2-D metal mesh — the dominant structure of flip-chip
  power grids after via collapsing;
* **pads** (C4 bumps) on a coarse regular sub-lattice, modelled as ideal
  voltage sources — these are port nodes;
* **current loads** at randomly chosen nodes, drawing from the VDD net and
  returning into the GND net — also port nodes; in transient mode each load
  carries a randomly-phased SPICE ``PULSE`` waveform;
* **decap/parasitic capacitors** at every non-pad node (transient mode).

Table II derives its cases from this generator (see
:mod:`repro.bench.cases`), and the SPICE writer exports them for external
cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.powergrid.netlist import PowerGrid
from repro.powergrid.waveforms import PulseWaveform
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class PGConfig:
    """Parameters of a synthetic power grid (one or two nets).

    Attributes mirror physical knobs of the IBM benchmarks: mesh size,
    pad pitch, sheet resistance, load density and magnitude, decap value.
    """

    nx: int = 40
    ny: int = 40
    nets: "tuple[str, ...]" = ("vdd", "gnd")
    vdd: float = 1.8
    pad_pitch: int = 10
    wire_resistance: float = 0.5
    resistance_jitter: float = 0.3
    load_fraction: float = 0.08
    load_current: float = 5e-3
    decap: float = 2e-13
    transient: bool = False
    pulse_rise: float = 5e-11
    pulse_width: float = 2e-10
    pulse_period: float = 2e-9
    num_layers: int = 1
    strap_pitch: int = 4
    strap_resistance_factor: float = 0.2
    via_resistance: float = 0.1

    def __post_init__(self):
        require(self.nx >= 2 and self.ny >= 2, "mesh must be at least 2x2")
        require(self.pad_pitch >= 2, "pad pitch must be >= 2")
        require(0 < self.load_fraction <= 1.0, "load_fraction in (0, 1]")
        require(self.num_layers in (1, 2), "num_layers must be 1 or 2")
        require(self.strap_pitch >= 2, "strap pitch must be >= 2")
        for net in self.nets:
            require(net in ("vdd", "gnd"), f"unknown net {net!r}")


def synthetic_ibmpg_like(
    config: "PGConfig | None" = None,
    seed: "int | np.random.Generator | None" = None,
    **overrides,
) -> PowerGrid:
    """Build a synthetic IBM-style power grid.

    Parameters
    ----------
    config:
        Full parameter set; keyword ``overrides`` patch individual fields
        (e.g. ``synthetic_ibmpg_like(nx=60, ny=60, transient=True)``).
    seed:
        RNG seed controlling jitter, load placement and pulse phases.
    """
    if config is None:
        config = PGConfig(**overrides)
    elif overrides:
        config = PGConfig(**{**config.__dict__, **overrides})
    rng = ensure_rng(seed)
    grid = PowerGrid()

    for net in config.nets:
        _build_net(grid, net, config, rng)
    return grid


def _build_net(grid: PowerGrid, net: str, config: PGConfig, rng: np.random.Generator) -> None:
    """Add one supply net (mesh + pads + loads + decaps) to ``grid``."""
    nx, ny = config.nx, config.ny
    is_vdd = net == "vdd"
    supply = config.vdd if is_vdd else 0.0

    nodes = np.empty((nx, ny), dtype=np.int64)
    for x in range(nx):
        for y in range(ny):
            nodes[x, y] = grid.node(f"n_{net}_{x}_{y}")

    # mesh resistors with jitter (wire-width / extraction spread)
    jitter = config.resistance_jitter
    for x in range(nx):
        for y in range(ny):
            if x + 1 < nx:
                factor = rng.uniform(1.0 / (1.0 + jitter), 1.0 + jitter)
                grid.add_resistor(
                    int(nodes[x, y]), int(nodes[x + 1, y]), config.wire_resistance * factor
                )
            if y + 1 < ny:
                factor = rng.uniform(1.0 / (1.0 + jitter), 1.0 + jitter)
                grid.add_resistor(
                    int(nodes[x, y]), int(nodes[x, y + 1]), config.wire_resistance * factor
                )

    # optional second metal layer: coarse low-resistance straps on a
    # sub-lattice, tied down with via resistors (flip-chip style)
    strap_nodes: "dict[tuple[int, int], int]" = {}
    if config.num_layers == 2:
        xs = list(range(0, nx, config.strap_pitch))
        ys = list(range(0, ny, config.strap_pitch))
        for x in xs:
            for y in ys:
                strap_nodes[(x, y)] = grid.node(f"n_{net}_m2_{x}_{y}")
        strap_r = config.wire_resistance * config.strap_resistance_factor
        for xi, x in enumerate(xs):
            for yi, y in enumerate(ys):
                here = strap_nodes[(x, y)]
                if xi + 1 < len(xs):
                    factor = rng.uniform(1.0 / (1.0 + jitter), 1.0 + jitter)
                    grid.add_resistor(here, strap_nodes[(xs[xi + 1], y)], strap_r * factor)
                if yi + 1 < len(ys):
                    factor = rng.uniform(1.0 / (1.0 + jitter), 1.0 + jitter)
                    grid.add_resistor(here, strap_nodes[(x, ys[yi + 1])], strap_r * factor)
                grid.add_resistor(here, int(nodes[x, y]), config.via_resistance)

    # pads on a coarse lattice (offset half a pitch from the border);
    # with two layers the pads land on the top metal, as in flip-chip grids
    pad_positions = [
        (x, y)
        for x in range(config.pad_pitch // 2, nx, config.pad_pitch)
        for y in range(config.pad_pitch // 2, ny, config.pad_pitch)
    ]
    pad_set = set()
    used_pad_nodes: set[int] = set()
    for x, y in pad_positions:
        if strap_nodes:
            nearest = min(strap_nodes, key=lambda p: abs(p[0] - x) + abs(p[1] - y))
            pad_node = strap_nodes[nearest]
        else:
            pad_node = int(nodes[x, y])
        if pad_node not in used_pad_nodes:
            grid.add_vsource(pad_node, supply, name=f"V_{net}_{x}_{y}")
            used_pad_nodes.add(pad_node)
        pad_set.add((x, y))

    # loads at random non-pad nodes; the same current leaves VDD and
    # returns into GND (sign convention: positive = drawn from node)
    candidates = [(x, y) for x in range(nx) for y in range(ny) if (x, y) not in pad_set]
    num_loads = max(1, int(round(config.load_fraction * len(candidates))))
    chosen = rng.choice(len(candidates), size=num_loads, replace=False)
    for rank, flat in enumerate(chosen):
        x, y = candidates[int(flat)]
        magnitude = config.load_current * rng.uniform(0.2, 1.0)
        drawn = magnitude if is_vdd else -magnitude
        waveform = None
        dc_value = drawn
        if config.transient:
            delay = rng.uniform(0.0, config.pulse_period / 2)
            waveform = PulseWaveform(
                low=0.1 * drawn,
                high=drawn,
                delay=delay,
                rise=config.pulse_rise,
                width=config.pulse_width,
                fall=config.pulse_rise,
                period=config.pulse_period,
            )
            # SPICE has no separate DC for a PULSE source: keep dc equal to
            # the waveform's t=0 value so netlists round-trip exactly
            dc_value = float(waveform.value(0.0))
        grid.add_isource(
            int(nodes[x, y]), dc_value, waveform=waveform, name=f"I_{net}_{rank}"
        )

    if config.transient and config.decap > 0:
        for x in range(nx):
            for y in range(ny):
                if (x, y) in pad_set:
                    continue
                farads = config.decap * rng.uniform(0.5, 1.5)
                grid.add_capacitor(int(nodes[x, y]), farads)
