"""Nodal-analysis matrix assembly for power grids.

We use straight nodal analysis with *known-voltage elimination* — the form
every power-grid simulator (including the paper's CHOLMOD-based flow) uses:

* ``G`` is the conductance Laplacian of the resistor network plus ground
  shunts (an SDD M-matrix);
* voltage-source (pad) nodes have known voltages, so the solve restricts to
  the unknown nodes ``U``::

      G_UU · v_U = i_U − G_UK · v_K

* ``C`` is the capacitance matrix (diagonal for ground caps, Laplacian
  stamps for coupling caps), used by Backward-Euler transient analysis.

The :class:`MNASystem` captures the partitioned system once so DC and
transient solvers share the assembly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.powergrid.netlist import GROUND, PowerGrid
from repro.utils.validation import require


@dataclass
class MNASystem:
    """Partitioned nodal system of a power grid.

    Attributes
    ----------
    conductance:
        Full ``n×n`` conductance matrix ``G`` (resistors + shunts).
    capacitance:
        Full ``n×n`` capacitance matrix ``C``.
    unknown:
        Indices of nodes with unknown voltage.
    pads:
        Indices of voltage-source nodes (known voltage).
    pad_voltages:
        Voltages of ``pads`` in the same order.
    grid:
        The originating :class:`PowerGrid` (for source evaluation).
    """

    conductance: sp.csc_matrix
    capacitance: sp.csc_matrix
    unknown: np.ndarray
    pads: np.ndarray
    pad_voltages: np.ndarray
    grid: PowerGrid

    @property
    def num_nodes(self) -> int:
        """Total grid nodes (known + unknown)."""
        return self.conductance.shape[0]

    def g_uu(self) -> sp.csc_matrix:
        """Conductance block over unknown nodes (the SPD solve matrix)."""
        return self.conductance[self.unknown, :][:, self.unknown].tocsc()

    def g_uk_vk(self) -> np.ndarray:
        """Constant pad coupling term ``G_UK · v_K`` of the solve RHS."""
        if self.pads.size == 0:
            return np.zeros(self.unknown.shape[0])
        guk = self.conductance[self.unknown, :][:, self.pads]
        return np.asarray(guk @ self.pad_voltages).ravel()

    def c_uu(self) -> sp.csc_matrix:
        """Capacitance block over unknown nodes."""
        return self.capacitance[self.unknown, :][:, self.unknown].tocsc()

    def injected_currents(self, t=None) -> np.ndarray:
        """Per-node injected current vector (loads enter negatively).

        ``t=None`` uses the DC values; otherwise each source's waveform is
        evaluated at scalar time ``t``.
        """
        rhs = np.zeros(self.num_nodes)
        for source in self.grid.isources:
            if t is None:
                drawn = source.dc
            else:
                drawn = float(source.current_at(t))
            rhs[source.node] -= drawn
        return rhs

    def assemble_full_voltages(self, v_unknown: np.ndarray) -> np.ndarray:
        """Combine the unknown-node solution with pad voltages."""
        full = np.empty(self.num_nodes)
        full[self.unknown] = v_unknown
        full[self.pads] = self.pad_voltages
        return full


def _laplacian_stamps(n, a, b, values) -> sp.csc_matrix:
    """Assemble Laplacian stamps for two-terminal elements.

    Ground-referenced elements (endpoint ``GROUND``) stamp only the
    diagonal of the internal endpoint.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    internal = (a != GROUND) & (b != GROUND)
    grounded_mask = ~internal
    rows, cols, data = [], [], []
    if internal.any():
        ai, bi, vi = a[internal], b[internal], values[internal]
        rows.extend([ai, bi, ai, bi])
        cols.extend([bi, ai, ai, bi])
        data.extend([-vi, -vi, vi, vi])
    if grounded_mask.any():
        node = np.where(a[grounded_mask] == GROUND, b[grounded_mask], a[grounded_mask])
        rows.append(node)
        cols.append(node)
        data.append(values[grounded_mask])
    if not rows:
        return sp.csc_matrix((n, n))
    matrix = sp.coo_matrix(
        (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    ).tocsc()
    matrix.sum_duplicates()
    return matrix


def build_mna(grid: PowerGrid) -> MNASystem:
    """Assemble the partitioned nodal system for ``grid``."""
    n = grid.num_nodes
    require(n > 0, "grid has no nodes")

    conductance = _laplacian_stamps(
        n, grid.res_a, grid.res_b, 1.0 / np.asarray(grid.res_ohms, dtype=np.float64)
        if grid.res_ohms
        else np.empty(0),
    )
    if grid.shunt_node:
        shunts = sp.coo_matrix(
            (
                np.asarray(grid.shunt_siemens, dtype=np.float64),
                (
                    np.asarray(grid.shunt_node, dtype=np.int64),
                    np.asarray(grid.shunt_node, dtype=np.int64),
                ),
            ),
            shape=(n, n),
        ).tocsc()
        conductance = (conductance + shunts).tocsc()

    capacitance = _laplacian_stamps(n, grid.cap_a, grid.cap_b, grid.cap_farads)

    pads = grid.pad_nodes()
    pinned = grid.pad_voltage_vector()
    pad_voltages = pinned[pads] if pads.size else np.empty(0)
    mask = np.ones(n, dtype=bool)
    mask[pads] = False
    unknown = np.flatnonzero(mask)
    return MNASystem(
        conductance=conductance,
        capacitance=capacitance,
        unknown=unknown,
        pads=pads,
        pad_voltages=pad_voltages,
        grid=grid,
    )
