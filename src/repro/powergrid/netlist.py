"""Power-grid netlist data model.

A :class:`PowerGrid` is an RC network in the style of the IBM power-grid
benchmarks:

* **resistors** between grid nodes (metal wires and vias) or from a node to
  ground (shunts);
* **capacitors** from nodes to ground (decap / parasitic; node-to-node
  coupling caps are supported by the MNA assembly as well);
* **voltage sources** that pin pad nodes to the supply (VDD pads) or to 0 V
  (GND-net pads);
* **current sources** that model switching-logic load (DC value plus an
  optional transient waveform).

Nodes are referenced by integer index internally; string names (e.g.
``n1_20706300_8937900``) are kept in a bidirectional mapping so SPICE files
round-trip and the Fig. 1 reproduction can address named nodes.

*Port nodes* — the nodes attached to a voltage or current source — are the
nodes the reduction of Alg. 1 must preserve exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.graph import Graph
from repro.powergrid.waveforms import Waveform
from repro.utils.validation import require

GROUND = -1
"""Sentinel node index for the external ground/reference node."""


@dataclass
class VoltageSource:
    """Ideal voltage source pinning ``node`` to ``voltage`` volts vs ground."""

    node: int
    voltage: float
    name: str = ""


@dataclass
class CurrentSource:
    """Current load at ``node``: ``dc`` amperes drawn from the node to ground.

    During transient analysis ``waveform`` (if given) supersedes ``dc``.
    Negative values *inject* current — used for GND-net return currents.
    """

    node: int
    dc: float
    waveform: "Waveform | None" = None
    name: str = ""

    def current_at(self, t) -> np.ndarray:
        """Drawn current at time(s) ``t``."""
        if self.waveform is None:
            return np.full_like(np.asarray(t, dtype=np.float64), self.dc)
        return self.waveform.value(t)


@dataclass
class PowerGrid:
    """Mutable RC power-grid netlist (see module docstring)."""

    node_names: list = field(default_factory=list)
    _index: dict = field(default_factory=dict)
    res_a: list = field(default_factory=list)
    res_b: list = field(default_factory=list)
    res_ohms: list = field(default_factory=list)
    shunt_node: list = field(default_factory=list)
    shunt_siemens: list = field(default_factory=list)
    cap_a: list = field(default_factory=list)
    cap_b: list = field(default_factory=list)
    cap_farads: list = field(default_factory=list)
    vsources: list = field(default_factory=list)
    isources: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def node(self, name: str) -> int:
        """Return the index for ``name``, creating the node if needed."""
        idx = self._index.get(name)
        if idx is None:
            idx = len(self.node_names)
            self.node_names.append(name)
            self._index[name] = idx
        return idx

    def index_of(self, name: str) -> int:
        """Index of an existing node (KeyError if absent)."""
        return self._index[name]

    def name_of(self, index: int) -> str:
        """Name of node ``index``."""
        return self.node_names[index]

    @property
    def num_nodes(self) -> int:
        """Number of grid nodes (ground excluded)."""
        return len(self.node_names)

    # ------------------------------------------------------------------
    # Element insertion
    # ------------------------------------------------------------------
    def add_resistor(self, a: int, b: int, ohms: float) -> None:
        """Resistor between nodes ``a`` and ``b`` (either may be GROUND)."""
        require(ohms > 0, "resistance must be positive")
        require(a != b, "resistor endpoints must differ")
        if b == GROUND or a == GROUND:
            node = a if b == GROUND else b
            self.shunt_node.append(node)
            self.shunt_siemens.append(1.0 / ohms)
        else:
            self.res_a.append(a)
            self.res_b.append(b)
            self.res_ohms.append(ohms)

    def add_capacitor(self, a: int, farads: float, b: int = GROUND) -> None:
        """Capacitor from ``a`` to ``b`` (default: ground)."""
        require(farads > 0, "capacitance must be positive")
        require(a != b, "capacitor endpoints must differ")
        self.cap_a.append(a)
        self.cap_b.append(b)
        self.cap_farads.append(farads)

    def add_vsource(self, node: int, volts: float, name: str = "") -> None:
        """Pin ``node`` to ``volts`` (a pad)."""
        require(node != GROUND, "cannot place a source on the ground node")
        self.vsources.append(VoltageSource(node=node, voltage=volts, name=name))

    def add_isource(
        self, node: int, amps: float, waveform: "Waveform | None" = None, name: str = ""
    ) -> None:
        """Current load drawing ``amps`` from ``node`` to ground."""
        require(node != GROUND, "cannot place a source on the ground node")
        self.isources.append(
            CurrentSource(node=node, dc=amps, waveform=waveform, name=name)
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def num_resistors(self) -> int:
        """Node-to-node resistors (shunts to ground excluded)."""
        return len(self.res_a)

    def port_nodes(self) -> np.ndarray:
        """Sorted unique nodes carrying a voltage or current source."""
        nodes = {vs.node for vs in self.vsources} | {cs.node for cs in self.isources}
        return np.asarray(sorted(nodes), dtype=np.int64)

    def pad_nodes(self) -> np.ndarray:
        """Sorted unique nodes pinned by voltage sources."""
        return np.asarray(sorted({vs.node for vs in self.vsources}), dtype=np.int64)

    def pad_voltage_vector(self) -> np.ndarray:
        """Pinned voltage for every node (NaN where not pinned)."""
        pinned = np.full(self.num_nodes, np.nan)
        for vs in self.vsources:
            pinned[vs.node] = vs.voltage
        return pinned

    def dc_load_vector(self) -> np.ndarray:
        """Per-node DC drawn current (amps, positive = load)."""
        load = np.zeros(self.num_nodes)
        for cs in self.isources:
            load[cs.node] += cs.dc
        return load

    def to_graph(self) -> Graph:
        """Resistor network as a conductance-weighted :class:`Graph`.

        Shunts, capacitors and sources are not part of the graph — this is
        the object Alg. 1 partitions, reduces and sparsifies.
        """
        heads = np.asarray(self.res_a, dtype=np.int64)
        tails = np.asarray(self.res_b, dtype=np.int64)
        weights = 1.0 / np.asarray(self.res_ohms, dtype=np.float64)
        return Graph(self.num_nodes, heads, tails, weights)

    def total_capacitance(self) -> float:
        """Sum of all capacitances (farads)."""
        return float(np.sum(self.cap_farads)) if self.cap_farads else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PowerGrid(nodes={self.num_nodes}, R={self.num_resistors}, "
            f"C={len(self.cap_a)}, V={len(self.vsources)}, I={len(self.isources)})"
        )
