"""Reader/writer for the IBM power-grid SPICE subset.

The IBM benchmarks (and the THU grids) use a tiny SPICE dialect::

    R<id> <node_a> <node_b> <ohms>
    C<id> <node_a> <node_b> <farads>
    V<id> <node> 0 <volts>
    I<id> <node> 0 <amps>                      (DC load)
    I<id> <node> 0 PULSE(v1 v2 td tr pw tf per)   (transient load)
    .op / .end / * comments

Node ``0`` is ground.  Engineering suffixes (``k``, ``m``, ``u``, ``n``,
``p``, ``f``, ``meg``) are understood.  :func:`read_spice` produces a
:class:`~repro.powergrid.netlist.PowerGrid`; :func:`write_spice` emits a
file the reader round-trips, so synthetic benchmarks can be exported for
external tools.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.powergrid.netlist import GROUND, PowerGrid
from repro.powergrid.waveforms import PulseWaveform, PWLWaveform

_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_NUMBER_RE = re.compile(r"^([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)(meg|[tgkmunpf])?$")


def parse_value(token: str) -> float:
    """Parse a SPICE number with optional engineering suffix."""
    match = _NUMBER_RE.match(token.strip().lower())
    if not match:
        raise ValueError(f"cannot parse SPICE value {token!r}")
    base = float(match.group(1))
    suffix = match.group(2)
    return base * _SUFFIXES[suffix] if suffix else base


def _parse_waveform(spec: str):
    """Parse ``PULSE(...)`` / ``PWL(...)`` argument strings."""
    spec = spec.strip()
    upper = spec.upper()
    inner = spec[spec.index("(") + 1 : spec.rindex(")")]
    values = [parse_value(tok) for tok in inner.replace(",", " ").split()]
    if upper.startswith("PULSE"):
        low, high, delay, rise, width, fall, period = values[:7]
        return PulseWaveform(
            low=low, high=high, delay=delay, rise=rise, width=width, fall=fall, period=period
        )
    if upper.startswith("PWL"):
        times = values[0::2]
        levels = values[1::2]
        return PWLWaveform(times=times, values=levels)
    raise ValueError(f"unsupported waveform {spec!r}")


def read_spice(path: "str | Path") -> PowerGrid:
    """Parse an IBM-PG-style SPICE file into a :class:`PowerGrid`."""
    grid = PowerGrid()

    def node_index(token: str) -> int:
        if token == "0":
            return GROUND
        return grid.node(token)

    with Path(path).open() as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("*"):
                continue
            if line.startswith("."):
                if line.lower().startswith((".op", ".end", ".tran")):
                    continue
                continue  # ignore other cards
            parts = line.split(None, 3)
            kind = parts[0][0].upper()
            if kind == "R":
                a, b = node_index(parts[1]), node_index(parts[2])
                ohms = parse_value(parts[3].split()[0])
                if ohms <= 0:  # short: IBM files use tiny values instead of 0
                    raise ValueError(f"nonpositive resistance in line: {line}")
                grid.add_resistor(a, b, ohms)
            elif kind == "C":
                a, b = node_index(parts[1]), node_index(parts[2])
                farads = parse_value(parts[3].split()[0])
                if a == GROUND:
                    a, b = b, a
                grid.add_capacitor(a, farads, b=b)
            elif kind == "V":
                node = node_index(parts[1]) if parts[1] != "0" else node_index(parts[2])
                volts = parse_value(parts[3].split()[0])
                grid.add_vsource(node, volts, name=parts[0])
            elif kind == "I":
                node_token, other = parts[1], parts[2]
                node = node_index(node_token) if node_token != "0" else node_index(other)
                sign = 1.0 if node_token != "0" else -1.0
                rest = parts[3].strip()
                if rest.upper().startswith(("PULSE", "PWL")):
                    waveform = _parse_waveform(rest)
                    dc = float(waveform.value(0.0))
                    grid.add_isource(node, sign * dc, waveform=waveform, name=parts[0])
                else:
                    grid.add_isource(
                        node, sign * parse_value(rest.split()[0]), name=parts[0]
                    )
            else:
                raise ValueError(f"unsupported SPICE card: {line}")
    return grid


def write_spice(grid: PowerGrid, path: "str | Path", title: str = "repro power grid") -> None:
    """Emit a SPICE file in the IBM-PG subset that :func:`read_spice` reads."""

    def node_token(index: int) -> str:
        return "0" if index == GROUND else grid.name_of(index)

    with Path(path).open("w") as handle:
        handle.write(f"* {title}\n")
        for i, (a, b, ohms) in enumerate(zip(grid.res_a, grid.res_b, grid.res_ohms)):
            handle.write(f"R{i} {node_token(a)} {node_token(b)} {ohms:.10g}\n")
        for i, (node, siemens) in enumerate(zip(grid.shunt_node, grid.shunt_siemens)):
            handle.write(f"Rg{i} {node_token(node)} 0 {1.0 / siemens:.10g}\n")
        for i, (a, b, farads) in enumerate(zip(grid.cap_a, grid.cap_b, grid.cap_farads)):
            handle.write(f"C{i} {node_token(a)} {node_token(b)} {farads:.10g}\n")
        for i, vs in enumerate(grid.vsources):
            handle.write(f"V{i} {node_token(vs.node)} 0 {vs.voltage:.10g}\n")
        for i, cs in enumerate(grid.isources):
            if cs.waveform is None:
                handle.write(f"I{i} {node_token(cs.node)} 0 {cs.dc:.10g}\n")
            else:
                wf = cs.waveform
                if isinstance(wf, PulseWaveform):
                    handle.write(
                        f"I{i} {node_token(cs.node)} 0 PULSE({wf.low:.10g} {wf.high:.10g} "
                        f"{wf.delay:.10g} {wf.rise:.10g} {wf.width:.10g} {wf.fall:.10g} "
                        f"{wf.period:.10g})\n"
                    )
                elif isinstance(wf, PWLWaveform):
                    pts = " ".join(
                        f"{t:.10g} {v:.10g}" for t, v in zip(wf.times, wf.values)
                    )
                    handle.write(f"I{i} {node_token(cs.node)} 0 PWL({pts})\n")
                else:
                    handle.write(f"I{i} {node_token(cs.node)} 0 {cs.dc:.10g}\n")
        handle.write(".op\n.end\n")
