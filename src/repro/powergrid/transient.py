"""Fixed-step Backward-Euler transient analysis.

Table II's protocol: "each case is simulated for 1000 fixed-size time steps
and both original models and reduced models are analyzed with the direct
solver (performing just once matrix factorization)".  Backward Euler on the
RC system ``C v̇ + G v = i(t)`` with step ``h`` gives::

    (G + C/h) v_{t+1} = (C/h) v_t + i(t+1)

Since ``h`` is fixed and pad voltages are constant, ``(G + C/h)`` restricted
to unknown nodes is factorised exactly once (SuperLU) and every step is a
pair of triangular solves — matching the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla

from repro.powergrid.dc import dc_analysis
from repro.powergrid.mna import MNASystem, build_mna
from repro.powergrid.netlist import PowerGrid
from repro.utils.timing import Timer
from repro.utils.validation import require


class _SourceBank:
    """Vectorised evaluation of every current source at a time point.

    Groups sources by waveform kind so a 1000-step simulation with
    thousands of pulse loads evaluates each step with a handful of numpy
    expressions instead of a Python loop per source.
    """

    def __init__(self, system: MNASystem):
        from repro.powergrid.waveforms import PulseWaveform, PWLWaveform

        n = system.num_nodes
        self.num_nodes = n
        const_nodes, const_values = [], []
        pulse_nodes, pulse_params = [], []
        other = []
        for source in system.grid.isources:
            wf = source.waveform
            if wf is None:
                const_nodes.append(source.node)
                const_values.append(source.dc)
            elif isinstance(wf, PulseWaveform):
                pulse_nodes.append(source.node)
                pulse_params.append(
                    (wf.low, wf.high, wf.delay, wf.rise, wf.width, wf.fall, wf.period)
                )
            else:
                other.append(source)
        self._const = np.zeros(n)
        if const_nodes:
            np.add.at(
                self._const,
                np.asarray(const_nodes, dtype=np.int64),
                -np.asarray(const_values),
            )
        self._pulse_nodes = np.asarray(pulse_nodes, dtype=np.int64)
        if pulse_nodes:
            params = np.asarray(pulse_params)
            (
                self._low,
                self._high,
                self._delay,
                self._rise,
                self._width,
                self._fall,
                self._period,
            ) = params.T
        self._other = other

    def injected(self, t: float) -> np.ndarray:
        """Injected current vector at time ``t`` (loads enter negatively)."""
        rhs = self._const.copy()
        if self._pulse_nodes.size:
            local = np.mod(t - self._delay, self._period)
            local = np.where(t < self._delay, -1.0, local)  # before delay: low
            drawn = self._low.copy()
            rising = (local >= 0) & (local < self._rise)
            drawn = np.where(
                rising,
                self._low + (self._high - self._low) * local / self._rise,
                drawn,
            )
            flat = (local >= self._rise) & (local < self._rise + self._width)
            drawn = np.where(flat, self._high, drawn)
            t_fall = local - self._rise - self._width
            falling = (t_fall >= 0) & (t_fall < self._fall)
            drawn = np.where(
                falling,
                self._high - (self._high - self._low) * t_fall / self._fall,
                drawn,
            )
            np.add.at(rhs, self._pulse_nodes, -drawn)
        for source in self._other:
            rhs[source.node] -= float(source.current_at(t))
        return rhs


@dataclass
class TransientResult:
    """Waveforms of a transient run.

    Attributes
    ----------
    times:
        Time points ``t_1 .. t_T`` (the initial DC point is ``times[0]-h``).
    voltages:
        ``(num_observed, T)`` array of node voltage waveforms.
    observed:
        Node indices corresponding to the rows of ``voltages``.
    timer:
        Stage timings (assemble / factorize / steps).
    """

    times: np.ndarray
    voltages: np.ndarray
    observed: np.ndarray
    timer: Timer

    def waveform_of(self, node: int) -> np.ndarray:
        """Waveform of an observed node (by grid node index)."""
        hits = np.flatnonzero(self.observed == node)
        require(hits.size == 1, f"node {node} was not observed")
        return self.voltages[hits[0]]


def transient_analysis(
    grid: "PowerGrid | MNASystem",
    step: float,
    num_steps: int = 1000,
    observe: "np.ndarray | None" = None,
) -> TransientResult:
    """Run Backward-Euler transient analysis.

    Parameters
    ----------
    grid:
        Power grid or a pre-assembled MNA system.
    step:
        Fixed time step ``h`` in seconds.
    num_steps:
        Number of steps (paper: 1000).
    observe:
        Node indices whose waveforms to record; default: all nodes.

    Notes
    -----
    The initial condition is the DC operating point with sources at their
    ``t = 0`` values — grids start in steady state, as in the benchmarks.
    """
    require(step > 0, "time step must be positive")
    require(num_steps >= 1, "need at least one step")
    timer = Timer()
    if isinstance(grid, MNASystem):
        system = grid
    else:
        with timer.section("assemble"):
            system = build_mna(grid)

    unknown = system.unknown
    if observe is None:
        observe = np.arange(system.num_nodes, dtype=np.int64)
    else:
        observe = np.asarray(observe, dtype=np.int64)

    with timer.section("factorize"):
        g_uu = system.g_uu()
        c_uu = system.c_uu() / step
        solver = spla.splu((g_uu + c_uu).tocsc())

    # initial state: DC solve at t = 0 source values
    with timer.section("dc_init"):
        dc = dc_analysis(system)
        v_full = dc.voltages.copy()
    pad_term = system.g_uk_vk()
    # note: the C_UK (v_K(t+1) − v_K(t))/h coupling term vanishes because pad
    # voltages are constant, so only the conductance pad term remains.

    times = step * np.arange(1, num_steps + 1)
    voltages = np.empty((observe.shape[0], num_steps))
    v_u = v_full[unknown]
    bank = _SourceBank(system)
    with timer.section("steps"):
        for idx, t in enumerate(times):
            rhs = c_uu @ v_u
            rhs += bank.injected(float(t))[unknown]
            rhs -= pad_term
            v_u = solver.solve(rhs)
            v_full[unknown] = v_u
            voltages[:, idx] = v_full[observe]
    return TransientResult(times=times, voltages=voltages, observed=observe, timer=timer)
