"""Netlist sanity checking — a production power-grid flow's first step.

Real benchmark files (and generated grids) can contain defects that make
analysis results silently wrong: nodes with no DC path to any pad, loads
on floating islands, pads shorted to each other with conflicting voltages.
:func:`validate_power_grid` finds them all and returns a structured report
the CLI and the reduction pipeline can surface before solving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.components import connected_components
from repro.powergrid.netlist import PowerGrid


@dataclass
class ValidationReport:
    """Findings of a netlist check (all lists hold node indices)."""

    num_nodes: int
    num_components: int
    floating_nodes: list = field(default_factory=list)
    floating_loads: list = field(default_factory=list)
    conflicting_pads: list = field(default_factory=list)
    isolated_nodes: list = field(default_factory=list)
    extreme_resistance_ratio: float = 1.0

    @property
    def ok(self) -> bool:
        """True when nothing blocking analysis was found."""
        return not (self.floating_nodes or self.floating_loads or self.conflicting_pads)

    def summary(self) -> str:
        """One-paragraph human-readable verdict."""
        if self.ok:
            return (
                f"OK: {self.num_nodes} nodes in {self.num_components} net(s); "
                f"resistance spread {self.extreme_resistance_ratio:.1e}"
            )
        problems = []
        if self.floating_nodes:
            problems.append(f"{len(self.floating_nodes)} node(s) without a DC path to any pad")
        if self.floating_loads:
            problems.append(f"{len(self.floating_loads)} current source(s) on floating nodes")
        if self.conflicting_pads:
            problems.append(
                f"{len(self.conflicting_pads)} node(s) pinned to conflicting voltages"
            )
        return "PROBLEMS: " + "; ".join(problems)


def validate_power_grid(grid: PowerGrid) -> ValidationReport:
    """Check a power grid for the defects described in the module docstring."""
    graph = grid.to_graph()
    labels, count = connected_components(graph)

    # components electrically tied to a pad (directly or through shunts —
    # a shunt provides a DC path to ground, which is a valid return)
    anchored = np.zeros(count, dtype=bool)
    for vs in grid.vsources:
        anchored[labels[vs.node]] = True
    for node in grid.shunt_node:
        anchored[labels[node]] = True

    floating_nodes = [
        int(v) for v in range(grid.num_nodes) if not anchored[labels[v]]
    ]
    floating_set = set(floating_nodes)
    floating_loads = [cs.node for cs in grid.isources if cs.node in floating_set]

    # conflicting pads: one node pinned to two different voltages
    pinned: dict[int, float] = {}
    conflicting = []
    for vs in grid.vsources:
        existing = pinned.get(vs.node)
        if existing is not None and not np.isclose(existing, vs.voltage):
            conflicting.append(vs.node)
        pinned[vs.node] = vs.voltage

    degrees = np.zeros(grid.num_nodes)
    if graph.num_edges:
        np.add.at(degrees, graph.heads, 1.0)
        np.add.at(degrees, graph.tails, 1.0)
    for node in grid.shunt_node:
        degrees[node] += 1.0
    isolated = [int(v) for v in np.flatnonzero(degrees == 0)]

    ohms = np.asarray(grid.res_ohms, dtype=np.float64)
    ratio = float(ohms.max() / ohms.min()) if ohms.size else 1.0

    return ValidationReport(
        num_nodes=grid.num_nodes,
        num_components=count,
        floating_nodes=floating_nodes,
        floating_loads=floating_loads,
        conflicting_pads=sorted(set(conflicting)),
        isolated_nodes=isolated,
        extreme_resistance_ratio=ratio,
    )
