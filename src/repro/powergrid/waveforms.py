"""Time-dependent source waveforms for transient analysis.

IBM power-grid transient benchmarks drive the grid with pulse-like current
sources.  Two concrete waveforms cover the needs of the reproduction:

* :class:`PWLWaveform` — piece-wise linear, the SPICE ``PWL(...)`` form;
* :class:`PulseWaveform` — the SPICE ``PULSE(...)`` trapezoid train.

Waveforms are vectorised: ``value(t)`` accepts scalars or arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require


class Waveform:
    """Base class: a time-dependent scalar signal."""

    def value(self, t):
        """Evaluate the waveform at time(s) ``t`` (scalar or array)."""
        raise NotImplementedError

    def __call__(self, t):
        return self.value(t)


@dataclass(frozen=True)
class ConstantWaveform(Waveform):
    """A DC value, usable wherever a waveform is expected."""

    level: float

    def value(self, t):
        t = np.asarray(t, dtype=np.float64)
        return np.full_like(t, self.level, dtype=np.float64)


@dataclass(frozen=True)
class PWLWaveform(Waveform):
    """Piece-wise linear waveform through ``(times, values)`` breakpoints.

    Before the first breakpoint the waveform holds the first value; after
    the last it holds the last value — SPICE ``PWL`` semantics.
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        times = np.asarray(self.times, dtype=np.float64)
        values = np.asarray(self.values, dtype=np.float64)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)
        require(times.shape == values.shape, "times and values must match")
        require(times.size >= 1, "PWL needs at least one breakpoint")
        require(bool(np.all(np.diff(times) > 0)), "PWL times must increase")

    def value(self, t):
        return np.interp(np.asarray(t, dtype=np.float64), self.times, self.values)


@dataclass(frozen=True)
class PulseWaveform(Waveform):
    """SPICE ``PULSE(v1 v2 delay rise width fall period)`` trapezoid train."""

    low: float
    high: float
    delay: float = 0.0
    rise: float = 1e-12
    width: float = 1e-9
    fall: float = 1e-12
    period: float = 2e-9

    def __post_init__(self):
        require(self.rise > 0 and self.fall > 0, "rise/fall must be positive")
        require(
            self.period >= self.rise + self.width + self.fall,
            "period must contain rise + width + fall",
        )

    def value(self, t):
        t = np.asarray(t, dtype=np.float64)
        local = np.mod(t - self.delay, self.period)
        local = np.where(t < self.delay, -1.0, local)  # before delay: low
        out = np.full_like(local, self.low)
        rising = (local >= 0) & (local < self.rise)
        out = np.where(
            rising, self.low + (self.high - self.low) * local / self.rise, out
        )
        flat = (local >= self.rise) & (local < self.rise + self.width)
        out = np.where(flat, self.high, out)
        t_fall = local - self.rise - self.width
        falling = (t_fall >= 0) & (t_fall < self.fall)
        out = np.where(
            falling, self.high - (self.high - self.low) * t_fall / self.fall, out
        )
        return out
