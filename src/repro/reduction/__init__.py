"""Alg. 1 — graph-sparsification-based power-grid reduction.

Modules:

* :mod:`repro.reduction.schur` — exact elimination of non-port interior
  nodes per block (step 2), with current-redistribution and capacitance
  lumping maps;
* :mod:`repro.reduction.port_merge` — effective-resistance-based merging of
  electrically-near nodes (step 4a);
* :mod:`repro.reduction.sparsify` — Spielman–Srivastava effective-resistance
  sampling sparsification (step 4b);
* :mod:`repro.reduction.stitch` — reassembly of reduced blocks plus the
  untouched cross-block edges (step 5);
* :mod:`repro.reduction.pipeline` — the orchestrating :class:`PGReducer`
  with the pluggable effective-resistance backend ("exact" /
  "random_projection" / "cholinv" — the three columns of Table II).
"""

from repro.reduction.pipeline import PGReducer, ReducedGrid, ReductionConfig
from repro.reduction.port_merge import merge_by_effective_resistance
from repro.reduction.quality import QualityReport, assess_reduction_quality
from repro.reduction.schur import SchurReduction, schur_reduce
from repro.reduction.sparsify import spielman_srivastava_sparsify

__all__ = [
    "PGReducer",
    "ReducedGrid",
    "ReductionConfig",
    "schur_reduce",
    "SchurReduction",
    "merge_by_effective_resistance",
    "spielman_srivastava_sparsify",
    "assess_reduction_quality",
    "QualityReport",
]
