"""Alg. 1 orchestration — graph-sparsification-based PG reduction.

The :class:`PGReducer` runs the five steps of Alg. 1 on a
:class:`~repro.powergrid.netlist.PowerGrid`:

1. partition the resistor graph into ``#ports / ports_per_block`` blocks
   and classify nodes (port / non-port interface / non-port interior);
2. per block: eliminate the interior nodes exactly with the Schur
   complement (interior capacitance and any interior loads are pushed to
   the kept nodes through the current-divider map);
3. per reduced block: compute effective resistances for every edge with the
   **pluggable backend** — ``"exact"`` (batched triangular solves per edge,
   the accurate-but-slow reference), ``"random_projection"`` (WWW'15), or
   ``"cholinv"`` (the paper's Alg. 3);
4. merge electrically-near non-port nodes, then sparsify the dense block by
   effective-resistance sampling;
5. stitch the sparsified blocks together with the untouched cross-block
   edges, rebuild a reduced :class:`PowerGrid` carrying all ports.

Per-block results are cached so the DC *incremental* application can
re-reduce only the blocks a designer modified (Table II lower half).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import build_engine, config_from_kwargs, registered_engines
from repro.graphs.graph import Graph
from repro.graphs.laplacian import laplacian
from repro.partition.interface import NodeRole, classify_nodes, partition_graph
from repro.powergrid.netlist import PowerGrid
from repro.reduction.port_merge import merge_by_effective_resistance
from repro.reduction.schur import laplacian_to_edges, schur_reduce
from repro.reduction.sparsify import spielman_srivastava_sparsify
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import require


@dataclass(frozen=True)
class ReductionConfig:
    """Knobs of Alg. 1.

    Attributes
    ----------
    er_method:
        Any registered engine name — ``"exact"``, ``"random_projection"``
        and ``"cholinv"`` are the three scenarios of Table II.
    er_kwargs:
        Extra keyword arguments for the chosen estimator (e.g. ``epsilon``,
        ``drop_tol`` for cholinv; ``num_projections`` for the baseline).
    ports_per_block:
        Alg. 1 sets ``#blocks = #ports / 50``; this is the 50.
    num_blocks:
        Explicit override of the block count.
    partition_method:
        Passed to :func:`repro.partition.interface.partition_graph`.
    merge_resistance_fraction:
        Merge edges whose effective resistance is below this fraction of
        the block's median edge resistance (0 disables merging).
    protect_all_ports:
        ``True`` (default) reproduces the paper's *modified* Alg. 1: every
        port survives.  ``False`` reproduces the original behaviour of [8]:
        current-source ports may merge with each other (their loads
        aggregate on the representative); pad (voltage-source) nodes are
        always preserved.
    sparsify_sample_factor:
        ``q = factor · n · ln n`` samples per block.
    seed:
        Seed for partitioning, sampling and the baseline's projections.
    """

    er_method: str = "cholinv"
    er_kwargs: dict = field(default_factory=dict)
    ports_per_block: int = 50
    num_blocks: "int | None" = None
    partition_method: str = "multilevel"
    merge_resistance_fraction: float = 0.05
    protect_all_ports: bool = True
    sparsify_sample_factor: float = 8.0
    seed: "int | None" = 0

    def __post_init__(self):
        require(
            self.er_method in registered_engines(),
            f"unknown er_method {self.er_method!r}",
        )


@dataclass
class BlockReduction:
    """Cached artefacts of one reduced block (in original node ids)."""

    block_id: int
    kept_nodes: np.ndarray  # original node ids kept by this block
    heads: np.ndarray  # original node ids (both endpoints kept)
    tails: np.ndarray
    conductances: np.ndarray
    shunts: np.ndarray  # per kept node, conductance to ground
    lumped_caps: np.ndarray  # per kept node, redistributed capacitance
    merged_away: np.ndarray  # original node ids merged into other nodes
    merge_target: np.ndarray  # same length: the absorbing original node id
    dropped: np.ndarray  # floating interior nodes
    er_time: float
    total_time: float


@dataclass
class ReducedGrid:
    """The stitched reduced power grid plus bookkeeping.

    Attributes
    ----------
    grid:
        Reduced :class:`PowerGrid`.
    node_map:
        ``node_map[original] = reduced index`` or ``-1`` for eliminated
        nodes.
    redirect:
        Merge redirection: ``redirect[original]`` is the surviving original
        node standing in for ``original`` (identity when nothing merged).
        With ``protect_all_ports=True`` every port redirects to itself.
    timer:
        Stage timings; ``timer.total`` is the paper's ``Tred``.
    """

    grid: PowerGrid
    node_map: np.ndarray
    redirect: np.ndarray
    timer: Timer

    def reduced_index_of(self, nodes) -> np.ndarray:
        """Reduced-grid index answering for each original node.

        Follows merge redirections, so a port absorbed by another port
        (``protect_all_ports=False``) maps to its representative.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        idx = self.node_map[self.redirect[nodes]]
        require(bool(np.all(idx >= 0)), "node was eliminated without a representative")
        return idx

    def port_voltage_errors(
        self, original_voltages: np.ndarray, reduced_voltages: np.ndarray, ports: np.ndarray
    ) -> np.ndarray:
        """Absolute port-voltage differences original vs reduced."""
        reduced_idx = self.reduced_index_of(ports)
        return np.abs(original_voltages[ports] - reduced_voltages[reduced_idx])


class PGReducer:
    """Run Alg. 1 on a power grid (see module docstring)."""

    def __init__(self, grid: PowerGrid, config: "ReductionConfig | None" = None):
        self.pg = grid
        self.config = config or ReductionConfig()
        self.graph = grid.to_graph()
        self.ports = grid.port_nodes()
        require(self.ports.size > 0, "grid has no ports — nothing to preserve")
        self.rng = ensure_rng(self.config.seed)

        num_blocks = self.config.num_blocks
        if num_blocks is None:
            num_blocks = max(1, self.ports.size // self.config.ports_per_block)
        self.num_blocks = int(num_blocks)
        self.timer = Timer()
        with self.timer.section("partition"):
            self.labels = partition_graph(
                self.graph,
                self.num_blocks,
                method=self.config.partition_method,
                seed=self.rng,
            )
            self.roles = classify_nodes(self.graph, self.labels, self.ports)
        self._block_cache: dict[int, BlockReduction] = {}
        # per-node shunts / caps of the ORIGINAL grid, for lumping
        self._node_caps = np.zeros(grid.num_nodes)
        for a, b, farads in zip(grid.cap_a, grid.cap_b, grid.cap_farads):
            # ground caps dominate PG models; coupling caps contribute to both ends
            self._node_caps[a] += farads
            if b >= 0:
                self._node_caps[b] += farads
        self._node_shunts = np.zeros(grid.num_nodes)
        for node, siemens in zip(grid.shunt_node, grid.shunt_siemens):
            self._node_shunts[node] += siemens

    # ------------------------------------------------------------------
    def _block_nodes(self, block_id: int) -> np.ndarray:
        return np.flatnonzero(self.labels == block_id)

    def _edge_resistances(self, graph: Graph, timer: Timer) -> np.ndarray:
        """Dispatch to the configured effective-resistance backend."""
        kwargs = dict(self.config.er_kwargs)
        # randomised engines share the pipeline RNG; EngineConfig defaults
        # already match the paper settings (epsilon/drop_tol 1e-3, amd)
        kwargs.setdefault("seed", self.rng)
        with timer.section("effective_resistance"):
            estimator = build_engine(
                graph, config_from_kwargs(self.config.er_method, **kwargs)
            )
            return estimator.all_edge_resistances()

    def reduce_block(self, block_id: int) -> BlockReduction:
        """Steps 2–4 of Alg. 1 for one block (cached)."""
        cached = self._block_cache.get(block_id)
        if cached is not None:
            return cached
        timer = Timer()
        with timer.section("schur"):
            nodes = self._block_nodes(block_id)
            keep_mask = self.roles[nodes] != int(NodeRole.INTERIOR)
            # internal edges of this block
            sub, original = self.graph.subgraph(nodes)
            block_matrix = laplacian(sub).tolil()
            shunts_here = self._node_shunts[nodes]
            if shunts_here.any():
                block_matrix.setdiag(block_matrix.diagonal() + shunts_here)
            keep_local = np.flatnonzero(keep_mask)
            if keep_local.size == 0:
                # block with no ports/interface (isolated island): keep one
                # representative node so its mass is not lost silently
                keep_local = np.array([0], dtype=np.int64)
            reduction = schur_reduce(block_matrix.tocsc(), keep_local)
            heads_l, tails_l, conductances, shunts = laplacian_to_edges(reduction.reduced)
            caps = reduction.lump_values(self._node_caps[nodes])
            kept_original = original[reduction.keep]
            dropped = original[reduction.dropped] if reduction.dropped.size else np.empty(0, np.int64)

        block_graph = Graph(kept_original.size, heads_l, tails_l, conductances).coalesce() \
            if heads_l.size else Graph(kept_original.size, heads_l, tails_l, conductances)

        merged_away = np.empty(0, dtype=np.int64)
        merge_target = np.empty(0, dtype=np.int64)
        er_time = 0.0
        if block_graph.num_edges > 0 and kept_original.size > 2:
            resistances = self._edge_resistances(block_graph, timer)
            er_time = timer.times.get("effective_resistance", 0.0)

            with timer.section("merge_sparsify"):
                if self.config.merge_resistance_fraction > 0:
                    finite = resistances[np.isfinite(resistances)]
                    threshold = (
                        self.config.merge_resistance_fraction * float(np.median(finite))
                        if finite.size
                        else 0.0
                    )
                    if self.config.protect_all_ports:
                        protect_ids = self.ports
                    else:
                        # original [8] behaviour: only pads are sacred;
                        # current-source ports may merge together
                        protect_ids = self.pg.pad_nodes()
                    protected_local = np.flatnonzero(
                        np.isin(kept_original, protect_ids)
                    )
                    merged = merge_by_effective_resistance(
                        block_graph, resistances, threshold, protected=protected_local
                    )
                    if merged.merged_count:
                        # track which original nodes vanished and into whom;
                        # a cluster's representative is its port if it has
                        # one (ports never merge together), else lowest id
                        new_of_old = merged.mapping
                        is_port = np.isin(kept_original, self.ports)
                        representatives = self._cluster_representatives(
                            new_of_old, kept_original, is_port
                        )
                        gone_mask = representatives[new_of_old] != kept_original
                        merged_away = kept_original[gone_mask]
                        merge_target = representatives[new_of_old[gone_mask]]
                        # fold shunts and caps of merged nodes into targets
                        shunts = np.bincount(
                            new_of_old, weights=shunts, minlength=merged.graph.num_nodes
                        )
                        caps = np.bincount(
                            new_of_old, weights=caps, minlength=merged.graph.num_nodes
                        )
                        block_graph = merged.graph
                        kept_original = representatives
                        # resistances refer to pre-merge edges; recompute scores
                        resistances = self._edge_resistances(block_graph, timer)

                sparsified = spielman_srivastava_sparsify(
                    block_graph,
                    resistances,
                    sample_factor=self.config.sparsify_sample_factor,
                    seed=self.rng,
                )
                block_graph = sparsified.graph

        result = BlockReduction(
            block_id=block_id,
            kept_nodes=kept_original,
            heads=kept_original[block_graph.heads],
            tails=kept_original[block_graph.tails],
            conductances=block_graph.weights,
            shunts=shunts if kept_original.size else np.empty(0),
            lumped_caps=caps if kept_original.size else np.empty(0),
            merged_away=merged_away,
            merge_target=merge_target,
            dropped=dropped,
            er_time=er_time,
            total_time=timer.total,
        )
        self._block_cache[block_id] = result
        return result

    @staticmethod
    def _cluster_representatives(
        mapping: np.ndarray, original_ids: np.ndarray, is_port: np.ndarray
    ) -> np.ndarray:
        """Pick one original id per merge cluster: its port if any, else
        the lowest original id."""
        num_clusters = int(mapping.max()) + 1 if mapping.size else 0
        # ports get priority by keying below every non-port
        offset = np.int64(original_ids.max()) + 1 if original_ids.size else np.int64(1)
        keys = np.where(is_port, original_ids, original_ids + offset)
        best = np.full(num_clusters, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(best, mapping, keys)
        return np.where(best >= offset, best - offset, best)

    # ------------------------------------------------------------------
    def invalidate_blocks(self, block_ids) -> None:
        """Forget cached reductions (used by incremental analysis)."""
        for b in block_ids:
            self._block_cache.pop(int(b), None)

    def rebuild_for(self, new_grid: PowerGrid, modified_blocks) -> "PGReducer":
        """Clone this reducer for an incrementally-modified grid.

        The new grid must have identical topology (same nodes, same
        resistor endpoints) — only element values may differ.  The clone
        shares the partition, node roles and every cached block reduction
        except the ``modified_blocks``, so its :meth:`reduce` performs only
        the incremental work (Table II lower half measures exactly that).
        """
        require(
            new_grid.num_nodes == self.pg.num_nodes,
            "incremental update requires identical node sets",
        )
        clone = PGReducer.__new__(PGReducer)
        clone.pg = new_grid
        clone.config = self.config
        clone.graph = new_grid.to_graph()
        clone.ports = new_grid.port_nodes()
        clone.rng = self.rng
        clone.num_blocks = self.num_blocks
        clone.timer = Timer()
        clone.labels = self.labels
        clone.roles = self.roles
        clone._block_cache = dict(self._block_cache)
        clone.invalidate_blocks(modified_blocks)
        clone._node_caps = np.zeros(new_grid.num_nodes)
        for a, b, farads in zip(new_grid.cap_a, new_grid.cap_b, new_grid.cap_farads):
            clone._node_caps[a] += farads
            if b >= 0:
                clone._node_caps[b] += farads
        clone._node_shunts = np.zeros(new_grid.num_nodes)
        for node, siemens in zip(new_grid.shunt_node, new_grid.shunt_siemens):
            clone._node_shunts[node] += siemens
        return clone

    def reduce(self) -> ReducedGrid:
        """Run the full Alg. 1 and return the stitched reduced grid."""
        with self.timer.section("blocks"):
            blocks = [self.reduce_block(b) for b in range(self.num_blocks)]
        with self.timer.section("stitch"):
            reduced = self._stitch(blocks)
        return reduced

    # ------------------------------------------------------------------
    def _stitch(self, blocks: "list[BlockReduction]") -> ReducedGrid:
        """Step 5: assemble reduced blocks + cross-block edges."""
        from repro.reduction.stitch import stitch_blocks

        return stitch_blocks(self, blocks)
