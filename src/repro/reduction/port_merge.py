"""Effective-resistance-based node merging (Alg. 1 step 4a).

Nodes that are electrically almost indistinguishable — connected through a
path of *tiny* effective resistance — can be collapsed into one without
visibly changing port behaviour.  Following [8], candidate pairs are the
edges of the (reduced) block whose effective resistance falls below a
threshold; a union-find pass merges them, with the constraint that two
*protected* nodes (ports, whose identity must survive per the modified
Alg. 1) are never merged with each other.

The merged graph accumulates parallel conductances; the mapping array lets
the pipeline redirect sources, capacitors and cross-block edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph


class _UnionFind:
    """Union-find with protection-aware union (ports absorb non-ports)."""

    def __init__(self, n: int, protected: np.ndarray):
        self.parent = np.arange(n, dtype=np.int64)
        self.protected = np.zeros(n, dtype=bool)
        self.protected[protected] = True

    def find(self, v: int) -> int:
        root = v
        while self.parent[root] != root:
            root = int(self.parent[root])
        while self.parent[v] != root:
            self.parent[v], v = root, int(self.parent[v])
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.protected[ra] and self.protected[rb]:
            return False  # never merge two ports
        # the protected root (if any) absorbs the other
        if self.protected[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        return True


@dataclass
class MergeResult:
    """Outcome of a merging pass.

    Attributes
    ----------
    graph:
        The merged graph (parallel conductances coalesced).
    mapping:
        ``mapping[old] = new`` node index (new ids are compact ``0..n'-1``).
    merged_count:
        Number of nodes eliminated by merging.
    """

    graph: Graph
    mapping: np.ndarray
    merged_count: int


def merge_by_effective_resistance(
    graph: Graph,
    edge_resistances: np.ndarray,
    threshold: float,
    protected: "np.ndarray | None" = None,
) -> MergeResult:
    """Merge endpoint pairs of edges with ``R_eff(e) <= threshold``.

    Parameters
    ----------
    graph:
        Weighted graph (conductances).
    edge_resistances:
        Effective resistance of each edge (any estimator's output).
    threshold:
        Absolute merge threshold; pairs at or below it collapse.
    protected:
        Nodes (ports) whose mutual identity is preserved: two protected
        nodes never merge together, but a protected node absorbs
        unprotected neighbours.
    """
    edge_resistances = np.asarray(edge_resistances, dtype=np.float64)
    if protected is None:
        protected = np.empty(0, dtype=np.int64)
    uf = _UnionFind(graph.num_nodes, np.asarray(protected, dtype=np.int64))

    candidates = np.flatnonzero(edge_resistances <= threshold)
    # process the electrically-closest pairs first so chains collapse greedily
    for e in candidates[np.argsort(edge_resistances[candidates])]:
        uf.union(int(graph.heads[e]), int(graph.tails[e]))

    roots = np.array([uf.find(v) for v in range(graph.num_nodes)], dtype=np.int64)
    unique_roots, mapping = np.unique(roots, return_inverse=True)
    # merging turns intra-cluster edges into self loops — drop them, then
    # coalesce the parallel edges the collapse created
    keep = mapping[graph.heads] != mapping[graph.tails]
    merged_graph = Graph(
        int(unique_roots.size),
        mapping[graph.heads[keep]],
        mapping[graph.tails[keep]],
        graph.weights[keep],
    ).coalesce()
    return MergeResult(
        graph=merged_graph,
        mapping=mapping,
        merged_count=graph.num_nodes - int(unique_roots.size),
    )
