"""Reduced-model quality assessment across load corners.

A reduced power grid is only trustworthy if it tracks the original under
*different* excitations than the one it was verified on.  This module
re-solves original and reduced models under randomly scaled load corners
(the standard sign-off practice) and reports the port-error distribution —
used by the examples and by integration tests to confirm Alg. 3-based
reduction generalises beyond the nominal load vector.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.powergrid.dc import dc_analysis, max_voltage_drop
from repro.powergrid.netlist import PowerGrid
from repro.reduction.pipeline import ReducedGrid
from repro.utils.rng import ensure_rng


@dataclass
class QualityReport:
    """Port-error statistics over sampled load corners."""

    corner_mean_errors: np.ndarray  # mean |ΔV| per corner (volts)
    corner_max_errors: np.ndarray  # max |ΔV| per corner (volts)
    corner_rel_errors: np.ndarray  # mean error / max drop per corner

    @property
    def worst_rel_error(self) -> float:
        """Largest relative error over all corners."""
        return float(self.corner_rel_errors.max())

    @property
    def mean_rel_error(self) -> float:
        """Average relative error over corners."""
        return float(self.corner_rel_errors.mean())

    def summary(self) -> str:
        """Short human-readable verdict."""
        return (
            f"{self.corner_rel_errors.size} corners: "
            f"mean rel err {self.mean_rel_error:.2%}, "
            f"worst {self.worst_rel_error:.2%}"
        )


def _scale_loads(grid: PowerGrid, factors: np.ndarray) -> PowerGrid:
    """Copy of ``grid`` with per-source load scaling applied."""
    scaled = copy.deepcopy(grid)
    for source, factor in zip(scaled.isources, factors):
        source.dc *= float(factor)
    return scaled


def assess_reduction_quality(
    original: PowerGrid,
    reduced: ReducedGrid,
    num_corners: int = 5,
    load_span: "tuple[float, float]" = (0.25, 2.0),
    seed=0,
) -> QualityReport:
    """Compare original vs reduced DC solutions over random load corners.

    Parameters
    ----------
    original:
        The unreduced power grid.
    reduced:
        Output of :meth:`repro.reduction.pipeline.PGReducer.reduce` built
        from ``original``.
    num_corners:
        Number of random corners to evaluate.
    load_span:
        Uniform scaling range applied independently per current source.
    """
    rng = ensure_rng(seed)
    ports = original.port_nodes()
    mean_errors = np.empty(num_corners)
    max_errors = np.empty(num_corners)
    rel_errors = np.empty(num_corners)
    for corner in range(num_corners):
        factors = rng.uniform(load_span[0], load_span[1], size=len(original.isources))
        corner_original = _scale_loads(original, factors)
        corner_reduced_grid = _scale_loads(reduced.grid, factors)
        truth = dc_analysis(corner_original)
        approx = dc_analysis(corner_reduced_grid)
        errors = reduced.port_voltage_errors(truth.voltages, approx.voltages, ports)
        mean_errors[corner] = errors.mean()
        max_errors[corner] = errors.max()
        drop = max_voltage_drop(corner_original, truth.voltages)
        rel_errors[corner] = errors.mean() / drop if drop > 0 else 0.0
    return QualityReport(
        corner_mean_errors=mean_errors,
        corner_max_errors=max_errors,
        corner_rel_errors=rel_errors,
    )
