"""Schur-complement elimination of interior nodes (Alg. 1 step 2).

For a block with kept nodes ``K`` (ports + interface) and eliminated
interior nodes ``E``, the block Laplacian partitions as::

    [A_EE  A_EK] [v_E]   [b_E]
    [A_KE  A_KK] [v_K] = [b_K]

Eliminating ``v_E`` exactly gives the reduced system::

    S v_K = b_K − Xᵀ b_E,     S = A_KK − A_KEX,     X = A_EE⁻¹ A_EK

``S`` is again a Laplacian (plus any shunt mass that was on interior
nodes), and ``−X ≥ 0`` with column sums ≤ 1 — a *current divider*: it
redistributes interior current loads and (by the same weights) interior
capacitance onto the kept nodes.  Reduction before sparsification is exact
for DC port voltages; a test asserts that property.

Floating interior components (no path to any kept node) have undefined
voltage and carry no sources; they are detected and dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.sparse.csgraph import connected_components as _cc

from repro.utils.validation import require


@dataclass
class SchurReduction:
    """Result of eliminating ``eliminated`` nodes from a block matrix.

    Attributes
    ----------
    reduced:
        Dense Schur complement ``S`` over the kept nodes.
    keep:
        Kept node ids (in the indexing of the input matrix).
    eliminated:
        Interior node ids that were eliminated.
    dropped:
        Floating interior nodes that were discarded.
    divider:
        Current-divider matrix ``W = −X`` of shape
        ``(len(eliminated), len(keep))``; ``W[e, k]`` is the share of node
        ``e``'s current (or capacitance) that lands on kept node ``k``.
    """

    reduced: np.ndarray
    keep: np.ndarray
    eliminated: np.ndarray
    dropped: np.ndarray
    divider: np.ndarray

    def reduce_rhs(self, rhs: np.ndarray) -> np.ndarray:
        """Map a full-block RHS to the reduced system: ``b_K + Wᵀ b_E``."""
        out = rhs[self.keep].astype(np.float64).copy()
        if self.eliminated.size:
            out += self.divider.T @ rhs[self.eliminated]
        return out

    def lump_values(self, values: np.ndarray) -> np.ndarray:
        """Redistribute per-node quantities (e.g. capacitance) to kept nodes."""
        out = values[self.keep].astype(np.float64).copy()
        if self.eliminated.size:
            out += self.divider.T @ values[self.eliminated]
        return out

    def recover_interior(self, v_keep: np.ndarray, rhs_interior: "np.ndarray | None" = None):
        """Back-substitute interior voltages: ``v_E = W v_K + A_EE⁻¹ b_E``.

        Only available when the reduction kept its interior solve operator;
        the pipeline does not need it, but tests use it to verify exactness.
        """
        v = self.divider @ v_keep
        if rhs_interior is not None and self._interior_solver is not None:
            v += self._interior_solver(rhs_interior)
        return v

    _interior_solver = None  # populated by schur_reduce when requested


def schur_reduce(
    matrix: sp.spmatrix,
    keep: np.ndarray,
    keep_interior_solver: bool = False,
) -> SchurReduction:
    """Eliminate all nodes of ``matrix`` not listed in ``keep``.

    Parameters
    ----------
    matrix:
        Symmetric block matrix (Laplacian + optional shunt diagonal).
    keep:
        Node indices to preserve.
    keep_interior_solver:
        Retain a callable solving ``A_EE x = b`` (for exactness tests /
        interior-voltage recovery).
    """
    keep = np.asarray(keep, dtype=np.int64)
    n = matrix.shape[0]
    require(keep.size > 0, "must keep at least one node")
    csc = sp.csc_matrix(matrix)
    mask = np.zeros(n, dtype=bool)
    mask[keep] = True
    eliminate = np.flatnonzero(~mask)

    # detect floating interior components (unreachable from any kept node)
    dropped = np.empty(0, dtype=np.int64)
    if eliminate.size:
        pattern = csc.copy()
        pattern.data = np.ones_like(pattern.data)
        count, labels = _cc(pattern, directed=False)
        kept_components = np.unique(labels[keep])
        floating = ~np.isin(labels[eliminate], kept_components)
        dropped = eliminate[floating]
        eliminate = eliminate[~floating]

    if eliminate.size == 0:
        reduced = csc[keep, :][:, keep].toarray()
        result = SchurReduction(
            reduced=reduced,
            keep=keep,
            eliminated=eliminate,
            dropped=dropped,
            divider=np.zeros((0, keep.size)),
        )
        return result

    a_ee = csc[eliminate, :][:, eliminate].tocsc()
    a_ek = csc[eliminate, :][:, keep].tocsc()
    a_kk = csc[keep, :][:, keep].toarray()
    solver = spla.splu(a_ee)
    x = solver.solve(a_ek.toarray())  # X = A_EE^{-1} A_EK
    reduced = a_kk - a_ek.T @ x
    reduced = 0.5 * (reduced + reduced.T)  # enforce symmetry against roundoff
    result = SchurReduction(
        reduced=reduced,
        keep=keep,
        eliminated=eliminate,
        dropped=dropped,
        divider=-x,
    )
    if keep_interior_solver:
        result._interior_solver = solver.solve
    return result


def laplacian_to_edges(
    dense: np.ndarray, magnitude_floor: float = 1e-12
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Split a dense (near-)Laplacian into edges and ground shunts.

    Returns ``(heads, tails, conductances, shunts)`` where off-diagonal
    negatives become edges (``w = −S_ij``) and positive row sums become
    per-node shunt conductances (mass that leaked to ground through
    eliminated shunted nodes).  Entries below ``magnitude_floor`` times the
    largest diagonal are treated as numerical noise.
    """
    n = dense.shape[0]
    scale = float(np.abs(np.diag(dense)).max()) or 1.0
    floor = magnitude_floor * scale
    off = np.triu(dense, k=1)
    heads, tails = np.nonzero(off < -floor)
    conductances = -off[heads, tails]
    shunts = dense.sum(axis=1)
    shunts[np.abs(shunts) < floor] = 0.0
    shunts = np.maximum(shunts, 0.0)
    return heads.astype(np.int64), tails.astype(np.int64), conductances, shunts
