"""Spielman–Srivastava effective-resistance sampling (Alg. 1 step 4b).

The classic spectral sparsifier [4]: sample ``q`` edges with replacement
with probabilities ``p_e ∝ w(e)·R(e)`` (the spanning-edge centrality) and
give every sampled copy weight ``w(e) / (q·p_e)``.  With
``q = O(n log n / ε²)`` the sparsifier preserves the Laplacian quadratic
form — and hence port behaviour of the reduced power grid — within ``1±ε``.

Two practical safeguards used by power-grid sparsifiers:

* a spanning tree of the input is always retained (at original weight) so
  the sparsifier never disconnects the block;
* if the sample budget is no smaller than the edge count, the graph is
  returned unchanged (sampling could only add variance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import minimum_spanning_tree

from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng
from repro.utils.validation import require


@dataclass
class SparsifyResult:
    """Sparsified graph plus bookkeeping."""

    graph: Graph
    num_samples: int
    kept_tree_edges: int

    @property
    def edge_reduction(self) -> float:
        """Output edges / input edges (only meaningful to the caller)."""
        return self.graph.num_edges


def _spanning_tree_edges(graph: Graph) -> np.ndarray:
    """Edge indices of a maximum-conductance spanning forest.

    Requires a coalesced graph (unique node pairs) — the pipeline always
    coalesces before sparsifying.
    """
    n = graph.num_nodes
    # scipy computes a MINIMUM spanning tree; negate weights for maximum
    weights = sp.coo_matrix(
        (-graph.weights, (graph.heads, graph.tails)), shape=(n, n)
    ).tocsr()
    tree_coo = minimum_spanning_tree(weights).tocoo()
    # recover edge indices through canonical (min, max) keys
    lo = np.minimum(graph.heads, graph.tails)
    hi = np.maximum(graph.heads, graph.tails)
    keys = lo * np.int64(n) + hi
    order = np.argsort(keys)
    tree_keys = (
        np.minimum(tree_coo.row, tree_coo.col).astype(np.int64) * np.int64(n)
        + np.maximum(tree_coo.row, tree_coo.col)
    )
    positions = np.searchsorted(keys[order], tree_keys)
    return order[positions]


def spielman_srivastava_sparsify(
    graph: Graph,
    edge_resistances: np.ndarray,
    sample_factor: float = 8.0,
    num_samples: "int | None" = None,
    keep_spanning_tree: bool = True,
    seed: "int | np.random.Generator | None" = None,
) -> SparsifyResult:
    """Sparsify ``graph`` by effective-resistance importance sampling.

    Parameters
    ----------
    graph:
        Input graph (typically a dense reduced block).
    edge_resistances:
        Effective resistance per edge from any estimator — Alg. 3's
        approximations are the paper's whole point here.
    sample_factor:
        ``q = sample_factor · n · ln n`` samples unless ``num_samples``
        overrides.
    keep_spanning_tree:
        Always retain a maximum-conductance spanning forest.
    """
    m = graph.num_edges
    n = graph.num_nodes
    require(edge_resistances.shape == (m,), "one resistance per edge required")
    rng = ensure_rng(seed)
    if num_samples is None:
        num_samples = int(np.ceil(sample_factor * n * max(np.log(max(n, 2)), 1.0)))

    if m <= num_samples or m <= max(n - 1, 1):
        return SparsifyResult(graph=graph, num_samples=0, kept_tree_edges=0)

    scores = graph.weights * np.maximum(edge_resistances, 0.0)
    total = scores.sum()
    if total <= 0:
        return SparsifyResult(graph=graph, num_samples=0, kept_tree_edges=0)
    probabilities = scores / total

    counts = rng.multinomial(num_samples, probabilities)
    sampled = np.flatnonzero(counts)
    new_weights = (
        graph.weights[sampled]
        * counts[sampled]
        / (num_samples * probabilities[sampled])
    )

    heads = graph.heads[sampled]
    tails = graph.tails[sampled]
    weights = new_weights
    tree_kept = 0
    if keep_spanning_tree:
        tree_edges = _spanning_tree_edges(graph)
        missing = tree_edges[counts[tree_edges] == 0]
        tree_kept = int(missing.size)
        heads = np.concatenate([heads, graph.heads[missing]])
        tails = np.concatenate([tails, graph.tails[missing]])
        weights = np.concatenate([weights, graph.weights[missing]])

    sparsified = Graph(n, heads, tails, weights).coalesce()
    return SparsifyResult(
        graph=sparsified, num_samples=num_samples, kept_tree_edges=tree_kept
    )
