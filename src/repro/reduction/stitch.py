"""Step 5 of Alg. 1: stitch reduced blocks into one reduced power grid.

Inputs are the per-block artefacts (edges, shunts, lumped caps, merge
records, all in *original* node ids) plus the untouched cross-block edges
of the original grid.  The stitcher:

* resolves merge redirections (a node absorbed inside a block redirects
  every cross-block edge and source that referenced it);
* builds the compact reduced node set — every port survives by
  construction;
* rebuilds a :class:`~repro.powergrid.netlist.PowerGrid` with resistors
  (conductance → 1/R), ground shunts, lumped capacitors, and the original
  voltage/current sources re-addressed to reduced indices.
"""

from __future__ import annotations

import numpy as np

from repro.powergrid.netlist import PowerGrid
from repro.reduction.pipeline import BlockReduction, ReducedGrid


def stitch_blocks(reducer, blocks: "list[BlockReduction]") -> ReducedGrid:
    """Assemble the reduced grid (called by :meth:`PGReducer.reduce`)."""
    pg = reducer.pg
    graph = reducer.graph
    labels = reducer.labels
    n_original = pg.num_nodes

    # ------------------------------------------------------------------
    # merge redirection: original id -> surviving original id
    redirect = np.arange(n_original, dtype=np.int64)
    for block in blocks:
        redirect[block.merged_away] = block.merge_target
    # merge chains cannot occur (targets are cluster representatives), but
    # apply twice defensively so any accidental chain resolves
    redirect = redirect[redirect]

    # ------------------------------------------------------------------
    # surviving node set: kept nodes of every block that were not merged away
    survives = np.zeros(n_original, dtype=bool)
    for block in blocks:
        survives[block.kept_nodes] = True
    for block in blocks:
        survives[block.merged_away] = False
    survivors = np.flatnonzero(survives)
    node_map = -np.ones(n_original, dtype=np.int64)
    node_map[survivors] = np.arange(survivors.size)

    reduced = PowerGrid()
    for original in survivors:
        reduced.node(pg.name_of(int(original)))

    # ------------------------------------------------------------------
    # block-internal (sparsified) resistors
    for block in blocks:
        for a, b, w in zip(block.heads, block.tails, block.conductances):
            ra, rb = node_map[redirect[a]], node_map[redirect[b]]
            if ra != rb and ra >= 0 and rb >= 0 and w > 0:
                reduced.add_resistor(int(ra), int(rb), 1.0 / float(w))

    # cross-block edges pass through unchanged (both endpoints are kept:
    # any node with a crossing edge is interface or port by construction)
    crossing = labels[graph.heads] != labels[graph.tails]
    for a, b, w in zip(
        graph.heads[crossing], graph.tails[crossing], graph.weights[crossing]
    ):
        ra, rb = node_map[redirect[a]], node_map[redirect[b]]
        if ra != rb and ra >= 0 and rb >= 0:
            reduced.add_resistor(int(ra), int(rb), 1.0 / float(w))

    # ------------------------------------------------------------------
    # shunts and lumped capacitance
    for block in blocks:
        for original, siemens in zip(block.kept_nodes, block.shunts):
            target = node_map[redirect[original]]
            if siemens > 0 and target >= 0:
                reduced.add_resistor(int(target), -1, 1.0 / float(siemens))
        for original, farads in zip(block.kept_nodes, block.lumped_caps):
            target = node_map[redirect[original]]
            if farads > 0 and target >= 0:
                reduced.add_capacitor(int(target), float(farads))

    # ------------------------------------------------------------------
    # sources (ports survive: merging never collapses two ports and the
    # representative of a port's cluster is the port itself)
    for vs in pg.vsources:
        target = node_map[redirect[vs.node]]
        reduced.add_vsource(int(target), vs.voltage, name=vs.name)
    for cs in pg.isources:
        target = node_map[redirect[cs.node]]
        reduced.add_isource(int(target), cs.dc, waveform=cs.waveform, name=cs.name)

    return ReducedGrid(
        grid=reduced, node_map=node_map, redirect=redirect, timer=reducer.timer
    )
