"""Query-serving layer — planner/executor architecture over the engines.

The serving stack answers effective-resistance traffic in three layers,
each usable on its own:

* :class:`~repro.service.planner.QueryPlanner` partitions one pair batch
  into trivially-answerable slices (``p == q``, cross-component),
  cache-resolvable pairs, and independent engine-bound
  :class:`~repro.service.planner.SubBatch` objects — one per component
  shard for a :class:`~repro.core.sharded.ShardedEngine`;
* :class:`~repro.service.executor.Executor` strategies run those
  sub-batches: :class:`~repro.service.executor.SerialExecutor` in the
  calling thread (default) or
  :class:`~repro.service.executor.ThreadedExecutor` fanning shards out
  over a thread pool, with results bit-identical either way;
* :class:`~repro.service.resistance_service.ResistanceService` owns a
  built engine plus locked LRU caches (pair results, hot ``Z̃`` columns),
  drives plan → execute → scatter for ``query``/``query_pairs``, ranks
  edges by spanning-edge centrality, refreshes in place after graph edits,
  and reports per-batch :class:`~repro.service.resistance_service.BatchReport`
  accounting; everything is thread-safe, and node ids are validated at
  this boundary.

Requests may carry an SLA — ``query_pairs(pairs, rel_tol=…,
latency_budget=…)`` — served by the :class:`~repro.service.router.QueryRouter`
that :meth:`ResistanceService.enable_tiers` installs: calibrated
approximate tiers (:mod:`repro.estimators`) answer what they can certify
within the tolerance and budget, everything else escalates to the exact
path, and a request without an SLA is served bit-identically to a
service without tiers.

On top sits :class:`~repro.service.async_service.AsyncResistanceService`:
``submit(pairs) -> Future`` / ``await aquery_pairs(...)`` with a
micro-batching loop that coalesces concurrent small requests into one
planned batch per window (per distinct SLA) — so a fleet of callers
shares dedup, cache probes and the parallel shard fan-out.  Engine
persistence integrates via :meth:`ResistanceService.from_saved`
(``mmap=True`` maps the saved factor so co-located workers share pages),
and calibration profiles persist as JSON sidecars
(:meth:`~repro.service.router.CalibrationProfile.default_path`).

Still open (ROADMAP): sharding *within* a component, and process-backed
executors for GIL-free fan-out.
"""

from repro.service.async_service import AsyncResistanceService, AsyncServiceStats
from repro.service.executor import (
    Executor,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)
from repro.service.planner import QueryPlan, QueryPlanner, SubBatch
from repro.service.resistance_service import (
    BatchReport,
    RefreshStats,
    ResistanceService,
    ServiceStats,
    SubBatchTiming,
)
from repro.service.router import (
    SLA,
    CalibrationProfile,
    QueryRouter,
    RoutingResult,
    TierCalibration,
    calibrate,
)

__all__ = [
    "ResistanceService",
    "ServiceStats",
    "RefreshStats",
    "BatchReport",
    "SubBatchTiming",
    "AsyncResistanceService",
    "AsyncServiceStats",
    "QueryPlanner",
    "QueryPlan",
    "SubBatch",
    "Executor",
    "SerialExecutor",
    "ThreadedExecutor",
    "make_executor",
    "SLA",
    "QueryRouter",
    "RoutingResult",
    "CalibrationProfile",
    "TierCalibration",
    "calibrate",
]
