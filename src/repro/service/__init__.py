"""Query-serving layer on top of the effective-resistance engines.

:class:`~repro.service.resistance_service.ResistanceService` owns a built
engine (Alg. 3 by default), answers batched pair queries through an LRU
result cache plus an LRU cache of hot ``Z̃`` columns, ranks edges by
spanning-edge centrality, and supports in-place refresh after graph edits —
the building block the ROADMAP's sharding/async work composes on.
"""

from repro.service.resistance_service import (
    RefreshStats,
    ResistanceService,
    ServiceStats,
)

__all__ = ["ResistanceService", "ServiceStats", "RefreshStats"]
