"""``AsyncResistanceService`` — micro-batching async front-end.

A production resistance service sees many *small* concurrent requests (a
handful of pairs each), but the engines are at their best on *large*
batches: dedup only pays off across requests, and a sharded engine only
fans out when a batch touches many components.  This front-end bridges the
two shapes with a classic micro-batching loop:

* callers hand batches to :meth:`AsyncResistanceService.submit`, which
  returns a :class:`concurrent.futures.Future` immediately (or ``await``
  :meth:`aquery_pairs` from asyncio code);
* a background batcher thread collects everything that arrives within a
  configurable ``batch_window`` (or until ``max_batch_pairs`` accumulate),
  concatenates it into **one** planned batch, and runs it through the
  underlying :class:`~repro.service.ResistanceService` — so concurrent
  requests share the dedup pass, the cache probe and the parallel shard
  fan-out;
* each caller's slice of the coalesced answer resolves its future.

Requests may carry a per-request SLA (``rel_tol`` / ``latency_budget``,
see :mod:`repro.service.router`); the batcher coalesces per distinct SLA
— two tolerances never share a routed engine batch, but same-SLA
requests still pool their dedup and cache probes.

Requests are validated at submit time, so one bad node id fails only its
own future, never a whole coalesced batch.  The wrapped service stays
fully usable directly — synchronous ``query``/``query_pairs`` callers and
the batcher thread can share it, because the service itself is
thread-safe.

Example
-------
>>> from repro.graphs.generators import grid_2d
>>> from repro.service import AsyncResistanceService, ResistanceService
>>> service = ResistanceService(grid_2d(8, 8))
>>> with AsyncResistanceService(service, batch_window=0.001) as front:
...     futures = [front.submit([(0, i)]) for i in range(1, 5)]
...     answers = [float(f.result()[0]) for f in futures]
>>> len(answers)
4
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.engine import as_pair_array, validate_node_ids
from repro.service.executor import make_executor
from repro.service.resistance_service import BatchReport, ResistanceService
from repro.utils.validation import require


@dataclass
class AsyncServiceStats:
    """Lifetime counters of the micro-batching loop."""

    requests: int = 0
    pairs: int = 0
    batches: int = 0

    @property
    def coalescing_ratio(self) -> float:
        """Mean requests served per engine batch (1.0 = no coalescing)."""
        return self.requests / self.batches if self.batches else 0.0


class AsyncResistanceService:
    """Async, micro-batching facade over a :class:`ResistanceService`.

    Parameters
    ----------
    service:
        The (thread-safe) service that answers the coalesced batches; give
        it a :class:`~repro.service.executor.ThreadedExecutor` to combine
        micro-batching with parallel shard fan-out.
    batch_window:
        Seconds the batcher waits after the first pending request for more
        to arrive before executing (default 2 ms; 0 executes immediately
        with whatever is queued — still coalescing under load).
    max_batch_pairs:
        Execute early once this many pairs are pending (bounds latency and
        memory under heavy load).
    keep_reports:
        How many recent per-batch :class:`~repro.service.BatchReport`
        objects to retain in :attr:`reports`.
    """

    def __init__(
        self,
        service: ResistanceService,
        batch_window: float = 0.002,
        max_batch_pairs: int = 65536,
        keep_reports: int = 32,
    ):
        require(batch_window >= 0.0, "batch_window must be >= 0")
        require(max_batch_pairs >= 1, "max_batch_pairs must be >= 1")
        self.service = service
        self.batch_window = float(batch_window)
        self.max_batch_pairs = int(max_batch_pairs)
        self.stats = AsyncServiceStats()
        self.reports: "collections.deque[BatchReport]" = collections.deque(
            maxlen=keep_reports
        )
        self._pending: "collections.deque" = collections.deque()
        self._pending_pairs = 0
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(
            target=self._batch_loop, name="resistance-batcher", daemon=True
        )
        self._thread.start()

    @classmethod
    def from_graph(
        cls,
        graph,
        workers: "int | None" = None,
        batch_window: float = 0.002,
        max_batch_pairs: int = 65536,
        **service_kwargs,
    ) -> "AsyncResistanceService":
        """Build the whole stack from a graph in one call.

        ``workers`` sizes the executor of the underlying service (> 1 →
        :class:`~repro.service.executor.ThreadedExecutor`); remaining
        keyword arguments go to :class:`ResistanceService` (``config``,
        ``method``, cache sizes, engine tunables, …).
        """
        service = ResistanceService(
            graph, executor=make_executor(workers), **service_kwargs
        )
        return cls(
            service, batch_window=batch_window, max_batch_pairs=max_batch_pairs
        )

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(
        self,
        pairs,
        rel_tol: "float | None" = None,
        latency_budget: "float | None" = None,
    ) -> "concurrent.futures.Future[np.ndarray]":
        """Enqueue a pair batch; the future resolves to its answers.

        Validation (pair shape, node-id range) happens here, synchronously,
        so a malformed request raises in the caller and can never poison a
        coalesced batch.  ``rel_tol``/``latency_budget`` attach an SLA,
        forwarded to
        :meth:`~repro.service.ResistanceService.query_pairs_with_report`;
        requests with the same SLA coalesce into one engine batch.
        """
        arr = as_pair_array(pairs)
        validate_node_ids(arr, self.service.graph.num_nodes)
        future: "concurrent.futures.Future[np.ndarray]" = concurrent.futures.Future()
        if arr.shape[0] == 0:
            future.set_result(np.empty(0))
            return future
        with self._cond:
            if self._closed:
                raise RuntimeError("AsyncResistanceService is closed")
            self._pending.append((arr, future, (rel_tol, latency_budget)))
            self._pending_pairs += arr.shape[0]
            self._cond.notify_all()
        return future

    def query_pairs(
        self,
        pairs,
        rel_tol: "float | None" = None,
        latency_budget: "float | None" = None,
    ) -> np.ndarray:
        """Synchronous convenience wrapper over :meth:`submit`."""
        return self.submit(
            pairs, rel_tol=rel_tol, latency_budget=latency_budget
        ).result()

    async def aquery_pairs(
        self,
        pairs,
        rel_tol: "float | None" = None,
        latency_budget: "float | None" = None,
    ) -> np.ndarray:
        """Awaitable pair batch (asyncio-native front door)."""
        return await asyncio.wrap_future(
            self.submit(pairs, rel_tol=rel_tol, latency_budget=latency_budget)
        )

    async def aquery(self, p: int, q: int) -> float:
        """Awaitable single-pair query."""
        values = await self.aquery_pairs([(int(p), int(q))])
        return float(values[0])

    # ------------------------------------------------------------------
    # the micro-batching loop
    # ------------------------------------------------------------------
    def _batch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                if not self._closed and self.batch_window > 0.0:
                    # first request seen: hold the window open for company
                    deadline = time.monotonic() + self.batch_window
                    while (
                        not self._closed
                        and self._pending_pairs < self.max_batch_pairs
                        and (remaining := deadline - time.monotonic()) > 0.0
                    ):
                        self._cond.wait(timeout=remaining)
                batch = list(self._pending)
                self._pending.clear()
                self._pending_pairs = 0
            if batch:
                self._execute(batch)

    def _execute(self, batch) -> None:
        # a caller may have cancelled its future while it sat in the queue
        active = [
            (arr, future, sla_key)
            for arr, future, sla_key in batch
            if future.set_running_or_notify_cancel()
        ]
        if not active:
            return
        # one engine batch per distinct SLA: different tolerances cannot
        # share a routed batch, but same-SLA requests still coalesce
        groups: "dict[tuple, list]" = {}
        for arr, future, sla_key in active:
            groups.setdefault(sla_key, []).append((arr, future))
        for (rel_tol, latency_budget), members in groups.items():
            coalesced = np.concatenate([arr for arr, _ in members])
            try:
                values, report = self.service.query_pairs_with_report(
                    coalesced, rel_tol=rel_tol, latency_budget=latency_budget
                )
            except BaseException as exc:  # propagate to every waiter
                for _, future in members:
                    future.set_exception(exc)
                continue
            with self._cond:  # stats/reports are read from caller threads
                self.stats.requests += len(members)
                self.stats.pairs += int(coalesced.shape[0])
                self.stats.batches += 1
                self.reports.append(report)
            offset = 0
            for arr, future in members:
                count = arr.shape[0]
                future.set_result(values[offset:offset + count].copy())
                offset += count

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: "float | None" = None) -> None:
        """Stop accepting requests, drain the queue, join the batcher."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __enter__(self) -> "AsyncResistanceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncResistanceService(window={self.batch_window}, "
            f"executor={self.service.executor.name}, "
            f"batches={self.stats.batches})"  # repro: ignore[atomicity] — cosmetic repr; a stale batch count is fine
        )
