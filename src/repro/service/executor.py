"""Executors — how a planned query batch's sub-batches actually run.

The planner (:mod:`repro.service.planner`) turns one pair batch into
independent sub-batches (one per touched shard, optionally chunked); an
:class:`Executor` decides *where* those sub-batches run.  Two strategies:

* :class:`SerialExecutor` — run in the calling thread, zero overhead; the
  default, and exactly the pre-redesign behaviour;
* :class:`ThreadedExecutor` — fan sub-batches out over a shared
  :class:`concurrent.futures.ThreadPoolExecutor`, so a component-sharded
  engine answers a cold batch with every shard working concurrently.

The abstraction is deliberately tiny (ordered ``map`` + ``shutdown``) so a
process- or RPC-backed executor can slot in later without touching the
service; everything an executor runs is a pure function of its sub-batch,
which is what makes the fan-out safe and the results bit-identical to the
serial path.
"""

from __future__ import annotations

import abc
import concurrent.futures
import threading
from typing import Callable, Iterable, TypeVar

from repro.utils.validation import require

T = TypeVar("T")
R = TypeVar("R")


class Executor(abc.ABC):
    """Strategy for running a list of independent sub-batch tasks."""

    #: Degree of parallelism the executor offers (1 = serial).
    workers: int = 1
    #: Short label reported in :class:`~repro.service.BatchReport`.
    name: str = "executor"

    @abc.abstractmethod
    def map(self, fn: "Callable[[T], R]", items: "Iterable[T]") -> "list[R]":
        """Run ``fn`` over ``items``; results in input order.

        Implementations must propagate the first exception raised by any
        task to the caller.
        """

    def shutdown(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class SerialExecutor(Executor):
    """Run every sub-batch in the calling thread (the default)."""

    name = "serial"

    def map(self, fn: "Callable[[T], R]", items: "Iterable[T]") -> "list[R]":
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadedExecutor(Executor):
    """Fan sub-batches out over a thread pool.

    Parameters
    ----------
    workers:
        Pool size (>= 1).  Sub-batches of one planned batch run
        concurrently; engine query math only reads built state (the
        engines' stage timers take their own lock), lazy shard builds
        are serialised per shard by
        :class:`~repro.core.sharded.ShardedEngine`, so the fan-out is
        safe for every registered engine.
    """

    name = "threaded"

    def __init__(self, workers: int = 4) -> None:
        require(workers >= 1, "workers must be >= 1")
        self.workers = int(workers)
        self._pool: "concurrent.futures.ThreadPoolExecutor | None" = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._pool_lock:  # concurrent first uses must share one pool
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="resistance-exec",
                )
            return self._pool

    def map(self, fn: "Callable[[T], R]", items: "Iterable[T]") -> "list[R]":
        batch = list(items)
        if len(batch) <= 1:  # skip pool dispatch for trivial fan-outs
            return [fn(item) for item in batch]
        futures = [self._ensure_pool().submit(fn, item) for item in batch]
        concurrent.futures.wait(futures)
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        # Swap the pool out under the lock, drain it outside: a worker
        # that re-entered ``map`` (and thus ``_ensure_pool``) must never
        # find ``shutdown`` waiting on it while holding ``_pool_lock``.
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadedExecutor(workers={self.workers})"


def make_executor(workers: "int | None") -> Executor:
    """``workers <= 1`` (or ``None``) → serial, else a thread pool."""
    if workers is None or workers <= 1:
        return SerialExecutor()
    return ThreadedExecutor(workers)
