"""Query planning — partition one pair batch into executable sub-batches.

Serving a batch of ``(p, q)`` queries decomposes into slices with very
different costs, and the planner separates them *before* any engine work:

1. **trivial** — ``p == q`` (answer 0.0) and cross-component pairs (answer
   ``inf``); resolved from the component labels alone, no factor touched;
2. **duplicate** — the batch is canonicalised (``p <= q``) and deduplicated
   with one ``np.unique`` over packed pair codes, so a skewed stream pays
   the engine for each *distinct* pair once;
3. **cached** — distinct pairs found in the service's result LRU;
4. **sub-batches** — the remaining distinct misses, grouped by shard for a
   component-sharded engine (one :class:`SubBatch` per touched shard,
   translated to shard-local ids) or kept whole for a monolithic engine,
   optionally chunked so an executor can fan even one big group out.

Every sub-batch is independent — queries never couple across pairs — which
is what lets :mod:`repro.service.executor` run them concurrently with
results bit-identical to the serial path.  The plan object owns the
scatter/gather bookkeeping: sub-batch results land in a per-unique-pair
value table and one vectorised gather produces the caller-ordered output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import ResistanceEngine, as_pair_array
from repro.core.partitioned import PartitionedEngine


@dataclass
class SubBatch:
    """One independently executable slice of a planned batch.

    Attributes
    ----------
    shard_id:
        Shard group the pairs live in (``None`` for a monolithic engine).
        For a partitioned engine this is a region id (``< num_shards``,
        shard-local pairs) or a cross-region pseudo id (``>= num_shards``,
        global pairs routed through the separator Schur path) — the
        engine's ``query_shard`` dispatches on it either way.
    unique_rows:
        Indices into the plan's unique-pair table this sub-batch answers.
    pairs:
        ``(k, 2)`` id array to hand to the engine — shard-local ids for a
        region group, global ids otherwise.
    """

    shard_id: "int | None"
    unique_rows: np.ndarray
    pairs: np.ndarray

    @property
    def num_pairs(self) -> int:
        return self.pairs.shape[0]


@dataclass
class QueryPlan:
    """A batch partitioned into trivial / cached / engine-bound slices."""

    engine: ResistanceEngine
    inverse: np.ndarray            # request row -> unique-pair index
    unique_lo: np.ndarray          # canonical distinct pairs (lo <= hi)
    unique_hi: np.ndarray
    values: np.ndarray             # per-unique answers, filled as slices resolve
    resolved: np.ndarray           # bool mask over uniques
    trivial_rows: int = 0          # request rows answered structurally
    cache_hit_rows: int = 0        # request rows answered from the LRU
    subbatches: "list[SubBatch]" = field(default_factory=list)

    @property
    def num_queries(self) -> int:
        return self.inverse.shape[0]

    @property
    def num_unique(self) -> int:
        return self.unique_lo.shape[0]

    @property
    def num_misses(self) -> int:
        """Distinct pairs that must be answered by the engine."""
        return int(np.count_nonzero(~self.resolved))

    # ------------------------------------------------------------------
    def resolve_from_cache(self, get_many) -> int:
        """Fill unresolved uniques from a bulk cache probe.

        ``get_many(keys)`` returns a value (or ``None``) per ``(lo, hi)``
        key in one locked pass, so a cold 20k-pair batch costs one lock
        acquisition, not 20k.  Returns the number of *request rows*
        answered (the service's hit-counting unit).
        """
        pending = np.flatnonzero(~self.resolved)
        if pending.size == 0:
            return 0
        keys = [
            (int(self.unique_lo[u]), int(self.unique_hi[u])) for u in pending
        ]
        hit_unique = []
        for u, value in zip(pending, get_many(keys)):
            if value is not None:
                self.values[u] = value
                self.resolved[u] = True
                hit_unique.append(u)
        if not hit_unique:
            return 0
        hits = np.zeros(self.num_unique, dtype=bool)
        hits[hit_unique] = True
        self.cache_hit_rows = int(np.count_nonzero(hits[self.inverse]))
        return self.cache_hit_rows

    def build_subbatches(self, max_task_pairs: "int | None" = None) -> "list[SubBatch]":
        """Group the remaining misses into engine-bound sub-batches.

        For a :class:`~repro.core.partitioned.PartitionedEngine` (which
        includes the classic component-sharded engine) the misses are
        grouped per region — translated to shard-local ids — plus one
        cross-region group per split component carrying global ids; any
        other engine gets one whole-batch task.  ``max_task_pairs``
        additionally splits oversized groups so a threaded executor has
        work to balance.
        """
        rows = np.flatnonzero(~self.resolved)
        self.subbatches = []
        if rows.size == 0:
            return self.subbatches
        los, his = self.unique_lo[rows], self.unique_hi[rows]
        if isinstance(self.engine, PartitionedEngine):
            for shard_id, positions, local in self.engine.shard_subbatches(los, his):
                self._append_chunked(
                    shard_id, rows[positions], local, max_task_pairs
                )
        else:
            self._append_chunked(
                None, rows, np.column_stack([los, his]), max_task_pairs
            )
        return self.subbatches

    def _append_chunked(self, shard_id, unique_rows, pairs, max_task_pairs) -> None:
        if max_task_pairs is None or pairs.shape[0] <= max_task_pairs:
            self.subbatches.append(SubBatch(shard_id, unique_rows, pairs))
            return
        pieces = -(-pairs.shape[0] // max_task_pairs)
        for rows_chunk, pairs_chunk in zip(
            np.array_split(unique_rows, pieces), np.array_split(pairs, pieces)
        ):
            self.subbatches.append(SubBatch(shard_id, rows_chunk, pairs_chunk))

    # ------------------------------------------------------------------
    def execute_subbatch(self, subbatch: SubBatch) -> np.ndarray:
        """Answer one sub-batch (safe to call from any executor thread)."""
        if subbatch.shard_id is None:
            return self.engine.query_pairs(subbatch.pairs)
        return self.engine.query_shard(subbatch.shard_id, subbatch.pairs)

    def scatter(self, subbatch: SubBatch, values: np.ndarray) -> None:
        """Record one sub-batch's results in the unique-value table."""
        self.values[subbatch.unique_rows] = values
        self.resolved[subbatch.unique_rows] = True

    def miss_items(self, subbatch: SubBatch):
        """Yield ``((lo, hi), value)`` for a scattered sub-batch (cache fill)."""
        for u in subbatch.unique_rows:
            yield (
                (int(self.unique_lo[u]), int(self.unique_hi[u])),
                float(self.values[u]),
            )

    def gather(self) -> np.ndarray:
        """Caller-ordered answers (every unique must be resolved)."""
        return self.values[self.inverse]


class QueryPlanner:
    """Builds :class:`QueryPlan` objects for one engine.

    Stateless apart from the engine reference, so a service can create one
    per batch and never worry about staleness across
    :meth:`~repro.service.ResistanceService.refresh_after_edge_update`.
    """

    def __init__(self, engine: ResistanceEngine):
        self.engine = engine

    def plan(self, pairs) -> QueryPlan:
        """Canonicalise, deduplicate and structurally resolve a batch.

        The cache pass (:meth:`QueryPlan.resolve_from_cache`) and sub-batch
        construction (:meth:`QueryPlan.build_subbatches`) are separate steps
        so the caller controls locking around its LRU.
        """
        arr = as_pair_array(pairs)
        n = self.engine.n
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        # pack each canonical pair into one int64 so dedup is a single
        # np.unique instead of a python dict over tuples
        codes = lo * np.int64(n) + hi
        unique_codes, inverse = np.unique(codes, return_inverse=True)
        unique_lo = unique_codes // n
        unique_hi = unique_codes % n
        values = np.full(unique_codes.shape[0], np.nan)
        labels = self.engine.component_labels
        same_node = unique_lo == unique_hi
        cross = labels[unique_lo] != labels[unique_hi]
        values[same_node] = 0.0
        values[cross] = np.inf
        resolved = same_node | cross
        plan = QueryPlan(
            engine=self.engine,
            inverse=inverse,
            unique_lo=unique_lo,
            unique_hi=unique_hi,
            values=values,
            resolved=resolved,
        )
        plan.trivial_rows = int(np.count_nonzero(resolved[inverse]))
        return plan
