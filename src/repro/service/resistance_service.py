"""``ResistanceService`` — a cached, thread-safe query front-end.

The engines in :mod:`repro.core.effective_resistance` are one-shot: build,
query, throw away.  Serving traffic needs a layer that (a) amortises the
build across millions of queries, (b) exploits the heavy skew of real query
streams (hot pairs, hot vertices) with caches, and (c) survives graph edits
without a caller-visible rebuild dance.  Since the planner/executor
redesign, every batch flows through the same three stages:

1. :class:`~repro.service.planner.QueryPlanner` canonicalises and
   deduplicates the batch (one ``np.unique`` over packed pair codes),
   resolves the trivial slices (``p == q`` → 0.0, cross-component → ``inf``)
   from the component labels, and probes the locked result LRU;
2. an :class:`~repro.service.executor.Executor` runs the remaining
   sub-batches — per shard for a component-sharded engine — serially by
   default or concurrently with :class:`~repro.service.executor.ThreadedExecutor`;
3. the plan scatters sub-batch results, fills the cache, and gathers the
   caller-ordered answers; a :class:`BatchReport` records the hit/miss
   split and per-sub-batch timings.

``query``/``query_pairs`` keep their original signatures on top of that
path, and all caches, stats and the hot-column LRU are lock-protected so
many threads (or the micro-batching loop of
:class:`~repro.service.async_service.AsyncResistanceService`) can share one
service.  Node ids are validated at this boundary: out-of-range ids raise a
``ValueError`` naming the offender instead of an ``IndexError`` deep inside
an engine.  Built ``cholinv`` engines persist to disk
(:mod:`repro.core.persistence`); :meth:`ResistanceService.from_saved`
warm-starts a worker from such a file — with ``mmap=True`` the factor
arrays are memory-mapped so many workers on one host share pages.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.effective_resistance import CholInvEffectiveResistance
from repro.core.engine import (
    EngineConfig,
    ResistanceEngine,
    as_pair_array,
    build_engine,
    config_from_kwargs,
    validate_node_ids,
)
from repro.estimators.base import BoundedResistanceEngine
from repro.estimators.landmark import LandmarkEffectiveResistance
from repro.graphs.graph import Graph
from repro.service.executor import Executor, SerialExecutor
from repro.service.planner import QueryPlanner
from repro.service.router import SLA, CalibrationProfile, QueryRouter, calibrate
from repro.utils.validation import require


@dataclass
class ServiceStats:
    """Counters a service accumulates over its lifetime.

    ``result_hits`` counts request rows answered from the result LRU;
    ``result_misses`` counts *distinct* pairs sent to the engine (a
    deduplicated batch of 100 copies of one cold pair is 1 miss).  All
    counters are updated under the service lock, so they stay consistent
    however many threads share the service.
    """

    queries: int = 0
    result_hits: int = 0
    result_misses: int = 0
    column_hits: int = 0
    column_misses: int = 0
    refreshes: int = 0
    batches: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of pair queries answered from the result cache."""
        total = self.result_hits + self.result_misses
        return self.result_hits / total if total else 0.0


@dataclass
class RefreshStats:
    """Outcome of one :meth:`ResistanceService.refresh_after_edge_update`."""

    rebuild_seconds: float
    num_nodes: int
    num_edges: int
    invalidated_results: int
    invalidated_columns: int


@dataclass
class SubBatchTiming:
    """How long one engine-bound sub-batch of a planned batch took.

    ``tier`` names who answered it: ``"exact"`` for the service's own
    engine, otherwise the router tier (``"landmark"``, ``"local_walk"``,
    …) that served it under an SLA.
    """

    shard_id: "int | None"
    num_pairs: int
    seconds: float
    tier: str = "exact"


@dataclass
class BatchReport:
    """Per-request accounting of one planned/executed pair batch."""

    num_queries: int = 0
    trivial_rows: int = 0        # p == q and cross-component rows
    cache_hit_rows: int = 0
    unique_misses: int = 0       # distinct pairs an engine answered
    executor: str = "serial"
    plan_seconds: float = 0.0
    execute_seconds: float = 0.0
    total_seconds: float = 0.0
    subbatch_timings: "list[SubBatchTiming]" = field(default_factory=list)
    # distinct pairs per serving tier for SLA-routed batches ("exact"
    # included); empty for plain batches
    tier_rows: "dict[str, int]" = field(default_factory=dict)

    @property
    def shards_touched(self) -> int:
        return len({t.shard_id for t in self.subbatch_timings})


@dataclass
class _LRU:
    """Ordered-dict LRU; thread-safe, values opaque to the service.

    Batch traffic goes through :meth:`get_many`/:meth:`put_many` — one
    lock acquisition per batch instead of one per pair.  ``put_many``
    takes an optional ``still_valid`` predicate evaluated *under the
    lock*, which is how the service fences in-flight results out of a
    cache that a concurrent refresh has invalidated (the refresh bumps
    its epoch before clearing, and clearing acquires this same lock, so
    a stale writer either inserts before the clear — and is wiped by it
    — or observes the bumped epoch and backs off).
    """

    capacity: int
    data: "OrderedDict" = field(default_factory=OrderedDict)
    lock: threading.Lock = field(default_factory=threading.Lock)

    def get(self, key):
        with self.lock:
            value = self.data.get(key)
            if value is not None or key in self.data:
                self.data.move_to_end(key)
            return value

    def get_many(self, keys) -> list:
        """Values for ``keys`` (``None`` where missing), one lock hold."""
        out = []
        with self.lock:
            for key in keys:
                value = self.data.get(key)
                if value is not None or key in self.data:
                    self.data.move_to_end(key)
                out.append(value)
        return out

    def put(self, key, value, still_valid=None) -> None:
        self.put_many([(key, value)], still_valid)

    def put_many(self, items, still_valid=None) -> None:
        with self.lock:
            if still_valid is not None and not still_valid():
                return
            for key, value in items:
                self.data[key] = value
                self.data.move_to_end(key)
            while len(self.data) > self.capacity:
                self.data.popitem(last=False)

    def __len__(self) -> int:
        with self.lock:
            return len(self.data)

    def clear(self) -> None:
        with self.lock:
            self.data.clear()


class ResistanceService:
    """Long-lived, cached, thread-safe effective-resistance query service.

    Parameters
    ----------
    graph:
        Weighted undirected graph to serve queries on.
    method:
        Any registered engine name (``"cholinv"``, Alg. 3, is the
        default); see :func:`repro.core.engine.registered_engines`.
    result_cache_size:
        Maximum cached pair results (LRU, default 65536).
    column_cache_size:
        Maximum cached hot ``Z̃`` columns (LRU, default 4096; only used by
        the ``cholinv`` engine).
    config:
        Full :class:`~repro.core.engine.EngineConfig`; overrides
        ``method``/``engine_kwargs`` when given.
    executor:
        :class:`~repro.service.executor.Executor` running the planned
        sub-batches; default :class:`~repro.service.executor.SerialExecutor`.
        Pass a :class:`~repro.service.executor.ThreadedExecutor` to fan a
        sharded engine's per-component sub-batches out in parallel.
    max_task_pairs:
        Split engine-bound sub-batches larger than this so a threaded
        executor can balance them (default: no splitting).
    engine_kwargs:
        Legacy engine parameters (``epsilon``, ``drop_tol``, …), folded
        into an ``EngineConfig`` and used on every (re)build.
    """

    def __init__(
        self,
        graph: Graph,
        method: str = "cholinv",
        result_cache_size: int = 65536,
        column_cache_size: int = 4096,
        config: "EngineConfig | None" = None,
        executor: "Executor | None" = None,
        max_task_pairs: "int | None" = None,
        **engine_kwargs,
    ):
        if config is None:
            config = config_from_kwargs(method, **engine_kwargs)
        elif engine_kwargs:
            raise ValueError("pass config or engine kwargs, not both")
        elif method != "cholinv" and method != config.method:
            raise ValueError(
                f"method {method!r} conflicts with config.method "
                f"{config.method!r}"
            )
        self._init_state(
            config, result_cache_size, column_cache_size, executor, max_task_pairs
        )
        self._build(graph)

    def _init_state(
        self,
        config: EngineConfig,
        result_cache_size: int,
        column_cache_size: int,
        executor: "Executor | None" = None,
        max_task_pairs: "int | None" = None,
    ) -> None:
        require(result_cache_size >= 0, "result_cache_size must be >= 0")
        require(column_cache_size >= 0, "column_cache_size must be >= 0")
        require(
            max_task_pairs is None or max_task_pairs >= 1,
            "max_task_pairs must be >= 1",
        )
        # constructor helper: runs on a not-yet-shared instance, before the
        # locks it creates below even exist, so the lock-discipline rule's
        # once-locked-always-locked invariant cannot apply yet
        self.config = config  # repro: ignore[lock-discipline] — constructing
        self.stats = ServiceStats()  # repro: ignore[lock-discipline] — constructing
        self.executor = executor if executor is not None else SerialExecutor()
        self.max_task_pairs = max_task_pairs
        self.last_report: "BatchReport | None" = None
        self._results = _LRU(result_cache_size)
        self._columns = _LRU(column_cache_size)
        self._edge_resistances: "tuple[np.ndarray, np.ndarray] | None" = None  # repro: ignore[lock-discipline] — constructing
        self._router: "QueryRouter | None" = None  # repro: ignore[lock-discipline] — constructing
        self._lock = threading.Lock()          # stats + engine swap
        self._refresh_lock = threading.Lock()  # serialises rebuilds
        self._edge_lock = threading.Lock()     # all_edge_resistances memo
        # bumped on every refresh; cache writes carry the epoch they were
        # computed under and are dropped if a refresh intervened, so an
        # in-flight query can never poison a freshly invalidated cache
        # with old-engine values
        self._epoch = 0  # repro: ignore[lock-discipline] — constructing

    @property
    def method(self) -> str:
        """Name of the served engine (back-compat accessor)."""
        # a refresh may swap configs concurrently, but the method name is
        # identical in every config this service ever holds
        return self.config.method  # repro: ignore[atomicity] — method is refresh-invariant

    @classmethod
    def from_engine(
        cls,
        engine: ResistanceEngine,
        result_cache_size: int = 65536,
        column_cache_size: int = 4096,
        executor: "Executor | None" = None,
        max_task_pairs: "int | None" = None,
    ) -> "ResistanceService":
        """Serve an already-built engine (skips the build entirely).

        Lets several services — e.g. a serial one and a thread-fanned one
        in a benchmark, or one per worker thread pool — share one expensive
        factorisation.  The engine must carry a ``config`` (engines from
        :func:`~repro.core.engine.build_engine` and
        :func:`~repro.core.persistence.load_engine` do) so refreshes know
        how to rebuild.
        """
        require(
            engine.config is not None,
            "engine has no config attached; build it through build_engine()",
        )
        service = cls.__new__(cls)
        service._init_state(
            engine.config, result_cache_size, column_cache_size,
            executor, max_task_pairs,
        )
        service.engine = engine
        service.graph = engine.graph
        return service

    @classmethod
    def from_saved(
        cls,
        path,
        result_cache_size: int = 65536,
        column_cache_size: int = 4096,
        mmap: bool = False,
        executor: "Executor | None" = None,
        max_task_pairs: "int | None" = None,
    ) -> "ResistanceService":
        """Warm-start a service from an engine persisted with ``save()``.

        The expensive build is skipped entirely: the engine state (``Z̃``,
        permutation, norms, labels, graph, config) comes off disk, and
        later :meth:`refresh_after_edge_update` calls rebuild with the
        saved configuration.  With ``mmap=True`` the large arrays are
        memory-mapped read-only, so many worker processes on one host share
        the physical pages instead of each loading a private copy.
        """
        from repro.core.persistence import load_engine

        engine = load_engine(path, mmap=mmap)
        service = cls.from_engine(
            engine, result_cache_size, column_cache_size,
            executor, max_task_pairs,
        )
        return service

    # ------------------------------------------------------------------
    # construction / refresh
    # ------------------------------------------------------------------
    def _build(self, graph: Graph) -> float:
        start = time.perf_counter()
        with self._lock:  # snapshot: a refresh may be swapping configs
            config = self.config
        engine = build_engine(graph, config)
        with self._lock:  # engine + graph swap together, like a refresh
            self.engine = engine
            self.graph = graph
        return time.perf_counter() - start

    def refresh_after_edge_update(
        self,
        graph: "Graph | None" = None,
        edges=None,
        weights=None,
        build_workers: "int | None" = None,
    ) -> RefreshStats:
        """Rebuild the engine after graph edits and invalidate all caches.

        Either pass the fully edited ``graph``, or ``edges`` (an ``(m, 2)``
        array) with matching ``weights`` to add on top of the current graph
        — parallel occurrences coalesce, so adding an existing edge *adds
        conductance* exactly like wiring a resistor in parallel.

        ``build_workers`` overrides (and from then on replaces) the
        config's build parallelism for the rebuild — the knob that keeps a
        refresh short enough to run under live traffic.  Worker counts
        never change engine results, so a parallel rebuild serves the
        exact answers a serial one would.

        Thread-safe: refreshes serialise among themselves, and queries in
        flight finish against the engine they started with — cache
        entries are epoch-stamped, so an overlapping query neither reads
        another engine's values nor leaves its own (or a hot column keyed
        by the old permutation) behind in a post-refresh cache; the
        engine swap and cache invalidation happen atomically.

        Any SLA router installed by :meth:`enable_tiers` is dropped in
        the same swap — its tier engines were built against the old
        graph — so SLA-routed queries raise until ``enable_tiers`` is
        called again on the rebuilt engine.
        """
        with self._refresh_lock:
            require(
                build_workers is None or build_workers >= 1,
                "build_workers must be >= 1",
            )
            if graph is None:
                require(edges is not None, "pass either graph or edges")
                edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
                # validate at the boundary: a bad endpoint id must raise a
                # clear ValueError here, not corrupt the rebuilt graph
                validate_node_ids(edges, self.graph.num_nodes)
                new_weights = (
                    np.ones(edges.shape[0])
                    if weights is None
                    else np.asarray(weights, dtype=np.float64).ravel()
                )
                require(
                    new_weights.shape[0] == edges.shape[0],
                    f"weights length {new_weights.shape[0]} does not match "
                    f"{edges.shape[0]} edges",
                )
                graph = Graph(
                    self.graph.num_nodes,
                    np.concatenate([self.graph.heads, edges[:, 0]]),
                    np.concatenate([self.graph.tails, edges[:, 1]]),
                    np.concatenate([self.graph.weights, new_weights]),
                ).coalesce()
            else:
                require(edges is None and weights is None,
                        "pass either graph or edges, not both")
            # build first — the old engine keeps serving meanwhile — then
            # swap + bump + invalidate atomically; the new worker count is
            # adopted only together with the engine it built, so a call
            # that fails (bad arguments or a build breakdown) never
            # changes how future refreshes build
            rebuild_config = (
                self.config
                if build_workers is None
                else self.config.replace(build_workers=int(build_workers))
            )
            start = time.perf_counter()
            new_engine = build_engine(graph, rebuild_config)  # repro: ignore[blocking-under-lock] — _refresh_lock exists to serialise rebuilds; queries never take it
            rebuild = time.perf_counter() - start
            with self._lock:
                self.config = rebuild_config
                self.engine = new_engine
                self.graph = graph
                self._router = None  # tier engines belong to the old graph
                self._epoch += 1
                invalidated_results = len(self._results)
                invalidated_columns = len(self._columns)
                self._results.clear()
                self._columns.clear()
                self.stats.refreshes += 1
            with self._edge_lock:
                self._edge_resistances = None
            return RefreshStats(
                rebuild_seconds=rebuild,
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                invalidated_results=invalidated_results,
                invalidated_columns=invalidated_columns,
            )

    # ------------------------------------------------------------------
    # tiered serving
    # ------------------------------------------------------------------
    def enable_tiers(
        self,
        tiers: "tuple[str, ...]" = ("landmark",),
        calibration_pairs: int = 4096,
        calibration_seed: int = 0,
        profile: "CalibrationProfile | None" = None,
    ) -> CalibrationProfile:
        """Build approximate tier engines and install the SLA router.

        ``tiers`` lists bounded estimator names cheapest-first (e.g.
        ``("spanning_tree", "landmark")``); each is built with this
        service's config (``num_landmarks``, ``num_walks``, … knobs apply)
        and — unless a previously saved ``profile`` is passed — calibrated
        against the exact engine on ``calibration_pairs`` sampled pairs.
        Returns the profile so callers can persist it next to a saved
        engine (:meth:`~repro.service.router.CalibrationProfile.default_path`).

        Tier builds and calibration run *outside* the service locks; the
        router is installed only if no refresh intervened.  After
        :meth:`refresh_after_edge_update` the router is dropped and this
        method must be called again.
        """
        require(len(tiers) >= 1, "need at least one tier")
        with self._lock:  # engine + graph + config swap together
            engine = self.engine
            graph = self.graph
            config = self.config
            epoch = self._epoch
        engines: "dict[str, BoundedResistanceEngine]" = {}
        for name in tiers:
            require(
                name != config.method,
                f"tier {name!r} is the service's exact engine itself",
            )
            if name == "landmark" and isinstance(
                engine, CholInvEffectiveResistance
            ):
                # reuse the served factorisation instead of a second build
                tier_engine: ResistanceEngine = (
                    LandmarkEffectiveResistance.from_base_engine(
                        engine,
                        num_landmarks=config.num_landmarks,
                        landmark_strategy=config.landmark_strategy,
                        seed=config.seed,
                    )
                )
            else:
                tier_engine = build_engine(graph, config.replace(method=name))
            require(
                isinstance(tier_engine, BoundedResistanceEngine),
                f"tier {name!r} reports no error bounds and cannot be "
                f"routed safely",
            )
            engines[name] = tier_engine
        if profile is None:
            profile = calibrate(
                engine,
                engines,
                num_pairs=calibration_pairs,
                seed=calibration_seed,
            )
        router = QueryRouter(profile, engines, order=tuple(tiers))
        with self._lock:
            require(
                self._epoch == epoch,
                "a refresh raced enable_tiers(); call it again so the "
                "tiers are built against the current engine",
            )
            self._router = router
        return profile

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, p: int, q: int) -> float:
        """Effective resistance between ``p`` and ``q`` (cached)."""
        p, q = int(p), int(q)
        with self._lock:  # engine + epoch swap together; read them together
            engine = self.engine
            epoch = self._epoch
        # validate against the snapshot, before any accounting, so a bad
        # id fails cleanly even if a refresh shrank the graph meanwhile
        validate_node_ids((p, q), engine.n)
        with self._lock:
            self.stats.queries += 1
        if p == q:
            return 0.0
        key = (p, q) if p < q else (q, p)
        entry = self._results.get(key)
        if entry is not None and entry[0] == epoch:
            with self._lock:
                self.stats.result_hits += 1
            return entry[1]
        with self._lock:
            self.stats.result_misses += 1
        value = self._answer_single(engine, epoch, key[0], key[1])
        self._results.put(
            key, (epoch, value), still_valid=lambda: self._epoch == epoch
        )
        return value

    def query_pairs(
        self,
        pairs,
        rel_tol: "float | None" = None,
        latency_budget: "float | None" = None,
    ) -> np.ndarray:
        """Effective resistances for an ``(m, 2)`` array of node pairs.

        Runs the full planner/executor path; see
        :meth:`query_pairs_with_report` for the per-batch accounting and
        the meaning of the optional SLA parameters.
        """
        values, _ = self.query_pairs_with_report(
            pairs, rel_tol=rel_tol, latency_budget=latency_budget
        )
        return values

    def query_pairs_with_report(
        self,
        pairs,
        rel_tol: "float | None" = None,
        latency_budget: "float | None" = None,
    ) -> "tuple[np.ndarray, BatchReport]":
        """Answer a pair batch and report how it was served.

        The batch is planned (canonicalise → dedup → trivial slices →
        cache probe), the remaining sub-batches run on the configured
        executor (in parallel for a sharded engine with a
        :class:`~repro.service.executor.ThreadedExecutor`), results are
        scattered back and cached.  The returned
        :class:`BatchReport` carries the hit/miss split and per-sub-batch
        timings for this request alone.

        ``rel_tol`` / ``latency_budget`` attach an :class:`SLA` to the
        request: cache-missed pairs are offered to the router installed
        by :meth:`enable_tiers` first, which serves what its calibrated
        tiers can keep within the tolerance/budget and escalates the rest
        to the exact path above.  Cached exact results still short-circuit
        (they are free and better than any tier), and tier-served answers
        never enter the exact result cache.  With both left ``None`` the
        request takes the plain exact path, bit-identical to a service
        without tiers.
        """
        t_start = time.perf_counter()
        arr = as_pair_array(pairs)
        sla = (
            None
            if rel_tol is None and latency_budget is None
            else SLA(rel_tol=rel_tol, latency_budget=latency_budget)
        )
        with self._lock:  # engine + epoch swap together; read them together
            engine = self.engine
            epoch = self._epoch
            router = self._router
        require(
            sla is None or router is not None,
            "SLA-routed queries need enable_tiers() first (routers are "
            "dropped by refresh_after_edge_update)",
        )
        # validate against the snapshot, so ids stay in range for the
        # exact engine this batch runs on even if a refresh races us
        validate_node_ids(arr, engine.n)
        report = BatchReport(num_queries=arr.shape[0], executor=self.executor.name)
        if arr.shape[0] == 0:
            self.last_report = report
            return np.empty(0), report
        plan = QueryPlanner(engine).plan(arr)
        # cached entries are (epoch, value); only same-epoch values may
        # resolve this batch, so one batch never mixes two engines
        plan.resolve_from_cache(
            lambda keys: [
                entry[1] if entry is not None and entry[0] == epoch else None
                for entry in self._results.get_many(keys)
            ]
        )
        routed_rows = 0
        if sla is not None and router is not None:
            pending = np.flatnonzero(~plan.resolved)
            if pending.size:
                routed = router.serve(
                    np.column_stack(
                        (plan.unique_lo[pending], plan.unique_hi[pending])
                    ),
                    sla,
                )
                kept = pending[routed.served]
                # approximate answers resolve the plan directly and are
                # NEVER written to the exact result LRU
                plan.values[kept] = routed.values[routed.served]
                plan.resolved[kept] = True
                routed_rows = int(kept.shape[0])
                for tier, count in routed.tier_rows.items():
                    report.tier_rows[tier] = count
                    report.subbatch_timings.append(
                        SubBatchTiming(
                            None, count,
                            routed.tier_seconds.get(tier, 0.0), tier=tier,
                        )
                    )
        subbatches = plan.build_subbatches(self.max_task_pairs)
        report.trivial_rows = plan.trivial_rows
        report.cache_hit_rows = plan.cache_hit_rows
        report.unique_misses = routed_rows + sum(
            s.num_pairs for s in subbatches
        )
        if sla is not None:
            report.tier_rows["exact"] = sum(s.num_pairs for s in subbatches)
        report.plan_seconds = time.perf_counter() - t_start
        with self._lock:
            self.stats.queries += report.num_queries
            self.stats.result_hits += report.cache_hit_rows
            self.stats.result_misses += report.unique_misses
            self.stats.batches += 1

        if subbatches:
            t_exec = time.perf_counter()

            def run(subbatch):
                t0 = time.perf_counter()
                values = plan.execute_subbatch(subbatch)
                return values, time.perf_counter() - t0

            results = self.executor.map(run, subbatches)
            report.execute_seconds = time.perf_counter() - t_exec
            cache_fill = []
            for subbatch, (values, seconds) in zip(subbatches, results):
                plan.scatter(subbatch, values)
                report.subbatch_timings.append(
                    SubBatchTiming(subbatch.shard_id, subbatch.num_pairs, seconds)
                )
                cache_fill.extend(
                    (key, (epoch, value))
                    for key, value in plan.miss_items(subbatch)
                )
            self._results.put_many(
                cache_fill, still_valid=lambda: self._epoch == epoch
            )
        out = plan.gather()
        report.total_seconds = time.perf_counter() - t_start
        self.last_report = report
        return out, report

    def _answer_single(self, engine, epoch, p: int, q: int) -> float:
        """One uncached pair — via hot columns for Alg. 3, engine otherwise."""
        if isinstance(engine, CholInvEffectiveResistance):
            if engine.component_labels[p] != engine.component_labels[q]:
                return float("inf")
            cp = engine._position[p]
            cq = engine._position[q]
            rows_p, vals_p = self._column(engine, epoch, int(cp))
            rows_q, vals_q = self._column(engine, epoch, int(cq))
            # dot of two sorted sparse columns via index intersection
            common, ip, iq = np.intersect1d(
                rows_p, rows_q, assume_unique=True, return_indices=True
            )
            del common
            dot = float(vals_p[ip] @ vals_q[iq]) if ip.size else 0.0
            norms = engine._column_sq_norms
            return max(float(norms[cp] + norms[cq] - 2.0 * dot), 0.0)
        return float(engine.query_pairs([(p, q)])[0])

    def _column(self, engine, epoch, j: int) -> "tuple[np.ndarray, np.ndarray]":
        """Hot-column cache: (rows, values) of permuted ``Z̃`` column ``j``.

        A column is meaningful only together with the norms and
        permutation of the engine it was sliced from, so the cache key
        carries the epoch: a query in flight across a refresh can
        neither read a newer engine's column nor leave its own behind
        for newer queries (the write fence drops post-refresh inserts,
        and cross-epoch keys never collide).
        """
        key = (epoch, j)
        cached = self._columns.get(key)
        if cached is not None:
            with self._lock:
                self.stats.column_hits += 1
            return cached
        with self._lock:
            self.stats.column_misses += 1
        z = engine.z_tilde
        start, end = z.indptr[j], z.indptr[j + 1]
        column = (z.indices[start:end], z.data[start:end])
        self._columns.put(key, column, still_valid=lambda: self._epoch == epoch)
        return column

    # ------------------------------------------------------------------
    # centrality
    # ------------------------------------------------------------------
    def _edge_table(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(edge weights, edge resistances)`` of one engine snapshot.

        Memoised under ``_edge_lock`` until the next refresh invalidates
        it.  Weights and resistances come from the *same* engine/graph
        pair (snapshotted together under ``_lock``), so centrality never
        multiplies new weights into old resistances across a refresh.
        """
        with self._edge_lock:
            if self._edge_resistances is None:
                with self._lock:  # graph and engine swap together
                    engine, graph = self.engine, self.graph
                values = engine.query_pairs(graph.edge_array())  # repro: ignore[blocking-under-lock] — _edge_lock exists to serialise this one-off table fill; queries never take it
                self._edge_resistances = (graph.weights, values)
            return self._edge_resistances

    def all_edge_resistances(self) -> np.ndarray:
        """Effective resistance of every edge (cached after the first call)."""
        return self._edge_table()[1]

    def top_k_central_edges(self, k: int) -> "tuple[np.ndarray, np.ndarray]":
        """The ``k`` edges with the highest spanning-edge centrality.

        Returns ``(edge_indices, centralities)`` sorted by decreasing
        centrality ``w(e)·R(e)`` — the probability the edge appears in a
        uniformly random spanning tree (ties broken by edge index).
        """
        require(k >= 1, "k must be >= 1")
        weights, resistances = self._edge_table()
        centrality = weights * resistances
        k = min(k, centrality.shape[0])
        if k == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        # stable two-pass selection keeps deterministic tie order
        top = np.argpartition(-centrality, k - 1)[:k]
        top = top[np.lexsort((top, -centrality[top]))]
        return top, centrality[top]
