"""``ResistanceService`` — a cached, refreshable query front-end.

The engines in :mod:`repro.core.effective_resistance` are one-shot: build,
query, throw away.  Serving traffic needs a layer that (a) amortises the
build across millions of queries, (b) exploits the heavy skew of real query
streams (hot pairs, hot vertices) with caches, and (c) survives graph edits
without a caller-visible rebuild dance.  ``ResistanceService`` provides:

* ``query`` / ``query_pairs`` — batched pair queries through an LRU result
  cache; misses are answered by one vectorised engine call;
* a column LRU holding hot ``Z̃`` columns so single-pair queries on popular
  vertices skip sparse-matrix slicing entirely (Alg. 3 engines only);
* ``top_k_central_edges`` — spanning-edge centrality ranking (WWW'15
  application) with the all-edge resistance vector cached;
* ``refresh_after_edge_update`` — rebuild the engine for an edited graph
  (same configuration), invalidate every cache, and report timings; used by
  the incremental design flow in :mod:`repro.apps.incremental`.

The service is deliberately engine-agnostic: ``method="cholinv"`` (default)
uses the paper's Alg. 3 with the blocked Alg. 2 kernel, ``method="exact"``
the direct factorisation engine — the regression suite runs the same
behavioural checks across both.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.effective_resistance import (
    CholInvEffectiveResistance,
    ExactEffectiveResistance,
)
from repro.graphs.graph import Graph
from repro.utils.validation import require

_METHODS = ("cholinv", "exact")


@dataclass
class ServiceStats:
    """Counters a service accumulates over its lifetime."""

    queries: int = 0
    result_hits: int = 0
    result_misses: int = 0
    column_hits: int = 0
    column_misses: int = 0
    refreshes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of pair queries answered from the result cache."""
        total = self.result_hits + self.result_misses
        return self.result_hits / total if total else 0.0


@dataclass
class RefreshStats:
    """Outcome of one :meth:`ResistanceService.refresh_after_edge_update`."""

    rebuild_seconds: float
    num_nodes: int
    num_edges: int
    invalidated_results: int
    invalidated_columns: int


@dataclass
class _LRU:
    """Tiny ordered-dict LRU; values are opaque to the service."""

    capacity: int
    data: "OrderedDict" = field(default_factory=OrderedDict)

    def get(self, key):
        value = self.data.get(key)
        if value is not None or key in self.data:
            self.data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self.data[key] = value
        self.data.move_to_end(key)
        while len(self.data) > self.capacity:
            self.data.popitem(last=False)

    def __len__(self) -> int:
        return len(self.data)

    def clear(self) -> None:
        self.data.clear()


class ResistanceService:
    """Long-lived, cached effective-resistance query service.

    Parameters
    ----------
    graph:
        Weighted undirected graph to serve queries on.
    method:
        ``"cholinv"`` (Alg. 3, default) or ``"exact"``.
    result_cache_size:
        Maximum cached pair results (LRU, default 65536).
    column_cache_size:
        Maximum cached hot ``Z̃`` columns (LRU, default 4096; only used by
        the ``cholinv`` engine).
    engine_kwargs:
        Forwarded to the engine constructor on every (re)build — e.g.
        ``epsilon``, ``drop_tol``, ``ordering``, ``mode`` for ``cholinv``.
    """

    def __init__(
        self,
        graph: Graph,
        method: str = "cholinv",
        result_cache_size: int = 65536,
        column_cache_size: int = 4096,
        **engine_kwargs,
    ):
        if method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
        require(result_cache_size >= 0, "result_cache_size must be >= 0")
        require(column_cache_size >= 0, "column_cache_size must be >= 0")
        self.method = method
        self.engine_kwargs = dict(engine_kwargs)
        self.stats = ServiceStats()
        self._results = _LRU(result_cache_size)
        self._columns = _LRU(column_cache_size)
        self._edge_resistances: "np.ndarray | None" = None
        self._build(graph)

    # ------------------------------------------------------------------
    # construction / refresh
    # ------------------------------------------------------------------
    def _build(self, graph: Graph) -> float:
        start = time.perf_counter()
        if self.method == "cholinv":
            self.engine = CholInvEffectiveResistance(graph, **self.engine_kwargs)
        else:
            self.engine = ExactEffectiveResistance(graph, **self.engine_kwargs)
        self.graph = graph
        return time.perf_counter() - start

    def refresh_after_edge_update(
        self,
        graph: "Graph | None" = None,
        edges=None,
        weights=None,
    ) -> RefreshStats:
        """Rebuild the engine after graph edits and invalidate all caches.

        Either pass the fully edited ``graph``, or ``edges`` (an ``(m, 2)``
        array) with matching ``weights`` to add on top of the current graph
        — parallel occurrences coalesce, so adding an existing edge *adds
        conductance* exactly like wiring a resistor in parallel.
        """
        if graph is None:
            require(edges is not None, "pass either graph or edges")
            edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
            new_weights = (
                np.ones(edges.shape[0])
                if weights is None
                else np.asarray(weights, dtype=np.float64)
            )
            graph = Graph(
                self.graph.num_nodes,
                np.concatenate([self.graph.heads, edges[:, 0]]),
                np.concatenate([self.graph.tails, edges[:, 1]]),
                np.concatenate([self.graph.weights, new_weights]),
            ).coalesce()
        else:
            require(edges is None and weights is None,
                    "pass either graph or edges, not both")
        invalidated_results = len(self._results)
        invalidated_columns = len(self._columns)
        self._results.clear()
        self._columns.clear()
        self._edge_resistances = None
        rebuild = self._build(graph)
        self.stats.refreshes += 1
        return RefreshStats(
            rebuild_seconds=rebuild,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            invalidated_results=invalidated_results,
            invalidated_columns=invalidated_columns,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, p: int, q: int) -> float:
        """Effective resistance between ``p`` and ``q`` (cached)."""
        p, q = int(p), int(q)
        self.stats.queries += 1
        if p == q:
            return 0.0
        key = (p, q) if p < q else (q, p)
        cached = self._results.get(key)
        if cached is not None:
            self.stats.result_hits += 1
            return cached
        self.stats.result_misses += 1
        value = self._answer_single(key[0], key[1])
        self._results.put(key, value)
        return value

    def query_pairs(self, pairs) -> np.ndarray:
        """Effective resistances for an ``(m, 2)`` array of node pairs.

        Cached pairs are answered from the LRU; all misses go to the engine
        in one vectorised call (deduplicated first).
        """
        arr = np.asarray(pairs, dtype=np.int64)
        if arr.ndim == 1 and arr.shape[0] == 2:
            arr = arr.reshape(1, 2)
        require(arr.ndim == 2 and arr.shape[1] == 2, "pairs must be an (m, 2) array")
        m = arr.shape[0]
        self.stats.queries += m
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        out = np.zeros(m)
        get = self._results.get
        missing: "dict[tuple[int, int], list[int]]" = {}
        for i in range(m):
            a, b = int(lo[i]), int(hi[i])
            if a == b:
                continue
            cached = get((a, b))
            if cached is not None:
                out[i] = cached
                self.stats.result_hits += 1
            else:
                missing.setdefault((a, b), []).append(i)
        if missing:
            self.stats.result_misses += len(missing)
            keys = np.array(list(missing.keys()), dtype=np.int64)
            values = self.engine.query_pairs(keys)
            put = self._results.put
            for (key, slots), value in zip(missing.items(), values):
                value = float(value)
                put(key, value)
                for i in slots:
                    out[i] = value
        return out

    def _answer_single(self, p: int, q: int) -> float:
        """One uncached pair — via hot columns for Alg. 3, engine otherwise."""
        engine = self.engine
        if isinstance(engine, CholInvEffectiveResistance):
            if engine.component_labels[p] != engine.component_labels[q]:
                return float("inf")
            cp = engine._position[p]
            cq = engine._position[q]
            rows_p, vals_p = self._column(int(cp))
            rows_q, vals_q = self._column(int(cq))
            # dot of two sorted sparse columns via index intersection
            common, ip, iq = np.intersect1d(
                rows_p, rows_q, assume_unique=True, return_indices=True
            )
            del common
            dot = float(vals_p[ip] @ vals_q[iq]) if ip.size else 0.0
            norms = engine._column_sq_norms
            return max(float(norms[cp] + norms[cq] - 2.0 * dot), 0.0)
        return float(engine.query_pairs([(p, q)])[0])

    def _column(self, j: int) -> "tuple[np.ndarray, np.ndarray]":
        """Hot-column cache: (rows, values) of permuted ``Z̃`` column ``j``."""
        cached = self._columns.get(j)
        if cached is not None:
            self.stats.column_hits += 1
            return cached
        self.stats.column_misses += 1
        z = self.engine.z_tilde
        start, end = z.indptr[j], z.indptr[j + 1]
        column = (z.indices[start:end], z.data[start:end])
        self._columns.put(j, column)
        return column

    # ------------------------------------------------------------------
    # centrality
    # ------------------------------------------------------------------
    def all_edge_resistances(self) -> np.ndarray:
        """Effective resistance of every edge (cached after the first call)."""
        if self._edge_resistances is None:
            self._edge_resistances = self.engine.query_pairs(self.graph.edge_array())
        return self._edge_resistances

    def top_k_central_edges(self, k: int) -> "tuple[np.ndarray, np.ndarray]":
        """The ``k`` edges with the highest spanning-edge centrality.

        Returns ``(edge_indices, centralities)`` sorted by decreasing
        centrality ``w(e)·R(e)`` — the probability the edge appears in a
        uniformly random spanning tree (ties broken by edge index).
        """
        require(k >= 1, "k must be >= 1")
        centrality = self.graph.weights * self.all_edge_resistances()
        k = min(k, centrality.shape[0])
        if k == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        # stable two-pass selection keeps deterministic tie order
        top = np.argpartition(-centrality, k - 1)[:k]
        top = top[np.lexsort((top, -centrality[top]))]
        return top, centrality[top]
