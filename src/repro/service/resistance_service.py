"""``ResistanceService`` — a cached, refreshable query front-end.

The engines in :mod:`repro.core.effective_resistance` are one-shot: build,
query, throw away.  Serving traffic needs a layer that (a) amortises the
build across millions of queries, (b) exploits the heavy skew of real query
streams (hot pairs, hot vertices) with caches, and (c) survives graph edits
without a caller-visible rebuild dance.  ``ResistanceService`` provides:

* ``query`` / ``query_pairs`` — batched pair queries through an LRU result
  cache; misses are answered by one vectorised engine call;
* a column LRU holding hot ``Z̃`` columns so single-pair queries on popular
  vertices skip sparse-matrix slicing entirely (Alg. 3 engines only);
* ``top_k_central_edges`` — spanning-edge centrality ranking (WWW'15
  application) with the all-edge resistance vector cached;
* ``refresh_after_edge_update`` — rebuild the engine for an edited graph
  (same configuration), invalidate every cache, and report timings; used by
  the incremental design flow in :mod:`repro.apps.incremental`.

The service is deliberately engine-agnostic: it dispatches through the
engine registry (:mod:`repro.core.engine`), so any registered engine —
``"cholinv"`` (default), ``"exact"``, the baselines, or a component-sharded
composite (``EngineConfig(sharded=True)``) — can serve traffic, and the
regression suite runs the same behavioural checks across engines.  Built
``cholinv`` engines persist to disk (:mod:`repro.core.persistence`);
:meth:`ResistanceService.from_saved` warm-starts a worker from such a file
without refactoring.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.effective_resistance import CholInvEffectiveResistance
from repro.core.engine import (
    EngineConfig,
    as_pair_array,
    build_engine,
    config_from_kwargs,
)
from repro.graphs.graph import Graph
from repro.utils.validation import require


@dataclass
class ServiceStats:
    """Counters a service accumulates over its lifetime."""

    queries: int = 0
    result_hits: int = 0
    result_misses: int = 0
    column_hits: int = 0
    column_misses: int = 0
    refreshes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of pair queries answered from the result cache."""
        total = self.result_hits + self.result_misses
        return self.result_hits / total if total else 0.0


@dataclass
class RefreshStats:
    """Outcome of one :meth:`ResistanceService.refresh_after_edge_update`."""

    rebuild_seconds: float
    num_nodes: int
    num_edges: int
    invalidated_results: int
    invalidated_columns: int


@dataclass
class _LRU:
    """Tiny ordered-dict LRU; values are opaque to the service."""

    capacity: int
    data: "OrderedDict" = field(default_factory=OrderedDict)

    def get(self, key):
        value = self.data.get(key)
        if value is not None or key in self.data:
            self.data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self.data[key] = value
        self.data.move_to_end(key)
        while len(self.data) > self.capacity:
            self.data.popitem(last=False)

    def __len__(self) -> int:
        return len(self.data)

    def clear(self) -> None:
        self.data.clear()


class ResistanceService:
    """Long-lived, cached effective-resistance query service.

    Parameters
    ----------
    graph:
        Weighted undirected graph to serve queries on.
    method:
        Any registered engine name (``"cholinv"``, Alg. 3, is the
        default); see :func:`repro.core.engine.registered_engines`.
    result_cache_size:
        Maximum cached pair results (LRU, default 65536).
    column_cache_size:
        Maximum cached hot ``Z̃`` columns (LRU, default 4096; only used by
        the ``cholinv`` engine).
    config:
        Full :class:`~repro.core.engine.EngineConfig`; overrides
        ``method``/``engine_kwargs`` when given.
    engine_kwargs:
        Legacy engine parameters (``epsilon``, ``drop_tol``, …), folded
        into an ``EngineConfig`` and used on every (re)build.
    """

    def __init__(
        self,
        graph: Graph,
        method: str = "cholinv",
        result_cache_size: int = 65536,
        column_cache_size: int = 4096,
        config: "EngineConfig | None" = None,
        **engine_kwargs,
    ):
        if config is None:
            config = config_from_kwargs(method, **engine_kwargs)
        elif engine_kwargs:
            raise ValueError("pass config or engine kwargs, not both")
        elif method != "cholinv" and method != config.method:
            raise ValueError(
                f"method {method!r} conflicts with config.method "
                f"{config.method!r}"
            )
        self._init_state(config, result_cache_size, column_cache_size)
        self._build(graph)

    def _init_state(
        self,
        config: EngineConfig,
        result_cache_size: int,
        column_cache_size: int,
    ) -> None:
        require(result_cache_size >= 0, "result_cache_size must be >= 0")
        require(column_cache_size >= 0, "column_cache_size must be >= 0")
        self.config = config
        self.stats = ServiceStats()
        self._results = _LRU(result_cache_size)
        self._columns = _LRU(column_cache_size)
        self._edge_resistances: "np.ndarray | None" = None

    @property
    def method(self) -> str:
        """Name of the served engine (back-compat accessor)."""
        return self.config.method

    @classmethod
    def from_saved(
        cls,
        path,
        result_cache_size: int = 65536,
        column_cache_size: int = 4096,
    ) -> "ResistanceService":
        """Warm-start a service from an engine persisted with ``save()``.

        The expensive build is skipped entirely: the engine state (``Z̃``,
        permutation, norms, labels, graph, config) comes off disk, and
        later :meth:`refresh_after_edge_update` calls rebuild with the
        saved configuration.
        """
        from repro.core.persistence import load_engine

        engine = load_engine(path)
        service = cls.__new__(cls)
        service._init_state(engine.config, result_cache_size, column_cache_size)
        service.engine = engine
        service.graph = engine.graph
        return service

    # ------------------------------------------------------------------
    # construction / refresh
    # ------------------------------------------------------------------
    def _build(self, graph: Graph) -> float:
        start = time.perf_counter()
        self.engine = build_engine(graph, self.config)
        self.graph = graph
        return time.perf_counter() - start

    def refresh_after_edge_update(
        self,
        graph: "Graph | None" = None,
        edges=None,
        weights=None,
    ) -> RefreshStats:
        """Rebuild the engine after graph edits and invalidate all caches.

        Either pass the fully edited ``graph``, or ``edges`` (an ``(m, 2)``
        array) with matching ``weights`` to add on top of the current graph
        — parallel occurrences coalesce, so adding an existing edge *adds
        conductance* exactly like wiring a resistor in parallel.
        """
        if graph is None:
            require(edges is not None, "pass either graph or edges")
            edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
            new_weights = (
                np.ones(edges.shape[0])
                if weights is None
                else np.asarray(weights, dtype=np.float64).ravel()
            )
            require(
                new_weights.shape[0] == edges.shape[0],
                f"weights length {new_weights.shape[0]} does not match "
                f"{edges.shape[0]} edges",
            )
            graph = Graph(
                self.graph.num_nodes,
                np.concatenate([self.graph.heads, edges[:, 0]]),
                np.concatenate([self.graph.tails, edges[:, 1]]),
                np.concatenate([self.graph.weights, new_weights]),
            ).coalesce()
        else:
            require(edges is None and weights is None,
                    "pass either graph or edges, not both")
        invalidated_results = len(self._results)
        invalidated_columns = len(self._columns)
        self._results.clear()
        self._columns.clear()
        self._edge_resistances = None
        rebuild = self._build(graph)
        self.stats.refreshes += 1
        return RefreshStats(
            rebuild_seconds=rebuild,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            invalidated_results=invalidated_results,
            invalidated_columns=invalidated_columns,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, p: int, q: int) -> float:
        """Effective resistance between ``p`` and ``q`` (cached)."""
        p, q = int(p), int(q)
        self.stats.queries += 1
        if p == q:
            return 0.0
        key = (p, q) if p < q else (q, p)
        cached = self._results.get(key)
        if cached is not None:
            self.stats.result_hits += 1
            return cached
        self.stats.result_misses += 1
        value = self._answer_single(key[0], key[1])
        self._results.put(key, value)
        return value

    def query_pairs(self, pairs) -> np.ndarray:
        """Effective resistances for an ``(m, 2)`` array of node pairs.

        Cached pairs are answered from the LRU; all misses go to the engine
        in one vectorised call (deduplicated first).
        """
        arr = as_pair_array(pairs)
        m = arr.shape[0]
        if m == 0:
            return np.empty(0)
        self.stats.queries += m
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        out = np.zeros(m)
        get = self._results.get
        missing: "dict[tuple[int, int], list[int]]" = {}
        for i in range(m):
            a, b = int(lo[i]), int(hi[i])
            if a == b:
                continue
            cached = get((a, b))
            if cached is not None:
                out[i] = cached
                self.stats.result_hits += 1
            else:
                missing.setdefault((a, b), []).append(i)
        if missing:
            self.stats.result_misses += len(missing)
            keys = np.array(list(missing.keys()), dtype=np.int64)
            values = self.engine.query_pairs(keys)
            put = self._results.put
            for (key, slots), value in zip(missing.items(), values):
                value = float(value)
                put(key, value)
                for i in slots:
                    out[i] = value
        return out

    def _answer_single(self, p: int, q: int) -> float:
        """One uncached pair — via hot columns for Alg. 3, engine otherwise."""
        engine = self.engine
        if isinstance(engine, CholInvEffectiveResistance):
            if engine.component_labels[p] != engine.component_labels[q]:
                return float("inf")
            cp = engine._position[p]
            cq = engine._position[q]
            rows_p, vals_p = self._column(int(cp))
            rows_q, vals_q = self._column(int(cq))
            # dot of two sorted sparse columns via index intersection
            common, ip, iq = np.intersect1d(
                rows_p, rows_q, assume_unique=True, return_indices=True
            )
            del common
            dot = float(vals_p[ip] @ vals_q[iq]) if ip.size else 0.0
            norms = engine._column_sq_norms
            return max(float(norms[cp] + norms[cq] - 2.0 * dot), 0.0)
        return float(engine.query_pairs([(p, q)])[0])

    def _column(self, j: int) -> "tuple[np.ndarray, np.ndarray]":
        """Hot-column cache: (rows, values) of permuted ``Z̃`` column ``j``."""
        cached = self._columns.get(j)
        if cached is not None:
            self.stats.column_hits += 1
            return cached
        self.stats.column_misses += 1
        z = self.engine.z_tilde
        start, end = z.indptr[j], z.indptr[j + 1]
        column = (z.indices[start:end], z.data[start:end])
        self._columns.put(j, column)
        return column

    # ------------------------------------------------------------------
    # centrality
    # ------------------------------------------------------------------
    def all_edge_resistances(self) -> np.ndarray:
        """Effective resistance of every edge (cached after the first call)."""
        if self._edge_resistances is None:
            self._edge_resistances = self.engine.query_pairs(self.graph.edge_array())
        return self._edge_resistances

    def top_k_central_edges(self, k: int) -> "tuple[np.ndarray, np.ndarray]":
        """The ``k`` edges with the highest spanning-edge centrality.

        Returns ``(edge_indices, centralities)`` sorted by decreasing
        centrality ``w(e)·R(e)`` — the probability the edge appears in a
        uniformly random spanning tree (ties broken by edge index).
        """
        require(k >= 1, "k must be >= 1")
        centrality = self.graph.weights * self.all_edge_resistances()
        k = min(k, centrality.shape[0])
        if k == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        # stable two-pass selection keeps deterministic tie order
        top = np.argpartition(-centrality, k - 1)[:k]
        top = top[np.lexsort((top, -centrality[top]))]
        return top, centrality[top]
