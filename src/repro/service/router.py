"""SLA-aware query routing across tiered-accuracy estimator engines.

A request may carry an :class:`SLA` — a relative error tolerance and/or a
latency budget.  The :class:`QueryRouter` owns a ladder of cheap bounded
engines (:mod:`repro.estimators`) plus a measured
:class:`CalibrationProfile`, and decides per pair which tier may serve it:

* **certified acceptance** — a bounded tier's half-width over its estimate
  (the *routing score*) is directly below ``rel_tol``;
* **calibrated acceptance** — the profile stores, per tier, the observed
  error against the exact engine as a function of the routing score on a
  calibration sample; :meth:`TierCalibration.threshold_for` inverts that
  (largest score whose prefix-max observed error stays under a safety
  margin of the tolerance), which routinely accepts far more pairs than
  the certified bound alone — the certified interval is loose exactly
  where the estimate is still good.  This acceptance is *empirical*:
  it bounds the error seen on the calibration sample, and pairs from a
  heavier error tail than the sample can exceed ``rel_tol`` — size the
  calibration sample like the traffic it has to vouch for;
* **latency veto** — with a ``latency_budget``, tiers whose measured
  per-pair cost cannot fit the remaining budget are skipped, and an
  exact-only request that cannot fit the budget downgrades to the most
  accurate tier that does.

Whatever no tier may keep **escalates**: the router reports those pairs
unserved and the service answers them through its normal exact path (and
only those answers enter the exact result cache).  A request with no SLA
never reaches the router at all — that path stays bit-identical to the
pre-router service.

The profile serialises to JSON next to a persisted engine
(:meth:`CalibrationProfile.default_path`), so a warm-started worker
routes with the same measured thresholds that were calibrated when the
engine was saved.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.engine import ResistanceEngine, as_pair_columns
from repro.estimators.base import BoundedResistanceEngine
from repro.utils.validation import require

_TINY = 1e-12
#: stay this fraction below the requested tolerance when inverting the
#: calibration curve — the sample is finite, so leave headroom
CALIBRATION_MARGIN = 0.8
#: never read a threshold off fewer calibration points than this — a
#: handful of samples says nothing about the error tail beyond them
MIN_CALIBRATION_SUPPORT = 32


@dataclass(frozen=True)
class SLA:
    """Per-request service-level agreement.

    ``rel_tol`` — maximum acceptable relative error versus the exact
    engine (``None`` = exact answers required).  ``latency_budget`` —
    target wall-clock seconds for the whole batch (``None`` = no limit).
    A default-constructed ``SLA()`` means "exact, no budget", which the
    service serves on its unchanged legacy path.
    """

    rel_tol: "float | None" = None
    latency_budget: "float | None" = None

    def __post_init__(self) -> None:
        require(
            self.rel_tol is None or self.rel_tol > 0.0,
            f"rel_tol must be None or > 0, got {self.rel_tol}",
        )
        require(
            self.latency_budget is None or self.latency_budget > 0.0,
            f"latency_budget must be None or > 0, got {self.latency_budget}",
        )

    @property
    def is_default(self) -> bool:
        return self.rel_tol is None and self.latency_budget is None


@dataclass
class TierCalibration:
    """Measured cost/error behaviour of one tier on a calibration sample.

    ``scores`` is the tier's routing score (half-width / |estimate|) on
    each calibration pair, sorted ascending; ``prefix_max_error`` is the
    running maximum of the observed relative error against the exact
    engine in that order.  Together they answer: *if I accept every pair
    scoring below ``tau``, what is the worst error I observed?*
    """

    tier: str
    scores: np.ndarray
    prefix_max_error: np.ndarray
    seconds_per_pair: float

    def threshold_for(
        self,
        rel_tol: float,
        margin: float = CALIBRATION_MARGIN,
        min_support: int = MIN_CALIBRATION_SUPPORT,
    ) -> "float | None":
        """Largest routing score whose observed error stays within
        ``margin * rel_tol`` on the calibration sample (``None`` if the
        tier never met the tolerance).

        The returned threshold is an *empirical* guarantee: it bounds the
        error observed on the calibration sample, not the error of every
        future pair — error tails heavier than the sample can exceed the
        tolerance.  ``min_support`` refuses thresholds backed by fewer
        calibration points than that, and a larger calibration sample is
        the lever that actually tightens the tail.
        """
        ok = self.prefix_max_error <= margin * rel_tol
        if not bool(ok.any()):
            return None
        index = int(np.max(np.flatnonzero(ok)))
        if index + 1 < min_support:
            return None
        return float(self.scores[index])

    def to_dict(self) -> "dict[str, Any]":
        return {
            "tier": self.tier,
            "scores": [float(s) for s in self.scores],
            "prefix_max_error": [float(e) for e in self.prefix_max_error],
            "seconds_per_pair": float(self.seconds_per_pair),
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "TierCalibration":
        return cls(
            tier=str(data["tier"]),
            scores=np.asarray(data["scores"], dtype=np.float64),
            prefix_max_error=np.asarray(
                data["prefix_max_error"], dtype=np.float64
            ),
            seconds_per_pair=float(data["seconds_per_pair"]),
        )


@dataclass
class CalibrationProfile:
    """Per-engine measured costs and error curves, JSON-serialisable."""

    tiers: "dict[str, TierCalibration]" = field(default_factory=dict)
    exact_seconds_per_pair: float = 0.0
    num_samples: int = 0

    def to_dict(self) -> "dict[str, Any]":
        return {
            "format_version": 1,
            "exact_seconds_per_pair": float(self.exact_seconds_per_pair),
            "num_samples": int(self.num_samples),
            "tiers": {name: cal.to_dict() for name, cal in self.tiers.items()},
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "CalibrationProfile":
        return cls(
            tiers={
                name: TierCalibration.from_dict(cal)
                for name, cal in dict(data["tiers"]).items()
            },
            exact_seconds_per_pair=float(data["exact_seconds_per_pair"]),
            num_samples=int(data["num_samples"]),
        )

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "CalibrationProfile":
        return cls.from_dict(json.loads(Path(path).read_text()))

    @staticmethod
    def default_path(engine_path: "str | Path") -> Path:
        """Sidecar location next to a persisted engine ``.npz``."""
        engine_path = Path(engine_path)
        return engine_path.with_name(engine_path.name + ".calibration.json")


def calibrate(
    exact_engine: ResistanceEngine,
    tier_engines: "Mapping[str, BoundedResistanceEngine]",
    num_pairs: int = 4096,
    seed: int = 0,
) -> CalibrationProfile:
    """Measure per-tier cost and score→error curves against the exact engine.

    Samples random same-component node pairs, answers them on the exact
    engine (timed) and on every tier (timed, with bounds), and records
    each tier's routing-score-ordered error curve.  Deterministic for a
    given engine/seed.

    The sample size is the accuracy lever of calibrated routing: the
    inverted curve only bounds errors *observed* on these pairs, so a
    sample too small to exhibit the tier's error tail yields thresholds
    that over-accept (see :meth:`TierCalibration.threshold_for`).  The
    default oversamples on purpose; calibration costs one exact batch.
    """
    require(num_pairs >= 1, "num_pairs must be >= 1")
    n = exact_engine.n
    labels = exact_engine.component_labels
    rng = np.random.default_rng(seed)
    # oversample: rejected rows (diagonal / cross-component) carry no
    # routing signal
    draw = rng.integers(0, n, size=(4 * num_pairs, 2))
    keep = (draw[:, 0] != draw[:, 1]) & (
        labels[draw[:, 0]] == labels[draw[:, 1]]
    )
    pairs = draw[keep][:num_pairs]
    require(
        pairs.shape[0] >= 1,
        "calibration found no non-trivial pairs to sample "
        "(graph too small or fully disconnected)",
    )
    start = time.perf_counter()
    reference = exact_engine.query_pairs(pairs)
    exact_seconds = (time.perf_counter() - start) / pairs.shape[0]
    scale = np.maximum(np.abs(reference), _TINY)
    profile = CalibrationProfile(
        exact_seconds_per_pair=exact_seconds, num_samples=int(pairs.shape[0])
    )
    for name, engine in tier_engines.items():
        start = time.perf_counter()
        values, halves = engine.query_pairs_with_bounds(pairs)
        tier_seconds = (time.perf_counter() - start) / pairs.shape[0]
        score = halves / np.maximum(np.abs(values), _TINY)
        error = np.abs(values - reference) / scale
        order = np.argsort(score, kind="stable")
        profile.tiers[name] = TierCalibration(
            tier=name,
            scores=score[order],
            prefix_max_error=np.maximum.accumulate(error[order]),
            seconds_per_pair=tier_seconds,
        )
    return profile


@dataclass
class RoutingResult:
    """Outcome of one :meth:`QueryRouter.serve` call."""

    values: np.ndarray
    half_widths: np.ndarray
    served: np.ndarray                    # bool: answered by some tier
    tier_rows: "dict[str, int]" = field(default_factory=dict)
    tier_seconds: "dict[str, float]" = field(default_factory=dict)

    @property
    def escalated(self) -> int:
        """Pairs no tier could keep — the service's exact path owns them."""
        return int(np.count_nonzero(~self.served))


class QueryRouter:
    """Routes pair batches across calibrated tiers to meet an SLA.

    Parameters
    ----------
    profile:
        Measured per-tier cost/error curves (see :func:`calibrate`).
    engines:
        Bounded tier engines by name; entries without a calibration in
        the profile are ignored (they cannot be routed safely).
    order:
        Ladder order, cheapest first; defaults to ``engines`` order.
    """

    def __init__(
        self,
        profile: CalibrationProfile,
        engines: "Mapping[str, BoundedResistanceEngine]",
        order: "tuple[str, ...] | None" = None,
    ):
        self.profile = profile
        self.engines = {
            name: engine
            for name, engine in engines.items()
            if name in profile.tiers
        }
        ladder = tuple(order) if order is not None else tuple(self.engines)
        self.order = tuple(name for name in ladder if name in self.engines)

    def serve(self, pairs: np.ndarray, sla: SLA) -> RoutingResult:
        """Answer what the tiers may keep under ``sla``; escalate the rest.

        Structural rows (diagonal / cross-component) score 0 on every
        bounded tier and are kept exactly; with no usable tier the whole
        batch escalates.
        """
        ps, qs = as_pair_columns(pairs)
        count = ps.shape[0]
        result = RoutingResult(
            values=np.zeros(count),
            half_widths=np.zeros(count),
            served=np.zeros(count, dtype=bool),
        )
        if count == 0:
            return result
        if sla.rel_tol is None:
            return self._serve_exact_or_downgrade(pairs, sla, result)
        remaining = np.arange(count)
        budget = sla.latency_budget
        spent = 0.0
        for name in self.order:
            if remaining.size == 0:
                break
            calibration = self.profile.tiers[name]
            if budget is not None and (
                spent + calibration.seconds_per_pair * remaining.size > budget
            ):
                continue  # this tier alone would blow the budget
            threshold = calibration.threshold_for(sla.rel_tol)
            cut = (
                sla.rel_tol
                if threshold is None
                else max(threshold, sla.rel_tol)
            )
            start = time.perf_counter()
            values, halves = self.engines[name].query_pairs_with_bounds(
                np.column_stack((ps[remaining], qs[remaining]))
            )
            elapsed = time.perf_counter() - start
            spent += elapsed
            score = halves / np.maximum(np.abs(values), _TINY)
            accept = score <= cut
            kept = remaining[accept]
            result.values[kept] = values[accept]
            result.half_widths[kept] = halves[accept]
            result.served[kept] = True
            result.tier_rows[name] = int(np.count_nonzero(accept))
            result.tier_seconds[name] = elapsed
            remaining = remaining[~accept]
        return result

    def _serve_exact_or_downgrade(
        self, pairs: np.ndarray, sla: SLA, result: RoutingResult
    ) -> RoutingResult:
        """Exact requested: escalate everything unless the latency budget
        cannot fit the exact path, in which case the most accurate tier
        that fits serves the whole batch (best effort)."""
        budget = sla.latency_budget
        count = result.values.shape[0]
        if budget is None:
            return result
        if self.profile.exact_seconds_per_pair * count <= budget:
            return result
        for name in reversed(self.order):
            calibration = self.profile.tiers[name]
            if calibration.seconds_per_pair * count > budget:
                continue
            start = time.perf_counter()
            values, halves = self.engines[name].query_pairs_with_bounds(pairs)
            elapsed = time.perf_counter() - start
            result.values[:] = values
            result.half_widths[:] = halves
            result.served[:] = True
            result.tier_rows[name] = count
            result.tier_seconds[name] = elapsed
            return result
        return result  # nothing fits; exact is the honest fallback
