"""Small shared utilities: timing, RNG handling, argument validation."""

from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_positive,
    check_square_sparse,
    check_symmetric,
    require,
)

__all__ = [
    "Timer",
    "timed",
    "ensure_rng",
    "require",
    "check_positive",
    "check_square_sparse",
    "check_symmetric",
]
