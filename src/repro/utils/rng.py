"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (graph generators, the JL random
projection baseline, sparsification sampling, error estimation on random
edges) accepts a ``seed`` argument that may be ``None``, an ``int`` or an
already-constructed :class:`numpy.random.Generator`.  Funnelling everything
through :func:`ensure_rng` keeps experiments reproducible.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for fresh OS entropy, an integer for a reproducible stream,
        or an existing generator which is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used when a pipeline stage fans out into parallel sub-tasks (e.g. one
    generator per power-grid block) so each sub-task has an independent,
    reproducible stream.
    """
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
