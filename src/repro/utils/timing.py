"""Wall-clock timing helpers used by the benchmark harness and pipelines.

The paper reports wall-clock times for every stage (incomplete Cholesky,
approximate inverse, query evaluation, reduction, transient analysis).  The
``Timer`` context manager gives a uniform way to collect those stage timings
into a dictionary that the reporting code can print next to the paper's
numbers.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulate named wall-clock timings.

    Accumulation is lock-protected, so engines queried from several
    threads (the serving layer's executor fan-out) never lose an
    increment; overlapping sections still *sum* their wall-clock, so a
    section worked by k threads at once counts k-fold.

    Example
    -------
    >>> t = Timer()
    >>> with t.section("factorize"):
    ...     pass
    >>> "factorize" in t.times
    True
    """

    times: dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @contextmanager
    def section(self, name: str):
        """Time a ``with`` block and accumulate under ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.times[name] = self.times.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """Sum of all recorded sections in seconds."""
        with self._lock:
            return sum(self.times.values())

    def __getitem__(self, name: str) -> float:
        with self._lock:
            return self.times[name]

    def report(self) -> str:
        """Render timings as aligned ``name: seconds`` lines."""
        with self._lock:  # one consistent snapshot; total matches the rows
            times = dict(self.times)
        if not times:
            return "(no timings recorded)"
        width = max(len(k) for k in times)
        lines = [f"{k.ljust(width)} : {v:10.4f} s" for k, v in times.items()]
        lines.append(f"{'total'.ljust(width)} : {sum(times.values()):10.4f} s")
        return "\n".join(lines)


@contextmanager
def timed():
    """Yield a zero-argument callable returning elapsed seconds so far.

    >>> with timed() as elapsed:
    ...     _ = sum(range(10))
    >>> elapsed() >= 0.0
    True
    """
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start
