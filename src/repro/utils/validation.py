"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str) -> None:
    """Raise if ``value`` is not strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_square_sparse(matrix, name: str = "matrix") -> None:
    """Raise if ``matrix`` is not a square scipy sparse matrix."""
    if not sp.issparse(matrix):
        raise TypeError(f"{name} must be a scipy sparse matrix, got {type(matrix)!r}")
    rows, cols = matrix.shape
    if rows != cols:
        raise ValueError(f"{name} must be square, got shape {matrix.shape}")


def check_symmetric(matrix, name: str = "matrix", tol: float = 1e-10) -> None:
    """Raise if a sparse ``matrix`` is not numerically symmetric."""
    check_square_sparse(matrix, name)
    diff = matrix - matrix.T
    if diff.nnz and np.abs(diff.data).max() > tol * max(1.0, np.abs(matrix.data).max()):
        raise ValueError(f"{name} is not symmetric within tolerance {tol}")
