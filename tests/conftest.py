"""Shared fixtures: small graphs with known structure."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.generators import fe_mesh_2d, grid_2d, path_graph
from repro.graphs.graph import Graph
from repro.graphs.laplacian import grounded_laplacian


@pytest.fixture
def small_grid() -> Graph:
    """8×8 unweighted grid — 64 nodes, structured."""
    return grid_2d(8, 8)


@pytest.fixture
def weighted_mesh() -> Graph:
    """Triangulated weighted mesh — irregular structure, deterministic."""
    return fe_mesh_2d(7, 9, seed=42)


@pytest.fixture
def tiny_path() -> Graph:
    """5-node path with unit weights; every quantity has a closed form."""
    return path_graph(5)


@pytest.fixture
def two_components() -> Graph:
    """Two disjoint triangles on 6 nodes."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    return Graph.from_edges(6, edges)


@pytest.fixture
def spd_matrix() -> sp.csc_matrix:
    """Reproducible small sparse SPD matrix (grounded mesh Laplacian)."""
    graph = fe_mesh_2d(6, 6, seed=7)
    matrix, _ = grounded_laplacian(graph, 1.0)
    return matrix


def random_spd(n: int, density: float, seed: int) -> sp.csc_matrix:
    """Random sparse SPD helper used by several test modules."""
    rng = np.random.default_rng(seed)
    mask = sp.random(n, n, density=density, random_state=rng, data_rvs=lambda k: rng.uniform(-1, 1, k))
    sym = sp.triu(mask, k=1)
    sym = sym + sym.T
    diag = np.abs(sym).sum(axis=1).A.ravel() + rng.uniform(0.5, 1.5, n)
    return (sym + sp.diags(diag)).tocsc()
