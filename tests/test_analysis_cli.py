"""Reporters, baseline workflow and CLI front-end of ``repro.analysis``.

Includes the self-check the issue asks for: the analyzer must run clean
over the real ``src/repro`` tree (with an empty committed baseline) and
over its own source.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Finding, run_analysis
from repro.analysis.app import main
from repro.analysis.baseline import (
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"

FINDINGS = (
    Finding(
        path="core/a.py",
        line=3,
        col=4,
        rule="determinism",
        severity="error",
        message="call to np.random.randn is unseeded",
    ),
    Finding(
        path="svc/b.py",
        line=10,
        col=8,
        rule="lock-discipline",
        severity="error",
        message="attribute 'self.total' is written without holding a lock",
    ),
)

VIOLATION = "def f(xs=[]):\n    return xs\n"


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
class TestReporters:
    def test_text_report_golden(self):
        text = render_text(FINDINGS)
        assert text.splitlines() == [
            "core/a.py:3:4: determinism [error] "
            "call to np.random.randn is unseeded",
            "svc/b.py:10:8: lock-discipline [error] "
            "attribute 'self.total' is written without holding a lock",
            "2 finding(s): 2 error(s), 0 warning(s) "
            "(0 suppressed, 0 baselined)",
        ]

    def test_text_report_clean_summary(self):
        assert render_text((), suppressed=FINDINGS[:1], baselined=FINDINGS[1:]) == (
            "clean: no findings (1 suppressed, 1 baselined)"
        )

    def test_json_report_golden(self):
        payload = json.loads(render_json(FINDINGS[:1], baselined=FINDINGS[1:]))
        assert payload["version"] == 1
        assert payload["counts"] == {
            "findings": 1,
            "errors": 1,
            "warnings": 0,
            "suppressed": 0,
            "baselined": 1,
        }
        assert payload["findings"] == [
            {
                "rule": "determinism",
                "severity": "error",
                "path": "core/a.py",
                "line": 3,
                "col": 4,
                "message": "call to np.random.randn is unseeded",
            }
        ]
        assert [f["rule"] for f in payload["baselined"]] == ["lock-discipline"]

    def test_json_report_is_stable(self):
        assert render_json(FINDINGS) == render_json(tuple(reversed(FINDINGS)))


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = write_baseline(tmp_path / "base.json", FINDINGS)
        assert load_baseline(path) == {f.key() for f in FINDINGS}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_partition_ignores_line_numbers(self):
        # a baselined finding that moved a few lines must stay baselined
        moved = Finding(
            path=FINDINGS[0].path,
            line=FINDINGS[0].line + 17,
            col=0,
            rule=FINDINGS[0].rule,
            severity=FINDINGS[0].severity,
            message=FINDINGS[0].message,
        )
        new, baselined = partition((moved, FINDINGS[1]), {FINDINGS[0].key()})
        assert baselined == (moved,)
        assert new == (FINDINGS[1],)


# ----------------------------------------------------------------------
# CLI front-end
# ----------------------------------------------------------------------
class TestApp:
    def test_violation_exits_one_and_prints_finding(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION, encoding="utf-8")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "mutable-default-args" in out
        assert "1 finding(s): 1 error(s)" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def f(xs=None):\n    return xs\n")
        assert main([str(tmp_path)]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_json_format_parses(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION, encoding="utf-8")
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["errors"] == 1
        assert payload["findings"][0]["rule"] == "mutable-default-args"

    def test_write_baseline_then_rerun_exits_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION, encoding="utf-8")
        base = tmp_path / "base.json"
        assert main([str(tmp_path), "--baseline", str(base), "--write-baseline"]) == 0
        assert base.exists()
        assert main([str(tmp_path), "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "clean: no findings (0 suppressed, 1 baselined)" in out

    def test_baselined_finding_resurfaces_when_message_changes(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION, encoding="utf-8")
        base = tmp_path / "base.json"
        main([str(tmp_path), "--baseline", str(base), "--write-baseline"])
        # a *different* violation in the same file is not covered
        (tmp_path / "mod.py").write_text(
            VIOLATION + "def g(ys={}):\n    return ys\n", encoding="utf-8"
        )
        assert main([str(tmp_path), "--baseline", str(base)]) == 1

    def test_select_limits_rules(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION, encoding="utf-8")
        assert main([str(tmp_path), "--select", "determinism"]) == 0
        assert main([str(tmp_path), "--select", "mutable-default-args"]) == 1

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
        assert main([str(tmp_path), "--select", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent")]) == 2

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
        absent = tmp_path / "absent-baseline.json"
        assert main([str(tmp_path), "--baseline", str(absent)]) == 2
        err = capsys.readouterr().err
        assert "baseline file not found" in err
        assert "--write-baseline" in err  # the actionable part

    def test_missing_baseline_ok_when_writing_it(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION, encoding="utf-8")
        base = tmp_path / "new-baseline.json"
        assert main([str(tmp_path), "--baseline", str(base), "--write-baseline"]) == 0
        assert base.exists()

    def test_default_baseline_may_be_absent(self, tmp_path, capsys):
        # only an *explicit* --baseline must exist; the implicit default
        # (analysis-baseline.json) is simply skipped when missing
        (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 0

    def test_paths_option_extends_positional(self, tmp_path, capsys):
        clean = tmp_path / "clean"
        dirty = tmp_path / "dirty"
        clean.mkdir()
        dirty.mkdir()
        (clean / "a.py").write_text("x = 1\n", encoding="utf-8")
        (dirty / "b.py").write_text(VIOLATION, encoding="utf-8")
        assert main([str(clean)]) == 0
        assert main([str(clean), "--paths", str(dirty)]) == 1
        assert main(["--paths", str(clean), "--paths", str(dirty)]) == 1

    def test_lock_graph_export(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "import threading\n\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._aux_lock = threading.Lock()\n"
            "        self.value = 0\n\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            with self._aux_lock:\n"
            "                self.value += 1\n",
            encoding="utf-8",
        )
        dot = tmp_path / "locks.dot"
        as_json = tmp_path / "locks.json"
        assert main(
            [
                str(tmp_path),
                "--lock-graph-dot", str(dot),
                "--lock-graph-json", str(as_json),
            ]
        ) == 0
        assert "mod.Box._lock" in dot.read_text(encoding="utf-8")
        payload = json.loads(as_json.read_text(encoding="utf-8"))
        assert payload["cycles"] == []
        assert [e["src"] for e in payload["edges"]] == ["mod.Box._lock"]
        assert [e["dst"] for e in payload["edges"]] == ["mod.Box._aux_lock"]

    def test_list_rules_names_all_ten(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "lock-discipline",
            "lock-order",
            "atomicity",
            "blocking-under-lock",
            "executor-escape",
            "registry-purity",
            "config-persistence-drift",
            "determinism",
            "boundary-validation",
            "mutable-default-args",
        ):
            assert rule_id in out


# ----------------------------------------------------------------------
# self-checks: the shipped tree is clean
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_src_tree_is_clean(self):
        report = run_analysis([SRC])
        assert report.findings == (), "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in report.findings
        )

    def test_analyzer_own_source_is_clean_with_zero_suppressions(self):
        report = run_analysis([SRC / "analysis"])
        assert report.findings == ()
        assert report.suppressed == ()

    def test_committed_baseline_is_empty(self):
        assert load_baseline(REPO_ROOT / "analysis-baseline.json") == set()

    def test_module_entry_point_runs(self):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH")])
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(SRC), "--format", "json"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert json.loads(result.stdout)["counts"]["errors"] == 0
