"""The shared project model and the lock-order graph.

Two kinds of coverage live here:

* a **self-check** that the model's lock inventory is complete against
  the real tree — an independent (and deliberately dumber) AST walk
  collects every ``threading.Lock``/``RLock``/``Condition`` attribute
  assigned anywhere under ``src/repro`` and asserts the model discovered
  each one, so a new lock idiom the model misses fails CI instead of
  silently escaping every concurrency pass;
* a synthetic **two-class deadlock** fixture driven through the full
  stack (``load_project`` → ``build_model`` → ``build_lock_graph``) with
  golden DOT output, cycle extraction and ``cycle_findings``.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.framework import load_project
from repro.analysis.lockgraph import build_lock_graph, cycle_findings
from repro.analysis.model import LOCK_CTORS, build_model

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
DATA = Path(__file__).resolve().parent / "data"


# ----------------------------------------------------------------------
# lock-inventory completeness against the real tree
# ----------------------------------------------------------------------
def _ctor_kind(expr: ast.expr) -> "str | None":
    """``threading.Lock()``-style constructor call → its kind."""
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return LOCK_CTORS.get(name) if name is not None else None


def _expected_class_locks() -> "set[tuple[str, str]]":
    """(class name, attr) of every lock assigned anywhere in ``src/repro``.

    An independent walk, kept intentionally simpler than the model's:
    ``self.X = threading.Lock()`` in any method, dataclass fields with
    ``default_factory=threading.Lock``, and per-key locks created with
    ``d.setdefault(k, threading.Lock())``.
    """
    found: "set[tuple[str, str]]" = set()
    for file in sorted(SRC.rglob("*.py")):
        tree = ast.parse(file.read_text(encoding="utf-8"))
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for node in ast.walk(cls):
                # self.X = threading.Lock()  (also annotated form)
                targets = []
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                if _ctor_kind(value) is None:
                    # d.setdefault(key, threading.Lock()) → keyed lock in d
                    if (
                        isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Attribute)
                        and value.func.attr == "setdefault"
                        and len(value.args) == 2
                        and _ctor_kind(value.args[1]) is not None
                    ):
                        container = value.func.value
                        if (
                            isinstance(container, ast.Attribute)
                            and isinstance(container.value, ast.Name)
                            and container.value.id == "self"
                        ):
                            found.add((cls.name, container.attr))
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        found.add((cls.name, target.attr))
            # X: Lock = field(default_factory=threading.Lock)
            for stmt in cls.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and isinstance(stmt.value, ast.Call)
                ):
                    for kw in stmt.value.keywords:
                        if kw.arg == "default_factory" and (
                            getattr(kw.value, "attr", None) in LOCK_CTORS
                            or getattr(kw.value, "id", None) in LOCK_CTORS
                        ):
                            found.add((cls.name, stmt.target.id))
    return found


class TestLockInventory:
    @pytest.fixture(scope="class")
    def model(self):
        project, errors = load_project([SRC])
        assert errors == []
        return build_model(project)

    def test_real_tree_has_locks_to_find(self):
        # guards the self-check itself against a refactor that moves the
        # concurrency surface: if this drops to zero the walk is broken
        assert len(_expected_class_locks()) >= 8

    def test_model_inventory_is_complete(self, model):
        inventory = {
            (info.name, attr)
            for info in model.classes.values()
            for attr in info.locks
        }
        missing = _expected_class_locks() - inventory
        assert missing == set(), (
            f"locks assigned in src/repro but absent from the model "
            f"inventory (the concurrency passes cannot see them): "
            f"{sorted(missing)}"
        )

    def test_module_level_locks_are_discovered(self, model):
        # the analysis package's own model cache lock is module-level
        assert any(
            qual.endswith("._model_cache_lock") for qual in model.module_locks
        )

    def test_real_lock_graph_is_acyclic_and_nonempty(self, model):
        graph = build_lock_graph(model)
        assert graph.cycles() == []
        assert len(graph.edges) >= 5  # the tree genuinely nests locks


# ----------------------------------------------------------------------
# synthetic two-class deadlock, end to end
# ----------------------------------------------------------------------
#: Neither class nests two ``with`` blocks; the cycle only exists because
#: each calls into the other while holding its own lock.
DEADLOCK_SRC = textwrap.dedent(
    """
import threading

class Producer:
    def __init__(self, consumer):
        self._queue_lock = threading.Lock()
        self.consumer: "Consumer" = consumer

    def push(self):
        with self._queue_lock:
            self.consumer.ack()

    def ack(self):
        with self._queue_lock:
            pass

class Consumer:
    def __init__(self, producer):
        self._state_lock = threading.Lock()
        self.producer: "Producer" = producer

    def pull(self):
        with self._state_lock:
            self.producer.ack()

    def ack(self):
        with self._state_lock:
            pass
"""
)


class TestDeadlockFixture:
    @pytest.fixture()
    def graph(self, tmp_path):
        (tmp_path / "deadlock.py").write_text(DEADLOCK_SRC, encoding="utf-8")
        project, errors = load_project([tmp_path])
        assert errors == []
        return build_lock_graph(build_model(project))

    def test_dot_matches_golden(self, graph):
        golden = (DATA / "lock_order_deadlock.dot").read_text(encoding="utf-8")
        assert graph.to_dot() == golden

    def test_cycle_is_detected(self, graph):
        (cycle,) = graph.cycles()
        assert {lock.label for lock in cycle} == {
            "deadlock.Producer._queue_lock",
            "deadlock.Consumer._state_lock",
        }

    def test_cycle_findings_name_both_locks_and_a_witness(self, graph):
        (finding,) = cycle_findings(graph, "lock-order")
        assert finding.rule == "lock-order"
        assert "potential deadlock" in finding.message
        assert "deadlock.Producer._queue_lock" in finding.message
        assert "deadlock.Consumer._state_lock" in finding.message
        assert "one witness is" in finding.message

    def test_json_export_reports_the_cycle(self, graph):
        payload = json.loads(graph.to_json())
        assert payload["version"] == 1
        (cycle,) = payload["cycles"]
        assert set(cycle) == {
            "deadlock.Producer._queue_lock",
            "deadlock.Consumer._state_lock",
        }
        assert all(e["witnesses"] for e in payload["edges"])
