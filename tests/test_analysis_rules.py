"""Fixture tests for the ``repro.analysis`` rules.

Each rule gets (at least) a seeded violation that must fire, the fixed
form that must stay quiet, and a suppressed variant.  Fixtures are tiny
synthetic modules written into ``tmp_path`` so the tests exercise the
same path-walking, module-naming and suppression machinery the real CLI
uses.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_analysis


def analyse(tmp_path, files, select=None):
    """Write ``{relpath: source}`` under ``tmp_path`` and run the rules."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_analysis([tmp_path], select=select)


def rule_hits(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
LOCKED_COUNTER = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0

        def bump(self):
            with self._lock:
                self.total += 1
    %s
"""


class TestLockDiscipline:
    def test_unguarded_write_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": LOCKED_COUNTER
                % """
        def reset(self):
            self.total = 0
    """
            },
            select=["lock-discipline"],
        )
        (hit,) = rule_hits(report, "lock-discipline")
        assert "self.total" in hit.message
        assert "'reset'" in hit.message

    def test_guarded_write_is_quiet(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": LOCKED_COUNTER
                % """
        def reset(self):
            with self._lock:
                self.total = 0
    """
            },
            select=["lock-discipline"],
        )
        assert report.findings == ()

    def test_init_writes_are_exempt(self, tmp_path):
        report = analyse(
            tmp_path,
            {"svc.py": LOCKED_COUNTER % ""},
            select=["lock-discipline"],
        )
        assert report.findings == ()

    def test_local_lock_variable_counts_as_guard(self, tmp_path):
        # the sharded engine's per-shard pattern: a Lock pulled out of a
        # dict into a local before the with-block
        report = analyse(
            tmp_path,
            {
                "shards.py": """
    import threading

    class Shards:
        def __init__(self):
            self._locks = {}
            self._engines = {}

        def build(self, c):
            lock = self._locks.setdefault(c, threading.Lock())
            with lock:
                self._engines[c] = object()

        def rebuild(self, c):
            with self._locks[c]:
                self._engines[c] = object()
    """
            },
            select=["lock-discipline"],
        )
        assert report.findings == ()

    def test_subscript_and_chained_writes_resolve_to_root_attr(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading

    class Service:
        def __init__(self):
            self._cond = threading.Condition()
            self.stats = object()
            self._cache = {}

        def record(self):
            with self._cond:
                self.stats.queries += 1
                self._cache["x"] = 1

        def sneak(self):
            self._cache["y"] = 2
    """
            },
            select=["lock-discipline"],
        )
        (hit,) = rule_hits(report, "lock-discipline")
        assert "self._cache" in hit.message

    def test_suppression_comment_silences(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": LOCKED_COUNTER
                % """
        def reset(self):
            self.total = 0  # repro: ignore[lock-discipline] -- test-only reset
    """
            },
            select=["lock-discipline"],
        )
        assert report.findings == ()
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "lock-discipline"


# ----------------------------------------------------------------------
# registry-purity
# ----------------------------------------------------------------------
ENGINE_MODULE = """
    class ResistanceEngine:
        pass

    class ExactEngine(ResistanceEngine):
        pass

    def build_engine(graph, method):
        return ExactEngine()
"""


class TestRegistryPurity:
    def test_direct_instantiation_outside_factory_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "engine.py": ENGINE_MODULE,
                "caller.py": """
    from engine import ExactEngine

    def use(graph):
        return ExactEngine()
    """,
            },
            select=["registry-purity"],
        )
        (hit,) = rule_hits(report, "registry-purity")
        assert hit.path.endswith("caller.py")
        assert "ExactEngine" in hit.message

    def test_factory_call_is_quiet(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "engine.py": ENGINE_MODULE,
                "caller.py": """
    from engine import build_engine

    def use(graph):
        return build_engine(graph, "exact")
    """,
            },
            select=["registry-purity"],
        )
        assert report.findings == ()

    def test_factory_module_itself_is_exempt(self, tmp_path):
        # build_engine's own module may instantiate engine classes freely
        report = analyse(
            tmp_path, {"engine.py": ENGINE_MODULE}, select=["registry-purity"]
        )
        assert report.findings == ()

    def test_decorated_registration_counts_as_engine_class(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "engine.py": """
    def register_engine(name, params=()):
        def decorate(cls):
            return cls
        return decorate

    def build_engine(graph, method):
        return None

    @register_engine("fancy")
    class FancyEngine:
        pass
    """,
                "caller.py": """
    from engine import FancyEngine

    def use():
        return FancyEngine()
    """,
            },
            select=["registry-purity"],
        )
        (hit,) = rule_hits(report, "registry-purity")
        assert "FancyEngine" in hit.message

    def test_isinstance_reference_is_not_a_call(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "engine.py": ENGINE_MODULE,
                "caller.py": """
    from engine import ExactEngine

    def check(engine):
        return isinstance(engine, ExactEngine)
    """,
            },
            select=["registry-purity"],
        )
        assert report.findings == ()


# ----------------------------------------------------------------------
# config-persistence-drift
# ----------------------------------------------------------------------
CONFIG_MODULE = """
    from dataclasses import dataclass

    def register_engine(name, params=()):
        def decorate(cls):
            return cls
        return decorate

    @dataclass(frozen=True)
    class EngineConfig:
        method: str = "cholinv"
        epsilon: float = 1e-3
        build_workers: int = 1

    @register_engine("cholinv", params=("epsilon", "build_workers"))
    class CholInv:
        pass
"""


class TestConfigPersistenceDrift:
    def test_save_missing_param_fires(self, tmp_path):
        # the PR-5 incident: a new registered param never written to disk
        report = analyse(
            tmp_path,
            {
                "engine.py": CONFIG_MODULE,
                "persistence.py": """
    from engine import EngineConfig

    def save_engine(engine, path):
        return EngineConfig(method="cholinv", epsilon=engine.epsilon)
    """,
            },
            select=["config-persistence-drift"],
        )
        hits = rule_hits(report, "config-persistence-drift")
        assert any("build_workers" in h.message for h in hits)

    def test_restore_missing_param_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "engine.py": CONFIG_MODULE,
                "persistence.py": """
    from engine import EngineConfig, register_engine

    def save_engine(engine, path):
        return EngineConfig(
            method="cholinv",
            epsilon=engine.epsilon,
            build_workers=engine.build_workers,
        )

    @register_engine("cholinv", params=("epsilon", "build_workers"))
    class CholInv:
        @classmethod
        def from_state(cls, state, config):
            return (config.epsilon,)
    """,
            },
            select=["config-persistence-drift"],
        )
        hits = rule_hits(report, "config-persistence-drift")
        assert any(
            "build_workers" in h.message and "from_state" in h.message for h in hits
        )

    def test_unknown_keyword_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "engine.py": CONFIG_MODULE,
                "persistence.py": """
    from engine import EngineConfig

    def save_engine(engine, path):
        return EngineConfig(
            method="cholinv",
            epsilon=engine.epsilon,
            build_workers=engine.workers,
            epsilom=0.0,
        )
    """,
            },
            select=["config-persistence-drift"],
        )
        hits = rule_hits(report, "config-persistence-drift")
        assert any("epsilom" in h.message for h in hits)

    def test_full_coverage_is_quiet(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "engine.py": CONFIG_MODULE,
                "persistence.py": """
    from engine import EngineConfig, register_engine

    def save_engine(engine, path):
        return EngineConfig(
            method="cholinv",
            epsilon=engine.epsilon,
            build_workers=engine.build_workers,
        )

    @register_engine("cholinv", params=("epsilon", "build_workers"))
    class CholInv:
        @classmethod
        def from_state(cls, state, config):
            return (config.epsilon, config.build_workers)
    """,
            },
            select=["config-persistence-drift"],
        )
        assert report.findings == ()

    def test_second_persisted_method_checked_independently(self, tmp_path):
        # landmark-style second kind: each save call is keyed by its own
        # method= constant and checked against that engine's params only
        report = analyse(
            tmp_path,
            {
                "engine.py": CONFIG_MODULE,
                "persistence.py": """
    from engine import EngineConfig, register_engine

    def save_engine(engine, path):
        if engine.kind == "landmark":
            return EngineConfig(method="landmark", epsilon=engine.epsilon)
        return EngineConfig(
            method="cholinv",
            epsilon=engine.epsilon,
            build_workers=engine.build_workers,
        )

    @register_engine("landmark", params=("epsilon", "build_workers"))
    class Landmark:
        @classmethod
        def from_state(cls, state, config):
            return (config.epsilon,)
    """,
            },
            select=["config-persistence-drift"],
        )
        hits = rule_hits(report, "config-persistence-drift")
        # the landmark save call is missing build_workers...
        assert any(
            "build_workers" in h.message and "'landmark'" in h.message
            for h in hits
        )
        # ...and so is its from_state; the complete cholinv path is quiet
        assert any(
            "build_workers" in h.message and "from_state" in h.message
            for h in hits
        )
        assert not any("'cholinv'" in h.message for h in hits)

    def test_real_tree_currently_has_no_drift(self):
        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        report = run_analysis([src], select=["config-persistence-drift"])
        assert report.findings == ()


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_legacy_np_random_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "mod.py": """
    import numpy as np

    def noise(n):
        return np.random.randn(n)
    """
            },
            select=["determinism"],
        )
        (hit,) = rule_hits(report, "determinism")
        assert "np.random.randn" in hit.message

    def test_seedless_default_rng_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "mod.py": """
    import numpy as np

    def noise(n):
        return np.random.default_rng().normal(size=n)
    """
            },
            select=["determinism"],
        )
        assert len(rule_hits(report, "determinism")) == 1

    def test_seeded_default_rng_is_quiet(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "mod.py": """
    import numpy as np

    def noise(n, seed):
        return np.random.default_rng(seed).normal(size=n)
    """
            },
            select=["determinism"],
        )
        assert report.findings == ()

    def test_stdlib_random_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "mod.py": """
    import random

    def pick(items):
        return random.choice(items)
    """
            },
            select=["determinism"],
        )
        assert len(rule_hits(report, "determinism")) == 1

    def test_time_time_fires_only_in_build_dirs(self, tmp_path):
        source = """
    import time

    def stamp():
        return time.time()
    """
        report = analyse(
            tmp_path,
            {"core/factor.py": source, "service/front.py": source},
            select=["determinism"],
        )
        (hit,) = rule_hits(report, "determinism")
        assert hit.path.endswith("core/factor.py")

    def test_perf_counter_is_quiet_everywhere(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "core/factor.py": """
    import time

    def stamp():
        return time.perf_counter()
    """
            },
            select=["determinism"],
        )
        assert report.findings == ()

    def test_suppression_comment_silences(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "mod.py": """
    import numpy as np

    def noise(n):
        return np.random.randn(n)  # repro: ignore[determinism] -- bench warm-up only
    """
            },
            select=["determinism"],
        )
        assert report.findings == ()
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# boundary-validation
# ----------------------------------------------------------------------
class TestBoundaryValidation:
    def test_unvalidated_public_method_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    class QueryService:
        def query_pairs(self, pairs):
            return self.engine.query_pairs(pairs)
    """
            },
            select=["boundary-validation"],
        )
        (hit,) = rule_hits(report, "boundary-validation")
        assert "query_pairs" in hit.message

    def test_direct_validation_is_quiet(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    from engine import validate_node_ids

    class QueryService:
        def query_pairs(self, pairs):
            validate_node_ids(pairs, self.n)
            return self.engine.query_pairs(pairs)
    """
            },
            select=["boundary-validation"],
        )
        assert report.findings == ()

    def test_delegation_chain_is_credited(self, tmp_path):
        # query -> query_pairs -> submit, only submit validates
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    from engine import validate_node_ids

    class QueryService:
        def query(self, pairs):
            return self.query_pairs(pairs)

        def query_pairs(self, pairs):
            return self.submit(pairs)

        def submit(self, pairs):
            validate_node_ids(pairs, self.n)
            return self.engine.query_pairs(pairs)
    """
            },
            select=["boundary-validation"],
        )
        assert report.findings == ()

    def test_private_methods_and_non_services_are_exempt(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    class QueryService:
        def _query_pairs(self, pairs):
            return self.engine.query_pairs(pairs)

    class QueryHelper:
        def query_pairs(self, pairs):
            return self.engine.query_pairs(pairs)
    """
            },
            select=["boundary-validation"],
        )
        assert report.findings == ()

    def test_methods_without_node_params_are_exempt(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    class StatsService:
        def snapshot(self):
            return dict(self._stats)

        def set_limit(self, limit):
            self._limit = limit
    """
            },
            select=["boundary-validation"],
        )
        assert report.findings == ()


# ----------------------------------------------------------------------
# mutable-default-args
# ----------------------------------------------------------------------
class TestMutableDefaults:
    def test_literal_and_call_defaults_fire(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "mod.py": """
    def f(xs=[]):
        return xs

    def g(*, cache=dict()):
        return cache
    """
            },
            select=["mutable-default-args"],
        )
        hits = rule_hits(report, "mutable-default-args")
        assert len(hits) == 2
        assert {h.line for h in hits} == {2, 5}

    def test_none_and_immutable_defaults_are_quiet(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "mod.py": """
    def f(xs=None, k=3, name="x", pair=(1, 2)):
        return xs or []
    """
            },
            select=["mutable-default-args"],
        )
        assert report.findings == ()

    def test_suppression_comment_silences(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "mod.py": """
    def f(xs=[]):  # repro: ignore[mutable-default-args] -- sentinel, never mutated
        return xs
    """
            },
            select=["mutable-default-args"],
        )
        assert report.findings == ()
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# atomicity
# ----------------------------------------------------------------------
class TestAtomicity:
    def test_unlocked_read_of_guarded_attr_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": LOCKED_COUNTER
                % """
        def peek(self):
            return self.total
    """
            },
            select=["atomicity"],
        )
        (hit,) = rule_hits(report, "atomicity")
        assert "self.total" in hit.message
        assert "'peek'" in hit.message
        assert "reads it without" in hit.message

    def test_locked_read_is_quiet(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": LOCKED_COUNTER
                % """
        def peek(self):
            with self._lock:
                return self.total
    """
            },
            select=["atomicity"],
        )
        assert report.findings == ()

    def test_init_reads_are_exempt(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0
            self.double = self.total * 2

        def bump(self):
            with self._lock:
                self.total += 1
    """
            },
            select=["atomicity"],
        )
        assert report.findings == ()

    def test_never_locked_attr_is_quiet(self, tmp_path):
        # reads of attributes nobody ever writes under a lock are fine
        report = analyse(
            tmp_path,
            {
                "svc.py": LOCKED_COUNTER
                % """
        def name(self):
            return self.label
    """
            },
            select=["atomicity"],
        )
        assert report.findings == ()

    def test_suppression_comment_silences(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": LOCKED_COUNTER
                % """
        def peek(self):
            return self.total  # repro: ignore[atomicity] -- monitoring snapshot
    """
            },
            select=["atomicity"],
        )
        assert report.findings == ()
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "atomicity"


# ----------------------------------------------------------------------
# blocking-under-lock
# ----------------------------------------------------------------------
class TestBlockingUnderLock:
    def test_future_result_under_lock_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.Lock()

        def drain(self, future):
            with self._lock:
                return future.result()
    """
            },
            select=["blocking-under-lock"],
        )
        (hit,) = rule_hits(report, "blocking-under-lock")
        assert "waits on a Future" in hit.message
        assert "'svc.Service._lock'" in hit.message

    def test_build_engine_under_lock_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading
    from engine import build_engine

    class Service:
        def __init__(self, graph):
            self._lock = threading.Lock()
            self.graph = graph

        def refresh(self):
            with self._lock:
                self.engine = build_engine(self.graph)
    """
            },
            select=["blocking-under-lock"],
        )
        hits = rule_hits(report, "blocking-under-lock")
        assert any("engine factorisation 'build_engine()'" in h.message for h in hits)

    def test_blocking_reached_through_call_graph_fires(self, tmp_path):
        # the lock-holding frame never blocks itself; a callee does
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading
    from engine import build_engine

    class Service:
        def __init__(self, graph):
            self._lock = threading.Lock()
            self.graph = graph

        def _rebuild(self):
            return build_engine(self.graph)

        def refresh(self):
            with self._lock:
                self.engine = self._rebuild()
    """
            },
            select=["blocking-under-lock"],
        )
        hits = rule_hits(report, "blocking-under-lock")
        assert any("(via 'svc.Service._rebuild')" in h.message for h in hits)

    def test_build_outside_lock_is_quiet(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading
    from engine import build_engine

    class Service:
        def __init__(self, graph):
            self._lock = threading.Lock()
            self.graph = graph

        def refresh(self):
            engine = build_engine(self.graph)
            with self._lock:
                self.engine = engine
    """
            },
            select=["blocking-under-lock"],
        )
        assert report.findings == ()

    def test_condition_wait_is_exempt(self, tmp_path):
        # Condition.wait releases the lock it runs under
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading

    class Queue:
        def __init__(self):
            self._cond = threading.Condition()
            self._items = []

        def take(self):
            with self._cond:
                while not self._items:
                    self._cond.wait()
                return self._items.pop()
    """
            },
            select=["blocking-under-lock"],
        )
        assert report.findings == ()

    def test_suppression_comment_silences(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading
    from engine import build_engine

    class Service:
        def __init__(self, graph):
            self._build_lock = threading.Lock()
            self.graph = graph

        def refresh(self):
            with self._build_lock:
                self.engine = build_engine(self.graph)  # repro: ignore[blocking-under-lock] -- _build_lock exists to serialise builds
    """
            },
            select=["blocking-under-lock"],
        )
        assert report.findings == ()
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# executor-escape
# ----------------------------------------------------------------------
class TestExecutorEscape:
    def test_nested_def_payload_mutating_self_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    class Service:
        def __init__(self, pool):
            self._pool = pool
            self.results = []

        def fan_out(self, items):
            def work(item):
                self.results.append(item)
            for item in items:
                self._pool.submit(work, item)
    """
            },
            select=["executor-escape"],
        )
        (hit,) = rule_hits(report, "executor-escape")
        assert "'work'" in hit.message
        assert "self.results" in hit.message
        assert "escapes the executor boundary" in hit.message

    def test_lambda_mutating_closure_fires(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    def fan_out(pool, items):
        results = []
        for item in items:
            pool.submit(lambda: results.append(item))
        return results
    """
            },
            select=["executor-escape"],
        )
        (hit,) = rule_hits(report, "executor-escape")
        assert "closed-over 'results'" in hit.message

    def test_locked_mutation_is_quiet(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading

    class Service:
        def __init__(self, pool):
            self._pool = pool
            self._lock = threading.Lock()
            self.results = []

        def fan_out(self, items):
            def work(item):
                with self._lock:
                    self.results.append(item)
            for item in items:
                self._pool.submit(work, item)
    """
            },
            select=["executor-escape"],
        )
        assert report.findings == ()

    def test_pure_payload_is_quiet(self, tmp_path):
        # the repo's own idiom: workers return, the submitter commits
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    class Service:
        def __init__(self, pool):
            self._pool = pool
            self.results = {}

        def fan_out(self, items):
            def work(item):
                return item * 2
            futures = [self._pool.submit(work, item) for item in items]
            for item, future in zip(items, futures):
                self.results[item] = future.result()
    """
            },
            select=["executor-escape"],
        )
        assert report.findings == ()

    def test_self_method_payload_expands_transitively(self, tmp_path):
        # self.method handed to the pool; the mutation hides one call deeper
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    class Service:
        def __init__(self, pool):
            self._pool = pool
            self.done = []

        def _record(self, item):
            self.done.append(item)

        def _work(self, item):
            self._record(item)

        def fan_out(self, items):
            for item in items:
                self._pool.submit(self._work, item)
    """
            },
            select=["executor-escape"],
        )
        (hit,) = rule_hits(report, "executor-escape")
        assert "'self._work'" in hit.message
        assert "self.done" in hit.message

    def test_thread_target_counts_as_submission(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading

    class Service:
        def __init__(self):
            self.log = []

        def start(self):
            def loop():
                self.log.append("tick")
            threading.Thread(target=loop, daemon=True).start()
    """
            },
            select=["executor-escape"],
        )
        (hit,) = rule_hits(report, "executor-escape")
        assert "Thread(target=...)" in hit.message

    def test_suppression_comment_silences(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    class Service:
        def __init__(self, pool):
            self._pool = pool
            self.results = [None] * 8

        def fan_out(self, items):
            def work(i, item):
                self.results[i] = item  # repro: ignore[executor-escape] -- disjoint slots per worker
            for i, item in enumerate(items):
                self._pool.submit(work, i, item)
    """
            },
            select=["executor-escape"],
        )
        assert report.findings == ()
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# lock-order
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_opposite_nesting_orders_fire(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading

    class Pair:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def ab(self):
            with self._a:
                with self._b:
                    pass

        def ba(self):
            with self._b:
                with self._a:
                    pass
    """
            },
            select=["lock-order"],
        )
        (hit,) = rule_hits(report, "lock-order")
        assert "lock acquisition cycle (potential deadlock)" in hit.message
        assert "svc.Pair._a" in hit.message
        assert "svc.Pair._b" in hit.message

    def test_consistent_order_is_quiet(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "svc.py": """
    import threading

    class Pair:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def ab(self):
            with self._a:
                with self._b:
                    pass

        def also_ab(self):
            with self._a:
                with self._b:
                    pass
    """
            },
            select=["lock-order"],
        )
        assert report.findings == ()

    def test_cross_class_cycle_through_calls_fires(self, tmp_path):
        # neither class nests two with-blocks; the cycle only exists
        # because each calls into the other while holding its own lock
        report = analyse(
            tmp_path,
            {
                "duo.py": """
    import threading

    class Left:
        def __init__(self, right):
            self._left_lock = threading.Lock()
            self.right: "Right" = right

        def forward(self):
            with self._left_lock:
                self.right.poke()

        def poke(self):
            with self._left_lock:
                pass

    class Right:
        def __init__(self, left):
            self._right_lock = threading.Lock()
            self.left: "Left" = left

        def backward(self):
            with self._right_lock:
                self.left.poke()

        def poke(self):
            with self._right_lock:
                pass
    """
            },
            select=["lock-order"],
        )
        (hit,) = rule_hits(report, "lock-order")
        assert "duo.Left._left_lock" in hit.message
        assert "duo.Right._right_lock" in hit.message

    def test_real_tree_is_acyclic(self):
        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        report = run_analysis([src], select=["lock-order"])
        assert report.findings == ()


# ----------------------------------------------------------------------
# cross-cutting framework behaviour
# ----------------------------------------------------------------------
class TestFramework:
    def test_bare_ignore_suppresses_every_rule(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "mod.py": """
    def f(xs=[]):  # repro: ignore
        return xs
    """
            },
            select=["mutable-default-args"],
        )
        assert report.findings == ()
        assert len(report.suppressed) == 1

    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        report = analyse(tmp_path, {"broken.py": "def f(:\n"})
        (hit,) = report.findings
        assert hit.rule == "parse-error"
        assert hit.severity == "error"

    def test_unknown_select_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no-such-rule"):
            analyse(tmp_path, {"mod.py": "x = 1\n"}, select=["no-such-rule"])

    def test_findings_are_sorted_and_deduplicated(self, tmp_path):
        report = analyse(
            tmp_path,
            {
                "a.py": "def f(xs=[]):\n    return xs\n",
                "b.py": "def g(ys=[]):\n    return ys\n",
            },
            select=["mutable-default-args"],
        )
        paths = [f.path for f in report.findings]
        assert paths == sorted(paths)
        assert len(set(report.findings)) == len(report.findings)
