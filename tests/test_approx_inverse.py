"""Tests for Alg. 2 — the sparse approximate inverse of a Cholesky factor."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cholesky.incomplete import ichol
from repro.cholesky.numeric import cholesky
from repro.core.approx_inverse import approximate_inverse
from repro.core.error_bounds import column_error_report, theorem1_bound
from repro.graphs.generators import fe_mesh_2d, grid_2d
from repro.graphs.laplacian import grounded_laplacian


@pytest.fixture
def mesh_factor():
    graph = fe_mesh_2d(8, 8, seed=11)
    matrix, _ = grounded_laplacian(graph, 1.0)
    return cholesky(matrix, ordering="amd")


class TestExactLimit:
    def test_eps_zero_gives_exact_inverse(self, mesh_factor):
        z, _ = approximate_inverse(mesh_factor.lower, epsilon=0.0)
        identity = (mesh_factor.lower @ z).toarray()
        assert np.allclose(identity, np.eye(mesh_factor.n), atol=1e-9)

    def test_eps_zero_dense_reference(self):
        graph = grid_2d(5, 5)
        matrix, _ = grounded_laplacian(graph, 1.0)
        factor = cholesky(matrix, ordering="natural")
        z, _ = approximate_inverse(factor.lower, epsilon=0.0)
        reference = np.linalg.inv(factor.lower.toarray())
        assert np.allclose(z.toarray(), reference, atol=1e-10)


class TestStructure:
    def test_lemma1_nonnegative(self, mesh_factor):
        """Lemma 1: Z = L^{-1} of a Laplacian Cholesky factor is >= 0,
        and truncation preserves nonnegativity."""
        for eps in (0.0, 1e-3, 1e-1):
            z, _ = approximate_inverse(mesh_factor.lower, epsilon=eps)
            assert z.nnz == 0 or z.data.min() >= 0.0

    def test_lower_triangular(self, mesh_factor):
        z, _ = approximate_inverse(mesh_factor.lower, epsilon=1e-3)
        assert sp.triu(z, k=1).nnz == 0

    def test_diagonal_is_reciprocal(self, mesh_factor):
        z, _ = approximate_inverse(mesh_factor.lower, epsilon=1e-3)
        assert np.allclose(z.diagonal(), 1.0 / mesh_factor.lower.diagonal())

    def test_truncation_reduces_nnz(self, mesh_factor):
        z_exact, _ = approximate_inverse(mesh_factor.lower, epsilon=0.0)
        z_small, _ = approximate_inverse(mesh_factor.lower, epsilon=1e-1)
        assert z_small.nnz < z_exact.nnz


class TestTheorem1:
    def test_column_bound_holds(self, mesh_factor):
        eps = 1e-2
        z, _ = approximate_inverse(mesh_factor.lower, epsilon=eps)
        report = column_error_report(
            mesh_factor.lower, z, eps, sample_nodes=np.arange(mesh_factor.n)
        )
        assert report.max_violation <= 1e-10

    def test_column_bound_holds_incomplete(self):
        graph = fe_mesh_2d(9, 7, seed=5)
        matrix, _ = grounded_laplacian(graph, 1.0)
        result = ichol(matrix, drop_tol=1e-3, ordering="rcm")
        eps = 5e-2
        z, _ = approximate_inverse(result.lower, epsilon=eps)
        report = column_error_report(
            result.lower, z, eps, sample_nodes=np.arange(matrix.shape[0])
        )
        assert report.max_violation <= 1e-10

    def test_bound_vector(self, mesh_factor):
        bound = theorem1_bound(mesh_factor.lower, 1e-3)
        assert bound.shape == (mesh_factor.n,)
        assert np.all(bound >= 0)


class TestInterface:
    def test_stats(self, mesh_factor):
        z, stats = approximate_inverse(mesh_factor.lower, epsilon=1e-3)
        assert stats.nnz == z.nnz
        assert stats.n == mesh_factor.n
        assert stats.columns_truncated + stats.columns_kept_whole == mesh_factor.n
        assert stats.nnz_per_nlogn > 0
        assert stats.average_column_nnz == z.nnz / mesh_factor.n

    def test_small_column_threshold_keeps_columns_whole(self, mesh_factor):
        _, stats = approximate_inverse(
            mesh_factor.lower, epsilon=0.5, small_column_threshold=float("inf")
        )
        assert stats.columns_truncated == 0

    def test_negative_eps_raises(self, mesh_factor):
        with pytest.raises(ValueError):
            approximate_inverse(mesh_factor.lower, epsilon=-1e-3)

    def test_rejects_bad_diagonal(self):
        lower = sp.csc_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            approximate_inverse(lower, epsilon=0.0)

    @pytest.mark.parametrize("mode", ["blocked", "reference"])
    def test_empty_column_reports_clearly(self, mode):
        """Regression: an empty column used to make the diagonal-first check
        read the *next* column's first entry (or run off the end of the
        index array for a trailing empty column)."""
        # middle column empty
        middle = sp.csc_matrix(
            (np.array([1.0, 2.0]), np.array([0, 2]), np.array([0, 1, 1, 2])),
            shape=(3, 3),
        )
        with pytest.raises(ValueError, match="empty column 1"):
            approximate_inverse(middle, epsilon=0.0, mode=mode)
        # trailing column empty — previously an out-of-bounds read
        trailing = sp.csc_matrix(
            (np.array([1.0, 2.0]), np.array([0, 1]), np.array([0, 1, 2, 2])),
            shape=(3, 3),
        )
        with pytest.raises(ValueError, match="empty column 2"):
            approximate_inverse(trailing, epsilon=0.0, mode=mode)

    @pytest.mark.parametrize("mode", ["blocked", "reference"])
    def test_modes_share_validation(self, mesh_factor, mode):
        with pytest.raises(ValueError):
            approximate_inverse(mesh_factor.lower, epsilon=-1.0, mode=mode)

    def test_blocked_is_default_and_matches_reference(self, mesh_factor):
        z_default, _ = approximate_inverse(mesh_factor.lower, epsilon=1e-3)
        z_ref, _ = approximate_inverse(
            mesh_factor.lower, epsilon=1e-3, mode="reference"
        )
        assert np.array_equal(z_default.indices, z_ref.indices)
        assert np.allclose(z_default.data, z_ref.data, rtol=1e-12, atol=0.0)
