"""Tests for the Table II application flows."""

import numpy as np
import pytest

from repro.apps.incremental import perturb_blocks, run_incremental_flow
from repro.apps.transient_flow import max_voltage_drop, run_transient_flow
from repro.powergrid.dc import dc_analysis
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.reduction.pipeline import PGReducer, ReductionConfig


@pytest.fixture(scope="module")
def transient_grid():
    return synthetic_ibmpg_like(nx=14, ny=14, transient=True, seed=0, pad_pitch=6)


@pytest.fixture(scope="module")
def dc_grid():
    return synthetic_ibmpg_like(nx=14, ny=14, transient=False, seed=0, pad_pitch=6)


class TestMaxVoltageDrop:
    def test_dc_vector(self, dc_grid):
        result = dc_analysis(dc_grid)
        drop = max_voltage_drop(dc_grid, result.voltages)
        assert np.isclose(drop, result.max_drop(), rtol=1e-9)

    def test_transient_matrix(self, dc_grid):
        result = dc_analysis(dc_grid)
        matrix = np.column_stack([result.voltages, result.voltages])
        assert np.isclose(
            max_voltage_drop(dc_grid, matrix), result.max_drop(), rtol=1e-9
        )


class TestTransientFlow:
    def test_outcome_fields(self, transient_grid):
        out = run_transient_flow(
            transient_grid,
            ReductionConfig(er_method="cholinv", seed=1),
            step=1e-11,
            num_steps=30,
        )
        assert out.err_volts >= 0
        assert out.rel_error >= 0
        assert out.err_mv == out.err_volts * 1e3
        assert out.rel_pct == out.rel_error * 1e2
        assert out.time_reduction > 0
        assert out.total_time == out.time_reduction + out.time_transient_reduced
        ports = transient_grid.port_nodes()
        assert out.original_result.voltages.shape == (ports.size, 30)
        assert out.reduced_result.voltages.shape == (ports.size, 30)

    def test_accuracy_single_digit_percent(self, transient_grid):
        out = run_transient_flow(
            transient_grid,
            ReductionConfig(er_method="cholinv", seed=1),
            step=1e-11,
            num_steps=50,
        )
        assert out.rel_pct < 5.0

    def test_reuses_prebuilt_artefacts(self, transient_grid):
        ports = transient_grid.port_nodes()
        from repro.powergrid.transient import transient_analysis

        original = transient_analysis(
            transient_grid, step=1e-11, num_steps=10, observe=ports
        )
        reducer = PGReducer(transient_grid, ReductionConfig(er_method="exact", seed=2))
        out = run_transient_flow(
            transient_grid,
            step=1e-11,
            num_steps=10,
            reducer=reducer,
            original_result=original,
        )
        assert out.original_result is original


class TestPerturbBlocks:
    def test_only_chosen_blocks_modified(self, dc_grid):
        reducer = PGReducer(dc_grid, ReductionConfig(seed=3))
        modified = perturb_blocks(dc_grid, reducer.labels, [0], seed=4)
        labels = reducer.labels
        changed = [
            i
            for i, (a, b) in enumerate(zip(dc_grid.res_a, dc_grid.res_b))
            if not np.isclose(modified.res_ohms[i], dc_grid.res_ohms[i])
        ]
        for i in changed:
            assert labels[dc_grid.res_a[i]] == 0
            assert labels[dc_grid.res_b[i]] == 0
        assert changed  # something actually changed

    def test_original_untouched(self, dc_grid):
        reducer = PGReducer(dc_grid, ReductionConfig(seed=3))
        before = list(dc_grid.res_ohms)
        perturb_blocks(dc_grid, reducer.labels, [0, 1], seed=5)
        assert dc_grid.res_ohms == before


class TestIncrementalFlow:
    def test_outcome(self, dc_grid):
        out = run_incremental_flow(
            dc_grid, ReductionConfig(er_method="cholinv", seed=1), seed=6
        )
        assert out.rel_pct < 8.0
        assert out.modified_blocks.size >= 1
        assert out.time_incremental_reduction > 0
        assert out.total_time == (
            out.time_incremental_reduction + out.time_reduced_solve
        )

    def test_incremental_faster_than_full(self, dc_grid):
        """Re-reducing ~1 block must beat partitioning + reducing all."""
        from repro.utils.timing import timed

        config = ReductionConfig(er_method="cholinv", seed=1, num_blocks=6)
        base = PGReducer(dc_grid, config)
        base.reduce()
        assert base.num_blocks >= 4  # otherwise the comparison is vacuous
        out = run_incremental_flow(dc_grid, config, seed=7, base_reducer=base)
        with timed() as elapsed:
            fresh = PGReducer(dc_grid, config)
            fresh.reduce()
        assert out.time_incremental_reduction < elapsed()

    def test_validation(self, dc_grid):
        with pytest.raises(ValueError):
            run_incremental_flow(dc_grid, modified_fraction=0.0)
