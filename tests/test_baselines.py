"""Tests for the WWW'15 random-projection baseline and the naive method."""

import numpy as np
import pytest

from repro.baselines.naive import NaivePerQueryResistance
from repro.baselines.random_projection import (
    RandomProjectionEffectiveResistance,
    default_num_projections,
)
from repro.core.effective_resistance import ExactEffectiveResistance
from repro.graphs.generators import fe_mesh_2d, grid_2d, path_graph
from repro.graphs.graph import Graph


class TestRandomProjection:
    def test_concentrates_with_k(self, weighted_mesh):
        exact = ExactEffectiveResistance(weighted_mesh)
        pairs = weighted_mesh.edge_array()
        truth = exact.query_pairs(pairs)
        errors = []
        for k in (50, 3200):
            est = RandomProjectionEffectiveResistance(
                weighted_mesh, num_projections=k, solver="splu", seed=0
            )
            rel = np.abs(est.query_pairs(pairs) - truth) / truth
            errors.append(rel.mean())
        assert errors[1] < errors[0]
        assert errors[1] < 0.05

    def test_unbiased_mean(self):
        """Averaging independent JL estimates converges to the truth."""
        graph = grid_2d(6, 6)
        exact = ExactEffectiveResistance(graph).query(0, 35)
        estimates = [
            RandomProjectionEffectiveResistance(
                graph, num_projections=200, solver="splu", seed=s
            ).query(0, 35)
            for s in range(12)
        ]
        assert np.isclose(np.mean(estimates), exact, rtol=0.08)

    def test_deterministic_given_seed(self, small_grid):
        a = RandomProjectionEffectiveResistance(small_grid, num_projections=64, solver="splu", seed=3)
        b = RandomProjectionEffectiveResistance(small_grid, num_projections=64, solver="splu", seed=3)
        assert np.allclose(a.embedding, b.embedding)

    def test_projection_nnz(self, small_grid):
        est = RandomProjectionEffectiveResistance(small_grid, num_projections=32, seed=1)
        assert est.projection_nnz == 32 * small_grid.num_nodes

    def test_default_k_formula(self):
        assert default_num_projections(1000, c_jl=10.0) == int(
            np.ceil(10.0 * np.log(1000))
        )

    def test_cross_component_inf(self, two_components):
        est = RandomProjectionEffectiveResistance(
            two_components, num_projections=16, seed=2
        )
        assert est.query(0, 3) == np.inf

    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            RandomProjectionEffectiveResistance(Graph.from_edges(3, []))

    def test_timer_sections(self, small_grid):
        est = RandomProjectionEffectiveResistance(small_grid, num_projections=8, seed=0)
        est.query(0, 1)
        assert {"factorize", "projection_solves", "queries"} <= set(est.timer.times)

    def test_pcg_and_splu_solvers_agree(self, small_grid):
        """The CMG-style PCG substrate must give the same embedding as the
        direct solver (same signs stream, tight PCG tolerance)."""
        a = RandomProjectionEffectiveResistance(
            small_grid, num_projections=16, solver="pcg", pcg_rtol=1e-12, seed=9
        )
        b = RandomProjectionEffectiveResistance(
            small_grid, num_projections=16, solver="splu", seed=9
        )
        assert np.allclose(a.embedding, b.embedding, atol=1e-7)

    def test_unknown_solver_rejected(self, small_grid):
        with pytest.raises(ValueError, match="unknown solver"):
            RandomProjectionEffectiveResistance(small_grid, num_projections=4, solver="qr")


class TestNaive:
    def test_matches_exact(self):
        graph = fe_mesh_2d(5, 5, seed=9)
        exact = ExactEffectiveResistance(graph)
        naive = NaivePerQueryResistance(graph)
        pairs = graph.edge_array()[:8]
        assert np.allclose(
            naive.query_pairs(pairs), exact.query_pairs(pairs), rtol=1e-6
        )

    def test_closed_form_path(self):
        naive = NaivePerQueryResistance(path_graph(5))
        assert np.isclose(naive.query(0, 4), 4.0, rtol=1e-8)

    def test_cross_component_and_self(self, two_components):
        naive = NaivePerQueryResistance(two_components)
        assert naive.query(0, 5) == np.inf
        assert naive.query(2, 2) == 0.0
