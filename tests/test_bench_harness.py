"""Tests for the benchmark harness itself (cases, runners, rendering)."""

import numpy as np
import pytest

from repro.bench.cases import (
    TABLE1_CASES,
    TABLE2_CASES,
    Table1Case,
    PaperTable1Reference,
    quick_table1_names,
    quick_table2_names,
)
from repro.bench.fig1 import ascii_plot, run_fig1
from repro.bench.reporting import format_table, format_value, speedup
from repro.bench.table1 import render_table1, run_table1_case
from repro.bench.table2 import run_table2_incremental, run_table2_transient
from repro.graphs.generators import fe_mesh_2d


class TestCasesRegistry:
    def test_table1_cases_complete(self):
        for name, case in TABLE1_CASES.items():
            assert case.name == name
            assert case.paper.alg3_ea < case.paper.baseline_ea  # paper's claim
            graph = None  # builders are lazy — only check quick ones below
            del graph

    def test_quick_subsets_exist(self):
        assert set(quick_table1_names()) <= set(TABLE1_CASES)
        assert set(quick_table2_names()) <= set(TABLE2_CASES)

    def test_builders_are_deterministic(self):
        case = TABLE1_CASES["circuit-grid"]
        a = case.builder()
        b = case.builder()
        assert np.allclose(a.weights, b.weights)

    def test_table2_configs_valid(self):
        for case in TABLE2_CASES.values():
            assert case.config.nx >= 2
            assert case.transient_steps == 1000  # the paper's protocol


class TestReporting:
    def test_format_value_ranges(self):
        assert format_value(0.0) == "0"
        assert "e" in format_value(1.5e-7)
        assert format_value(3.14159) == "3.142"
        assert format_value(123.456) == "123.5"
        assert format_value("abc") == "abc"
        assert format_value(42) == "42"

    def test_format_table_alignment(self):
        table = format_table(["a", "bbbb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

    def test_speedup_guard(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")


class TestRunners:
    def test_run_table1_case_tiny(self):
        tiny = Table1Case(
            name="tiny",
            family="test",
            builder=lambda: fe_mesh_2d(12, 12, seed=0),
            stands_in_for="unit-test case",
            paper=PaperTable1Reference(1, 1, 1, 1, 1, 1, 1, 0.5, 1, 1),
        )
        row = run_table1_case(
            tiny, error_samples=60, baseline_c_jl=5.0, baseline_solver="splu", seed=0
        )
        assert row.nodes == 144
        assert row.alg3_ea < 0.05
        assert row.dpt > 0
        rendered = render_table1([row], {"tiny": tiny})
        assert "tiny" in rendered
        assert "(paper)" in rendered

    def test_run_table1_without_baseline(self):
        tiny = Table1Case(
            name="tiny2",
            family="test",
            builder=lambda: fe_mesh_2d(10, 10, seed=1),
            stands_in_for="unit-test case",
            paper=PaperTable1Reference(1, 1, 1, 1, 1, 1, 1, 0.5, 1, 1),
        )
        row = run_table1_case(tiny, error_samples=30, run_baseline=False, seed=0)
        assert np.isnan(row.baseline_time)
        assert row.alg3_time > 0


class TestAsciiPlot:
    def test_plot_contains_markers_and_legend(self):
        times = np.linspace(0, 1, 50)
        series = {"one": np.sin(times * 6), "two": np.cos(times * 6)}
        art = ascii_plot(times, series, width=40, height=8, title="demo")
        assert "demo" in art
        assert "o one" in art
        assert "x two" in art

    def test_constant_series(self):
        times = np.linspace(0, 1, 10)
        art = ascii_plot(times, {"flat": np.ones(10)})
        assert "flat" in art
