"""Tests for the numeric Cholesky engines (uplooking reference + SuperLU)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cholesky.numeric import cholesky, cholesky_uplooking
from repro.cholesky.ordering import (
    compute_ordering,
    inverse_permutation,
    minimum_degree_ordering,
    permute_symmetric,
    rcm_ordering,
)
from repro.graphs.generators import fe_mesh_2d, grid_2d
from repro.graphs.laplacian import grounded_laplacian
from tests.conftest import random_spd


class TestUplooking:
    def test_matches_dense_cholesky(self):
        matrix = random_spd(30, 0.15, seed=0)
        factor = cholesky_uplooking(matrix)
        dense = np.linalg.cholesky(matrix.toarray())
        assert np.allclose(factor.lower.toarray(), dense, atol=1e-10)

    def test_matches_dense_on_grounded_laplacian(self, spd_matrix):
        factor = cholesky_uplooking(spd_matrix)
        dense = np.linalg.cholesky(spd_matrix.toarray())
        assert np.allclose(factor.lower.toarray(), dense, atol=1e-10)

    def test_with_permutation(self, spd_matrix):
        perm = rcm_ordering(spd_matrix)
        factor = cholesky_uplooking(spd_matrix, perm=perm)
        permuted = permute_symmetric(spd_matrix, perm)
        reconstruction = (factor.lower @ factor.lower.T).toarray()
        assert np.allclose(reconstruction, permuted.toarray(), atol=1e-10)

    def test_rejects_indefinite(self):
        matrix = sp.csc_matrix(np.array([[1.0, 2.0], [2.0, 1.0]]))
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_uplooking(matrix)

    def test_solve(self, spd_matrix):
        factor = cholesky_uplooking(spd_matrix)
        rng = np.random.default_rng(1)
        b = rng.normal(size=spd_matrix.shape[0])
        x = factor.solve(b)
        assert np.allclose(spd_matrix @ x, b, atol=1e-8)


class TestSuperluEngine:
    def test_agrees_with_uplooking(self, spd_matrix):
        perm = compute_ordering(spd_matrix, "rcm")
        fast = cholesky(spd_matrix, perm=perm, engine="superlu")
        slow = cholesky(spd_matrix, perm=perm, engine="uplooking")
        assert np.allclose(fast.lower.toarray(), slow.lower.toarray(), atol=1e-9)

    def test_solve_matches_direct(self, spd_matrix):
        factor = cholesky(spd_matrix, ordering="amd")
        rng = np.random.default_rng(2)
        b = rng.normal(size=spd_matrix.shape[0])
        x = factor.solve(b)
        assert np.allclose(spd_matrix @ x, b, atol=1e-8)

    def test_solve_2d_rhs(self, spd_matrix):
        factor = cholesky(spd_matrix, ordering="rcm")
        rng = np.random.default_rng(3)
        b = rng.normal(size=(spd_matrix.shape[0], 4))
        x = factor.solve(b)
        assert np.allclose(spd_matrix @ x, b, atol=1e-8)

    def test_logdet(self):
        matrix = random_spd(20, 0.2, seed=5)
        factor = cholesky(matrix, ordering="natural")
        sign, expected = np.linalg.slogdet(matrix.toarray())
        assert sign > 0
        assert np.isclose(factor.logdet(), expected)

    def test_unknown_engine(self, spd_matrix):
        with pytest.raises(ValueError, match="unknown engine"):
            cholesky(spd_matrix, engine="nope")

    def test_half_solve_norm_gives_quadratic_form(self, spd_matrix):
        """||L^{-1} P b||^2 must equal b^T A^{-1} b (basis of Eq. 7)."""
        factor = cholesky(spd_matrix, ordering="amd")
        rng = np.random.default_rng(4)
        b = rng.normal(size=spd_matrix.shape[0])
        y = factor.half_solve(b)
        direct = float(b @ factor.solve(b))
        assert np.isclose(float(y @ y), direct, rtol=1e-8)


class TestOrderings:
    def test_all_orderings_are_permutations(self, spd_matrix):
        n = spd_matrix.shape[0]
        for method in ("natural", "rcm", "amd"):
            perm = compute_ordering(spd_matrix, method)
            assert np.array_equal(np.sort(perm), np.arange(n))

    def test_unknown_method(self, spd_matrix):
        with pytest.raises(ValueError, match="unknown ordering"):
            compute_ordering(spd_matrix, "zzz")

    def test_inverse_permutation(self):
        perm = np.array([2, 0, 3, 1])
        inv = inverse_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(4))
        assert np.array_equal(inv[perm], np.arange(4))

    def test_permute_symmetric_values(self):
        matrix = random_spd(10, 0.3, seed=8)
        perm = np.random.default_rng(0).permutation(10)
        permuted = permute_symmetric(matrix, perm)
        dense = matrix.toarray()
        assert np.allclose(permuted.toarray(), dense[np.ix_(perm, perm)])

    def test_minimum_degree_reduces_fill_on_grid(self):
        graph = grid_2d(12, 12)
        matrix, _ = grounded_laplacian(graph, 1.0)
        natural = cholesky(matrix, ordering="natural").nnz
        mindeg = cholesky(matrix, ordering="amd").nnz
        assert mindeg < natural

    def test_minimum_degree_star_center_near_last(self):
        """On a star the centre (initial degree n-1) is eliminated among the
        last two pivots — it only ties with the final leaf at degree 1."""
        from repro.graphs.generators import star_graph

        matrix, _ = grounded_laplacian(star_graph(9), 1.0)
        perm = minimum_degree_ordering(matrix)
        assert int(np.flatnonzero(perm == 0)[0]) >= 7


class TestFactorProperties:
    def test_laplacian_factor_sign_structure(self, weighted_mesh):
        """Cholesky factor of an SDD M-matrix: positive diagonal,
        nonpositive off-diagonal (the paper's Lemma 1 precondition)."""
        matrix, _ = grounded_laplacian(weighted_mesh, 1.0)
        factor = cholesky(matrix, ordering="amd")
        lower = factor.lower.tocoo()
        diag_mask = lower.row == lower.col
        assert np.all(lower.data[diag_mask] > 0)
        assert np.all(lower.data[~diag_mask] <= 1e-12)

    def test_reconstruction(self, weighted_mesh):
        matrix, _ = grounded_laplacian(weighted_mesh, 1.0)
        factor = cholesky(matrix, ordering="rcm")
        permuted = permute_symmetric(matrix, factor.perm)
        reconstruction = (factor.lower @ factor.lower.T).toarray()
        assert np.allclose(reconstruction, permuted.toarray(), atol=1e-10)
