"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.powergrid.generators import synthetic_ibmpg_like
from repro.powergrid.spice import read_spice, write_spice


@pytest.fixture
def netlist(tmp_path):
    grid = synthetic_ibmpg_like(nx=10, ny=10, pad_pitch=5, transient=True, seed=0)
    path = tmp_path / "grid.sp"
    write_spice(grid, path)
    return path


class TestER:
    def test_all_edges_to_csv(self, tmp_path, capsys):
        out = tmp_path / "er.csv"
        code = main([
            "er", "--generator", "grid2d:8x8", "--method", "cholinv",
            "--output", str(out),
        ])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines[0] == "p,q,r_eff"
        assert len(lines) == 1 + 2 * 7 * 8  # edges of an 8x8 grid

    def test_explicit_pairs_stdout(self, capsys):
        code = main([
            "er", "--generator", "grid2d:5x5", "--method", "exact",
            "--pairs", "0,24", "0,1",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        p, q, r = lines[1].split(",")
        assert (p, q) == ("0", "24")
        assert float(r) > 0

    def test_methods_agree(self, tmp_path):
        out_a = tmp_path / "a.csv"
        out_b = tmp_path / "b.csv"
        main(["er", "--generator", "grid2d:6x6", "--method", "exact",
              "--output", str(out_a)])
        main(["er", "--generator", "grid2d:6x6", "--method", "cholinv",
              "--epsilon", "0", "--drop-tol", "0", "--output", str(out_b)])
        a = np.loadtxt(out_a, delimiter=",", skiprows=1)
        b = np.loadtxt(out_b, delimiter=",", skiprows=1)
        assert np.allclose(a, b, rtol=1e-8)

    def test_unknown_generator(self):
        with pytest.raises(SystemExit):
            main(["er", "--generator", "torus:3"])

    def test_save_and_load_engine_round_trip(self, tmp_path, capsys):
        engine_path = tmp_path / "engine.npz"
        main(["er", "--generator", "grid2d:6x6", "--pairs", "0,35",
              "--save-engine", str(engine_path)])
        built = capsys.readouterr().out.splitlines()[1]
        assert engine_path.exists()
        code = main(["er", "--load-engine", str(engine_path), "--pairs", "0,35"])
        assert code == 0
        loaded = capsys.readouterr().out.splitlines()[1]
        assert loaded == built

    def test_load_engine_rejects_graph_source(self, tmp_path, capsys):
        engine_path = tmp_path / "e.npz"
        main(["er", "--generator", "grid2d:4x4", "--pairs", "0,1",
              "--save-engine", str(engine_path)])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="load-engine"):
            main(["er", "--generator", "grid2d:9x9",
                  "--load-engine", str(engine_path), "--pairs", "0,1"])

    def test_save_engine_refused_for_exact(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="persistence"):
            main(["er", "--generator", "grid2d:4x4", "--method", "exact",
                  "--pairs", "0,1", "--save-engine", str(tmp_path / "x.npz")])

    def test_sharded_flag(self, capsys):
        code = main(["er", "--generator", "grid2d:5x5", "--method", "exact",
                     "--sharded", "--pairs", "0,24"])
        assert code == 0
        _, _, r = capsys.readouterr().out.splitlines()[1].split(",")
        assert float(r) > 0

    def test_naive_method_available(self, capsys):
        code = main(["er", "--generator", "grid2d:4x4", "--method", "naive",
                     "--pairs", "0,15"])
        assert code == 0


class TestService:
    def test_pairs_and_top_k(self, capsys):
        code = main([
            "service", "--generator", "grid2d:6x6",
            "--pairs", "0,35", "0,1", "--repeat", "3", "--top-k", "2",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "0,35," in captured.out
        assert "top 2 central edges" in captured.out
        assert "hit rate" in captured.err

    def test_reference_mode_agrees(self, capsys):
        main(["service", "--generator", "grid2d:5x5", "--mode", "reference",
              "--pairs", "0,24"])
        ref = capsys.readouterr().out.splitlines()[1]
        main(["service", "--generator", "grid2d:5x5", "--mode", "blocked",
              "--pairs", "0,24"])
        blocked = capsys.readouterr().out.splitlines()[1]
        assert ref == blocked

    def test_nothing_to_do(self, capsys):
        assert main(["service", "--generator", "grid2d:4x4"]) == 1

    def test_workers_fan_out_same_answers(self, capsys):
        main(["service", "--generator", "grid2d:5x5", "--pairs", "0,24", "3,9"])
        serial = capsys.readouterr().out.splitlines()[1:3]
        code = main(["service", "--generator", "grid2d:5x5", "--sharded",
                     "--workers", "3", "--pairs", "0,24", "3,9"])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[1:3] == serial
        assert "3 worker(s)" in captured.err

    def test_batch_window_micro_batches(self, capsys):
        code = main(["service", "--generator", "grid2d:5x5",
                     "--batch-window", "0.05", "--repeat", "4",
                     "--pairs", "0,24", "0,1"])
        assert code == 0
        captured = capsys.readouterr()
        assert "micro-batching: 4 requests coalesced" in captured.err
        assert "0,24," in captured.out

    def test_warm_start_from_saved_engine(self, tmp_path, capsys):
        engine_path = tmp_path / "warm.npz"
        main(["service", "--generator", "grid2d:6x6", "--pairs", "0,35",
              "--save-engine", str(engine_path)])
        cold = capsys.readouterr().out.splitlines()[1]
        code = main(["service", "--load-engine", str(engine_path),
                     "--pairs", "0,35", "--top-k", "2"])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[1] == cold
        assert "top 2 central edges" in captured.out


class TestPowerGridCommands:
    def test_dc(self, netlist, capsys):
        assert main(["dc", str(netlist), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "max IR drop" in out
        assert "worst 3 nodes" in out

    def test_transient(self, netlist, capsys):
        assert main(["transient", str(netlist), "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "port swings" in out

    def test_reduce_round_trip(self, netlist, tmp_path, capsys):
        out_path = tmp_path / "reduced.sp"
        code = main([
            "reduce", str(netlist), "--output", str(out_path),
            "--er-method", "cholinv",
        ])
        assert code == 0
        reduced = read_spice(out_path)
        original = read_spice(netlist)
        assert reduced.num_nodes < original.num_nodes
        assert len(reduced.vsources) == len(original.vsources)


class TestBenchCommands:
    def test_fig1(self, tmp_path, capsys):
        out = tmp_path / "fig1.csv"
        code = main(["fig1", "--case", "pg2-like", "--steps", "20",
                     "--output", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "VDD node" in printed
        assert "GND node" in printed
        assert out.exists()

    def test_table1_unknown_case(self):
        with pytest.raises(SystemExit):
            main(["table1", "--case", "nope"])
