"""Tests for connected-component utilities."""

import numpy as np

from repro.graphs.components import connected_components, is_connected, largest_component
from repro.graphs.graph import Graph


def test_connected_grid(small_grid):
    labels, count = connected_components(small_grid)
    assert count == 1
    assert np.all(labels == labels[0])
    assert is_connected(small_grid)


def test_two_triangles(two_components):
    labels, count = connected_components(two_components)
    assert count == 2
    assert labels[0] == labels[1] == labels[2]
    assert labels[3] == labels[4] == labels[5]
    assert labels[0] != labels[3]
    assert not is_connected(two_components)


def test_isolated_nodes():
    g = Graph.from_edges(4, [(0, 1)])
    labels, count = connected_components(g)
    assert count == 3
    assert labels[0] == labels[1]


def test_edgeless_graph():
    g = Graph.from_edges(3, [])
    labels, count = connected_components(g)
    assert count == 3
    assert np.array_equal(np.sort(labels), [0, 1, 2])


def test_largest_component():
    edges = [(0, 1), (1, 2), (2, 3), (4, 5)]
    g = Graph.from_edges(6, edges)
    sub, original = largest_component(g)
    assert sub.num_nodes == 4
    assert np.array_equal(original, [0, 1, 2, 3])
    assert sub.num_edges == 3


def test_largest_component_connected_graph_is_identity(small_grid):
    sub, original = largest_component(small_grid)
    assert sub is small_grid
    assert np.array_equal(original, np.arange(64))
