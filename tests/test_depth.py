"""Tests for the filled-graph depth (Eq. 11)."""

import numpy as np
import scipy.sparse as sp

from repro.cholesky.depth import filled_graph_depth, max_depth
from repro.cholesky.etree import elimination_tree, tree_depths
from repro.cholesky.incomplete import ichol
from repro.cholesky.numeric import cholesky
from repro.graphs.generators import fe_mesh_2d, grid_2d, star_graph
from repro.graphs.laplacian import grounded_laplacian


def test_bidiagonal_depth_is_position():
    """A path in natural order factors with a bidiagonal L: depth = n-1-p."""
    graph = grid_2d(1, 7)
    matrix, _ = grounded_laplacian(graph, 1.0)
    factor = cholesky(matrix, ordering="natural")
    depth = filled_graph_depth(factor.lower)
    assert np.array_equal(depth, np.arange(6, -1, -1))


def test_matches_tree_depths_for_complete_factor():
    graph = fe_mesh_2d(6, 6, seed=1)
    matrix, _ = grounded_laplacian(graph, 1.0)
    factor = cholesky(matrix, ordering="natural")
    from_pattern = filled_graph_depth(factor.lower)
    from_tree = tree_depths(elimination_tree(matrix))
    assert np.array_equal(from_pattern, from_tree)


def test_incomplete_factor_depth_not_larger():
    """Dropping entries can only remove depth-chain links."""
    graph = fe_mesh_2d(8, 8, seed=2)
    matrix, _ = grounded_laplacian(graph, 1.0)
    complete = cholesky(matrix, ordering="rcm")
    incomplete = ichol(matrix, drop_tol=5e-2, ordering="rcm")
    assert max_depth(incomplete.lower) <= max_depth(complete.lower)


def test_diagonal_factor_depth_zero():
    lower = sp.identity(5, format="csc")
    assert np.array_equal(filled_graph_depth(lower), np.zeros(5, dtype=np.int64))
    assert max_depth(lower) == 0


def test_star_depth_is_one_with_center_last():
    """Star with centre eliminated last: every leaf column has exactly one
    sub-diagonal entry pointing at the root."""
    matrix, _ = grounded_laplacian(star_graph(8), 1.0)
    perm = np.array([1, 2, 3, 4, 5, 6, 7, 0])
    factor = cholesky(matrix, perm=perm)
    depth = filled_graph_depth(factor.lower)
    assert depth[-1] == 0
    assert np.all(depth[:-1] == 1)


def test_depth_decreases_toward_root(spd_matrix):
    """depth(p) = 1 + max over column pattern — spot-check the recurrence."""
    factor = cholesky(spd_matrix, ordering="amd")
    depth = filled_graph_depth(factor.lower)
    csc = sp.csc_matrix(sp.tril(factor.lower, k=-1))
    for p in range(csc.shape[0]):
        rows = csc.indices[csc.indptr[p] : csc.indptr[p + 1]]
        if rows.size:
            assert depth[p] == 1 + depth[rows].max()
        else:
            assert depth[p] == 0
